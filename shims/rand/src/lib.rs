//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no access to a crates.io mirror,
//! so the workspace points the `rand` dependency at this path.
//!
//! Only the surface actually exercised by the simulator is provided:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over primitive ranges, and
//! `Rng::gen_bool`. `SmallRng` is xoshiro256++ seeded through SplitMix64 —
//! a different stream than upstream `rand`, which is fine here because every
//! consumer verifies against a host re-run using the same generator, never
//! against golden constants.

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value of type `T` from a range-like object.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % width;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: used to expand a single `u64` seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for workload synthesis.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads {heads}");
    }
}
