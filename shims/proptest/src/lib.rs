//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace points the `proptest` dependency at this path.
//!
//! It keeps proptest's *shape* — `proptest! { #[test] fn f(x in strategy) }`,
//! `prop_assert*`, strategy combinators — but the engine is a plain
//! deterministic sampler: each case draws fresh values from a seeded RNG and
//! failures report the case seed instead of shrinking. That trade keeps the
//! property tests runnable (and reproducible) offline.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Fixed base seed: every test function's case stream is reproducible.
    const BASE_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = BASE_SEED;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
            ))
        }
    }

    /// A failed `prop_assert*` inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::ops::Range;

    /// A recipe for producing values of `Self::Value` from an RNG.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.0.gen_range(self.clone())
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.0.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    pub fn uniform5<S: Strategy>(element: S) -> UniformArray<S, 5> {
        UniformArray(element)
    }

    pub fn uniform25<S: Strategy>(element: S) -> UniformArray<S, 25> {
        UniformArray(element)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-defining macro. Parses an optional `#![proptest_config(..)]`
/// header followed by `#[test] fn name(arg in strategy, ..) { body }` items
/// and expands each into a plain `#[test]` that loops over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config = $cfg;
            for __pt_case in 0..__pt_config.cases {
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __pt_case);
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);)*
                let __pt_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __pt_result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __pt_case,
                        __pt_config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __pt_l,
            __pt_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __pt_l,
            __pt_r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l != *__pt_r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __pt_l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l != *__pt_r,
            "{}\n  both: `{:?}`",
            format!($($fmt)+),
            __pt_l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 0usize..10,
            (a, b) in (0u64..5, -1.0f64..1.0),
            v in crate::collection::vec(0i32..100, 1..20),
        ) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }

        #[test]
        fn oneof_and_map_compose(choice in prop_oneof![
            Just(0usize),
            (1usize..4).prop_map(|v| v * 10),
        ]) {
            prop_assert!(choice == 0 || (10..40).contains(&choice));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::for_case("det", 3);
        let mut b = crate::test_runner::TestRng::for_case("det", 3);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
