//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace points the `criterion` dev-dependency at this path.
//!
//! The statistical machinery is replaced with a plain timed loop: each
//! `Bencher::iter` call warms up, then runs the closure under a small time
//! budget and reports mean ns/iter (plus throughput when configured). That
//! is enough to compare hot-path timings — e.g. the Null-sink tracing
//! overhead check — without the real crate's plotting/analysis stack.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-`iter` time budget. Kept small so the bench binaries also finish
/// quickly when cargo runs them in test mode.
const BUDGET: Duration = Duration::from_millis(120);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label; `from_parameter` mirrors criterion's API.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<D1: Display, D2: Display>(function: D1, parameter: D2) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Debug, Default)]
pub struct Bencher {
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.max_iters || start.elapsed() >= BUDGET {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(id.into(), self.sample_size, None, f);
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let BenchmarkId(label) = id.into();
        run_one(
            BenchmarkId(format!("{}/{}", self.name, label)),
            self.sample_size,
            self.throughput,
            f,
        );
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: BenchmarkId,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        max_iters: sample_size.max(1),
        ..Bencher::default()
    };
    f(&mut bencher);
    let ns = bencher.ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => format!("  {:.1} MiB/s", n as f64 / ns * 1e3 / 1.048_576),
        None => String::new(),
    };
    println!(
        "{:<48} {:>14.1} ns/iter ({} iters){}",
        id.0, ns, bencher.iters, rate
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness flags (e.g. `--bench`, `--test`)
            // that cargo passes to harness = false bench targets.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}
