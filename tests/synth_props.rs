//! Property tests for placement synthesis (vendored proptest shim).
//!
//! [`lint::synthesize`] must behave like a total, deterministic function
//! from (kernel model, lint config) to a placement prescription:
//!
//! * **Coverage** — every page any loop touches is mapped, exactly once,
//!   and only touched pages are mapped;
//! * **Range** — every prescribed node id is a real node of the configured
//!   machine, for arbitrary loop shapes, sizes, team sizes and schedules;
//! * **Determinism** — repeated synthesis is bit-identical (struct equality
//!   and serialized JSON), including under concurrent callers — the
//!   property behind the `--jobs 1` vs `--jobs 4` report equivalence;
//! * **Accounting** — flip pages are a subset of mapped pages, and residual
//!   migrations only ever charge flip pages.

use ccnuma::{vpage_of, AccessKind, Machine, MachineConfig, SimArray, LINE_SHIFT};
use lint::{synthesize, Confidence, LintConfig};
use nas::{BenchName, KernelModel, LoopModel, PhaseModel};
use omp::Schedule;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// f64 elements per cache line.
const EPL: usize = (1usize << LINE_SHIFT) / 8;

/// Per-iteration access shapes (the `fastpath_props.rs` menagerie):
/// thread-local, broadcast-read, seam-crossing, dense, read-only, and
/// all-write patterns cover the ownership shapes the synthesizer sees.
#[derive(Debug, Clone, Copy)]
enum Pattern {
    Stripe,
    Bcast,
    Neighbor,
    Dense,
    ReadOnly,
    AllWrite,
}

/// `(reads, writes)` of iteration `i`, as element indices.
fn accesses(p: Pattern, i: usize, n: usize) -> (Vec<usize>, Vec<usize>) {
    let line = |k: usize| k * EPL;
    match p {
        Pattern::Stripe => (vec![line(i)], vec![line(i)]),
        Pattern::Bcast => (vec![line(0)], vec![line(i + 1)]),
        Pattern::Neighbor => (vec![line((i + 1) % n)], vec![line(i)]),
        Pattern::Dense => (vec![i], vec![i]),
        Pattern::ReadOnly => (vec![line(i)], vec![]),
        Pattern::AllWrite => (vec![], vec![line(0)]),
    }
}

fn elems(p: Pattern, n: usize) -> usize {
    match p {
        Pattern::Dense => n,
        _ => (n + 1) * EPL,
    }
}

fn loop_model(p: Pattern, n: usize, schedule: Schedule, base: u64) -> LoopModel {
    LoopModel::parallel("loop", n, schedule, move |i, emit| {
        let (reads, writes) = accesses(p, i, n);
        for r in reads {
            emit(base + 8 * r as u64, AccessKind::Read);
        }
        for w in writes {
            emit(base + 8 * w as u64, AccessKind::Write);
        }
    })
}

/// A one- or two-phase model over a single array on `tiny_test`, plus the
/// exact set of pages its loops touch.
fn build_model(phases: &[(Pattern, Schedule)], n: usize) -> (KernelModel, BTreeSet<u64>) {
    let size = phases
        .iter()
        .map(|&(p, _)| elems(p, n))
        .max()
        .unwrap()
        .max(1);
    let mut m = Machine::new(MachineConfig::tiny_test());
    let arr = SimArray::<f64>::new(&mut m, "p.a", size, 0.0);
    let base = arr.vrange().0;
    let mut touched = BTreeSet::new();
    for &(p, _) in phases {
        for i in 0..n {
            let (reads, writes) = accesses(p, i, n);
            for idx in reads.into_iter().chain(writes) {
                touched.insert(vpage_of(base + 8 * idx as u64));
            }
        }
    }
    let named: Vec<PhaseModel> = phases
        .iter()
        .enumerate()
        .map(|(k, &(p, s))| {
            let name: &'static str = ["ph0", "ph1"][k];
            PhaseModel::new(name, vec![loop_model(p, n, s, base)])
        })
        .collect();
    let model = KernelModel::new(BenchName::Cg, vec![arr.layout()], vec![], named);
    (model, touched)
}

fn any_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::Stripe),
        Just(Pattern::Bcast),
        Just(Pattern::Neighbor),
        Just(Pattern::Dense),
        Just(Pattern::ReadOnly),
        Just(Pattern::AllWrite),
    ]
}

/// Static schedule flavours only: ownership of dynamic/guided loops
/// depends on execution timing, so the analyzer (and the synthesizer with
/// it) only accepts statically-scheduled models — as all NAS models are.
fn any_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..9).prop_map(Schedule::StaticChunk),
    ]
}

fn tiny_cfg(threads: usize) -> LintConfig {
    LintConfig {
        threads,
        machine: MachineConfig::tiny_test(),
        upm: upmlib::UpmOptions::default(),
        iterations: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coverage + range: the map's domain is exactly the touched page set,
    /// every page appears once inside its array's range, and every
    /// prescribed node exists on the machine.
    #[test]
    fn every_touched_page_is_mapped_exactly_once(
        pattern in any_pattern(),
        n in 1usize..120,
        threads in 1usize..9, // tiny_test has 8 CPUs
        schedule in any_schedule(),
    ) {
        let (model, touched) = build_model(&[(pattern, schedule)], n);
        let cfg = tiny_cfg(threads);
        let map = synthesize(&model, &cfg);
        let mapped: BTreeSet<u64> = map.pages().keys().copied().collect();
        prop_assert_eq!(&mapped, &touched, "map domain != touched pages");
        prop_assert!(map.pages().values().all(|a| a.node < map.nodes()));
        // Each mapped page lies in exactly one array's vpage range.
        for &page in &mapped {
            let owners = map
                .arrays()
                .iter()
                .filter(|r| (r.first_vpage..=r.last_vpage).contains(&page))
                .count();
            prop_assert_eq!(owners, 1, "page {:#x} owned by {} arrays", page, owners);
        }
        // The installable StaticMap agrees page-for-page.
        let stat = map.to_static();
        prop_assert_eq!(stat.len(), map.pages().len());
    }

    /// Determinism: synthesis is a pure function — repeated calls are
    /// equal as structs and byte-identical as JSON.
    #[test]
    fn synthesis_is_bit_identical_across_calls(
        pattern in any_pattern(),
        n in 1usize..120,
        threads in 1usize..9,
        schedule in any_schedule(),
    ) {
        let (model_a, _) = build_model(&[(pattern, schedule)], n);
        let (model_b, _) = build_model(&[(pattern, schedule)], n);
        let cfg = tiny_cfg(threads);
        let a = synthesize(&model_a, &cfg);
        let b = synthesize(&model_b, &cfg);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Accounting: with two phases of arbitrary shapes, flip pages are
    /// mapped pages, and residual migrations only charge flip pages.
    #[test]
    fn residual_traffic_only_charges_flip_pages(
        pa in any_pattern(),
        pb in any_pattern(),
        n in 2usize..80,
        threads in 2usize..9,
        schedule in any_schedule(),
    ) {
        let (model, touched) = build_model(&[(pa, schedule), (pb, schedule)], n);
        let cfg = tiny_cfg(threads);
        let map = synthesize(&model, &cfg);
        let mapped: BTreeSet<u64> = map.pages().keys().copied().collect();
        prop_assert_eq!(&mapped, &touched);
        let flips: BTreeSet<u64> = map.flip_pages().into_iter().collect();
        prop_assert!(flips.is_subset(&mapped));
        for page in map.residual_by_page().keys() {
            prop_assert!(
                flips.contains(page),
                "residual migration charged to stable page {:#x}", page
            );
        }
        for (page, a) in map.pages() {
            prop_assert_eq!(
                a.confidence == Confidence::Flip,
                flips.contains(page),
                "confidence tag and flip set disagree on {:#x}", page
            );
        }
    }
}

/// The real benchmark maps are identical when synthesized concurrently
/// from four threads — no hidden global state, which is what makes
/// `xp --jobs 1` and `--jobs 4` reports byte-identical when they embed
/// static-placement cells.
#[test]
fn concurrent_synthesis_matches_sequential() {
    for bench in [BenchName::Cg, BenchName::Ft] {
        let reference = xp::lint::placement_map(bench, nas::Scale::Tiny)
            .to_json()
            .to_string_pretty();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    xp::lint::placement_map(bench, nas::Scale::Tiny)
                        .to_json()
                        .to_string_pretty()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(
                t.join().expect("synthesis thread"),
                reference,
                "{}: concurrent synthesis diverged",
                bench.label()
            );
        }
    }
}
