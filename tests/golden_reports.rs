//! Golden-report regression tests: the tiny-scale JSON reports are pinned
//! byte-for-byte against fixtures under `tests/golden/`.
//!
//! The simulator is deterministic, so any diff here is a behaviour change,
//! not noise. After an *intentional* change (new column, different model
//! constants), regenerate the fixtures and commit them together with the
//! change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```

use nas::Scale;
use std::path::PathBuf;
use xp::Report;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, report: Report) {
    let rendered = report.to_json().to_string_pretty() + "\n";
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {}: {e}\n\
             regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        )
    });
    if rendered != expected {
        let diff_line = rendered
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first differing line {}:\n  got:      {}\n  expected: {}",
                    i + 1,
                    rendered.lines().nth(i).unwrap_or(""),
                    expected.lines().nth(i).unwrap_or(""),
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: got {}, expected {}",
                    rendered.lines().count(),
                    expected.lines().count()
                )
            });
        panic!(
            "report {name} drifted from its golden fixture.\n{diff_line}\n\
             if the change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_reports` and commit the fixture"
        );
    }
}

#[test]
fn fig1_tiny_matches_golden() {
    check("fig1_tiny.json", xp::fig1::run(Scale::Tiny));
}

#[test]
fn fig4_tiny_matches_golden() {
    check("fig4_tiny.json", xp::fig4::run(Scale::Tiny));
}

#[test]
fn table2_tiny_matches_golden() {
    check("table2_tiny.json", xp::table2::run(Scale::Tiny));
}

#[test]
fn staticplace_tiny_matches_golden() {
    // The four-way head-to-head (ft/static x IRIX/upmlib) plus the
    // synthesis accounting notes: pins the placement synthesizer's output
    // end-to-end through the run pipeline.
    check("staticplace_tiny.json", xp::staticplace::run(Scale::Tiny));
}

#[test]
fn prof_cg_tiny_matches_golden() {
    // The analysis-only report (no artifact or verification notes): pins
    // the phase attribution, convergence summary and heatmap totals of
    // the reference rr-upmlib CG run at Tiny.
    let (_result, _tracer, profile) = xp::prof::profile_one(nas::BenchName::Cg, Scale::Tiny);
    check("prof_cg_tiny.json", xp::prof::report_for(&profile));
}

#[test]
fn lint_tiny_matches_golden() {
    // The full `xp lint --all` report with no deny set and no allowlist:
    // pins every finding (code, site, subject, count and message) at Tiny.
    let run = xp::lint::run(
        &nas::BenchName::all(),
        Scale::Tiny,
        &std::collections::BTreeSet::new(),
        &lint::Allowlist::empty(),
    );
    check("lint_tiny.json", run.report);
}
