//! End-to-end integration tests: full benchmark pipelines through the
//! harness, asserting the paper's qualitative orderings at small scale.

use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use upmlib::UpmOptions;
use vmm::{KernelMigrationConfig, PlacementScheme};
use xp::run_one;

fn run(bench: BenchName, placement: PlacementScheme, engine: EngineMode) -> RunResult {
    run_one(
        bench,
        Scale::Tiny,
        &RunConfig {
            placement,
            engine,
            ..RunConfig::paper_default()
        },
    )
}

fn run_small(bench: BenchName, placement: PlacementScheme, engine: EngineMode) -> RunResult {
    run_one(
        bench,
        Scale::Small,
        &RunConfig {
            placement,
            engine,
            ..RunConfig::paper_default()
        },
    )
}

#[test]
fn every_benchmark_verifies_under_every_placement() {
    for bench in BenchName::all() {
        for placement in PlacementScheme::all(99) {
            let r = run(bench, placement.clone(), EngineMode::None);
            assert!(
                r.verification.passed,
                "{} under {} failed verification: value {} vs reference {}",
                bench.label(),
                placement.label(),
                r.verification.value,
                r.verification.reference
            );
        }
    }
}

#[test]
fn numerics_are_independent_of_placement() {
    // The verification value must be bit-identical across placements:
    // placement changes time, never results.
    for bench in BenchName::all() {
        let values: Vec<f64> = PlacementScheme::all(7)
            .into_iter()
            .map(|p| run(bench, p, EngineMode::None).verification.value)
            .collect();
        for v in &values[1..] {
            assert_eq!(*v, values[0], "{}: {values:?}", bench.label());
        }
    }
}

#[test]
fn numerics_survive_migration_engines() {
    for engine in [
        EngineMode::IrixMig(KernelMigrationConfig::default()),
        EngineMode::Upmlib(UpmOptions::default()),
    ] {
        for bench in BenchName::all() {
            let plain = run(bench, PlacementScheme::RoundRobin, EngineMode::None);
            let with_engine = run(bench, PlacementScheme::RoundRobin, engine.clone());
            assert_eq!(
                plain.verification.value,
                with_engine.verification.value,
                "{} + {:?}: migration must not alter results",
                bench.label(),
                engine.label()
            );
        }
    }
}

#[test]
fn worst_case_placement_is_slower_than_first_touch() {
    // Paper Figure 1's core ordering, at a scale with real memory traffic.
    for bench in [BenchName::Cg, BenchName::Mg, BenchName::Ft] {
        let ft = run_small(bench, PlacementScheme::FirstTouch, EngineMode::None);
        let wc = run_small(
            bench,
            PlacementScheme::WorstCase { node: 0 },
            EngineMode::None,
        );
        assert!(
            wc.total_secs > ft.total_secs * 1.2,
            "{}: wc {} vs ft {}",
            bench.label(),
            wc.total_secs,
            ft.total_secs
        );
    }
}

#[test]
fn balanced_schemes_are_much_better_than_worst_case() {
    // "any reasonably balanced page placement scheme makes the performance
    // impact of mediocre page-level locality modest" (paper §2.2).
    let bench = BenchName::Mg;
    let ft = run_small(bench, PlacementScheme::FirstTouch, EngineMode::None);
    let rr = run_small(bench, PlacementScheme::RoundRobin, EngineMode::None);
    let wc = run_small(
        bench,
        PlacementScheme::WorstCase { node: 0 },
        EngineMode::None,
    );
    let rr_slowdown = rr.total_secs / ft.total_secs;
    let wc_slowdown = wc.total_secs / ft.total_secs;
    assert!(
        wc_slowdown > 1.5 * rr_slowdown,
        "wc ({wc_slowdown:.2}x) should dwarf rr ({rr_slowdown:.2}x)"
    );
}

#[test]
fn upmlib_settles_worst_case_to_first_touch_speed() {
    // The paper's headline (Figure 4 / Table 2): with the engine, steady
    // state is insensitive to the initial placement.
    for bench in [BenchName::Cg, BenchName::Mg] {
        let ft = run_small(bench, PlacementScheme::FirstTouch, EngineMode::None);
        let wc_upm = run_small(
            bench,
            PlacementScheme::WorstCase { node: 0 },
            EngineMode::Upmlib(UpmOptions::default()),
        );
        // Compare the final iterations: by then the engine has settled (the
        // Small runs are short, so earlier iterations still carry the
        // pre-migration placement and the migration overhead).
        let settled = |r: &nas::RunResult| *r.per_iter_secs.last().unwrap();
        assert!(
            settled(&wc_upm) < settled(&ft) * 1.25,
            "{}: settled wc-upmlib {} vs settled ft {}",
            bench.label(),
            settled(&wc_upm),
            settled(&ft)
        );
    }
}

#[test]
fn upmlib_self_deactivates_and_concentrates_migrations_early() {
    let r = run_small(
        BenchName::Mg,
        PlacementScheme::RoundRobin,
        EngineMode::Upmlib(UpmOptions::default()),
    );
    let stats = r.upm.expect("upmlib stats present");
    assert!(
        stats.total_distribution_migrations() > 0,
        "engine must find work under rr"
    );
    // Table 2: the overwhelming share of migrations happens right after the
    // first iteration.
    assert!(
        stats.first_invocation_fraction() >= 0.78,
        "first-invocation share {}",
        stats.first_invocation_fraction()
    );
    // Self-deactivation: the last recorded invocation moved nothing.
    assert_eq!(*stats.migrations_per_invocation.last().unwrap(), 0);
}

#[test]
fn recrep_charges_overhead_and_restores_placement() {
    let r = run_small(
        BenchName::Bt,
        PlacementScheme::FirstTouch,
        EngineMode::RecRep(UpmOptions::default()),
    );
    assert!(r.verification.passed);
    let stats = r.upm.expect("stats");
    assert!(stats.replay_migrations > 0, "replay must move pages");
    // Undo mirrors replay (placement restored every iteration).
    assert_eq!(stats.replay_migrations, stats.undo_migrations);
    assert!(r.recrep_overhead_secs > 0.0);
}

#[test]
fn kernel_engine_helps_worst_case_mg() {
    // Paper: "Only in one case, MG with worst-case page placement, the IRIX
    // page migration engine is able to improve performance drastically".
    let wc = run_small(
        BenchName::Mg,
        PlacementScheme::WorstCase { node: 0 },
        EngineMode::None,
    );
    let wc_mig = run_small(
        BenchName::Mg,
        PlacementScheme::WorstCase { node: 0 },
        EngineMode::IrixMig(KernelMigrationConfig::default()),
    );
    assert!(
        wc_mig.total_secs < wc.total_secs * 0.8,
        "kernel migration should drastically improve MG-wc: {} vs {}",
        wc_mig.total_secs,
        wc.total_secs
    );
}

#[test]
fn remote_fraction_reflects_placement() {
    let ft = run_small(BenchName::Mg, PlacementScheme::FirstTouch, EngineMode::None);
    let wc = run_small(
        BenchName::Mg,
        PlacementScheme::WorstCase { node: 0 },
        EngineMode::None,
    );
    assert!(
        wc.remote_fraction > ft.remote_fraction,
        "wc remote {} must exceed ft remote {}",
        wc.remote_fraction,
        ft.remote_fraction
    );
    // With everything on one of 8 nodes, ~7/8 of misses are remote.
    assert!(
        wc.remote_fraction > 0.7,
        "wc remote fraction {}",
        wc.remote_fraction
    );
}
