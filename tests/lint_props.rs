//! Property tests for the static analyzer's foundations (vendored proptest
//! shim): schedule chunk maps partition the iteration space, and the race
//! checker is sound on disjoint chunks and complete on injected overlaps.

use ccnuma::{AccessKind, Machine, MachineConfig, SimArray};
use lint::{Code, LintConfig};
use nas::{BenchName, KernelModel, LoopModel, PhaseModel};
use omp::Schedule;
use proptest::prelude::*;
use upmlib::UpmOptions;

/// A strategy over the statically-chunkable schedules.
fn static_schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..9).prop_map(Schedule::StaticChunk),
    ]
}

fn lint_cfg(threads: usize) -> LintConfig {
    LintConfig {
        threads,
        machine: MachineConfig::tiny_test(),
        upm: UpmOptions::default(),
        iterations: 4,
    }
}

/// Analyze a single `n`-iteration loop over a fresh array, where iteration
/// `i` writes element `write_of(i)`.
fn analyze_loop(
    n: usize,
    threads: usize,
    schedule: Schedule,
    write_of: impl Fn(usize) -> usize + 'static,
) -> Vec<lint::Finding> {
    let mut m = Machine::new(MachineConfig::tiny_test());
    let arr = SimArray::<f64>::new(&mut m, "p.a", n, 0.0);
    let base = arr.vrange().0;
    let lp = LoopModel::parallel("loop", n, schedule, move |i, emit| {
        emit(base + 8 * write_of(i) as u64, AccessKind::Write)
    });
    let model = KernelModel::new(
        BenchName::Cg,
        vec![arr.layout()],
        vec![],
        vec![PhaseModel::new("p", vec![lp])],
    );
    lint::analyze(&model, &lint_cfg(threads)).findings
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `static_chunks` chunks are pairwise disjoint and cover `0..n`
    /// exactly once, for arbitrary (n, threads, schedule).
    #[test]
    fn static_chunks_partition_the_iteration_space(
        n in 0usize..400,
        threads in 1usize..17,
        schedule in static_schedules(),
    ) {
        let chunks = schedule.static_chunks(n, threads);
        prop_assert_eq!(chunks.len(), threads);
        let mut seen = vec![0u32; n];
        for per_thread in &chunks {
            for &(start, end) in per_thread {
                prop_assert!(start <= end && end <= n, "chunk ({start},{end}) out of 0..{n}");
                for slot in &mut seen[start..end] {
                    *slot += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each iteration owned exactly once");
    }

    /// The race checker finds zero conflicts when every thread writes only
    /// elements of its own chunks.
    #[test]
    fn disjoint_chunks_have_no_races(
        n in 1usize..300,
        threads in 1usize..17,
        schedule in static_schedules(),
    ) {
        let findings = analyze_loop(n, threads, schedule, |i| i);
        prop_assert!(
            findings.iter().all(|f| f.code != Code::WriteWriteRace
                && f.code != Code::ReadWriteRace),
            "spurious race on a disjoint loop: {:?}",
            findings
        );
    }

    /// An injected overlap — every iteration also writes element 0 — is
    /// always reported as a write-write race once two threads own work.
    #[test]
    fn injected_overlap_is_always_found(
        n in 2usize..300,
        threads in 2usize..17,
        schedule in static_schedules(),
    ) {
        // Every iteration writes element 0, so any two threads that own
        // work collide there — the classic unsynchronized accumulation.
        let findings = analyze_loop(n, threads, schedule, |_i| 0);
        let owners = schedule
            .static_chunks(n, threads)
            .iter()
            .filter(|c| !c.is_empty())
            .count();
        if owners >= 2 {
            prop_assert!(
                findings.iter().any(|f| f.code == Code::WriteWriteRace),
                "overlap must be reported (n={}, threads={}): {:?}",
                n,
                threads,
                findings
            );
        }
    }
}
