//! Differential determinism: the same experiment run serially (`jobs=1`)
//! and host-parallel (`jobs=4`) must render byte-identical JSON and
//! markdown reports, and credit bit-identical simulated seconds.
//!
//! This is the executor's core contract (see `crates/xp/src/cells.rs`):
//! cell results merge in plan order, deferred side effects replay in plan
//! order, so the worker count is invisible in every artifact.

use nas::Scale;
use std::sync::Mutex;
use xp::Report;

/// `xp::jobs` is a process-global knob; tests in this file that flip it
/// take the guard so the two runs under comparison cannot interleave with
/// another test's setting.
static JOBS_GUARD: Mutex<()> = Mutex::new(());

/// Run `f` with the worker count pinned to `jobs`, restoring the default
/// afterwards. Also snapshots the simulated-seconds accumulator so each
/// run's credit is observed in isolation.
fn render_with_jobs(jobs: usize, f: impl Fn() -> Report) -> (String, String, u64) {
    xp::jobs::set(jobs);
    xp::summary::take_sim_secs();
    let report = f();
    let sim_bits = xp::summary::take_sim_secs().to_bits();
    xp::jobs::set(0);
    (
        report.to_json().to_string_pretty(),
        report.to_markdown(),
        sim_bits,
    )
}

fn assert_jobs_invariant(f: impl Fn() -> Report) {
    let _guard = JOBS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let (json_1, md_1, sim_1) = render_with_jobs(1, &f);
    let (json_4, md_4, sim_4) = render_with_jobs(4, &f);
    assert_eq!(
        json_1, json_4,
        "JSON report differs between jobs=1 and jobs=4"
    );
    assert_eq!(
        md_1, md_4,
        "markdown report differs between jobs=1 and jobs=4"
    );
    assert_eq!(
        sim_1, sim_4,
        "simulated-seconds credit differs between jobs=1 and jobs=4"
    );
}

#[test]
fn fig1_is_identical_under_one_and_four_workers() {
    assert_jobs_invariant(|| xp::fig1::run(Scale::Tiny));
}

#[test]
fn multiprog_is_identical_under_one_and_four_workers() {
    assert_jobs_invariant(|| xp::multiprog::run(Scale::Tiny));
}

#[test]
fn table2_is_identical_under_one_and_four_workers() {
    assert_jobs_invariant(|| xp::table2::run(Scale::Tiny));
}

#[test]
fn prof_is_identical_under_one_and_four_workers() {
    // The profiler's report is a pure function of the analysed trace
    // (artifact stems in the notes, never paths), so the full `xp prof`
    // pipeline must be jobs-invariant like every other command.
    let dir = std::env::temp_dir().join(format!("ddnomp-prof-det-{}", std::process::id()));
    assert_jobs_invariant(|| {
        xp::prof::run(&[nas::BenchName::Cg], Scale::Tiny, &dir)
            .pop()
            .expect("one report per bench")
    });
    let _ = std::fs::remove_dir_all(&dir);
}
