//! Property-based integration tests over the machine + VM subsystem:
//! frame accounting, migration safety, placement invariants, and the
//! UPMlib undo involution, under randomized operation sequences.

use ccnuma::{AccessKind, Machine, MachineConfig, PAGE_SIZE};
use proptest::prelude::*;
use vmm::{install_placement, MldSet, PlacementScheme, ProcCounters};

/// Operations a random test program can perform.
#[derive(Debug, Clone)]
enum Op {
    /// CPU touches a byte offset within the arena (read or write).
    Touch {
        cpu: usize,
        page: usize,
        line: usize,
        write: bool,
    },
    /// Migrate a page to a node.
    Migrate { page: usize, node: usize },
    /// Reset a page's counters.
    Reset { page: usize },
}

fn op_strategy(pages: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8usize, 0..pages, 0..128usize, any::<bool>()).prop_map(|(cpu, page, line, write)| {
            Op::Touch {
                cpu,
                page,
                line,
                write,
            }
        }),
        (0..pages, 0..4usize).prop_map(|(page, node)| Op::Migrate { page, node }),
        (0..pages).prop_map(|page| Op::Reset { page }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_accounting_survives_random_op_sequences(
        ops in proptest::collection::vec(op_strategy(8), 1..200),
        placement_pick in 0..3usize,
    ) {
        let mut machine = Machine::new(MachineConfig::tiny_test());
        let placement = match placement_pick {
            0 => PlacementScheme::FirstTouch,
            1 => PlacementScheme::RoundRobin,
            _ => PlacementScheme::Random { seed: 11 },
        };
        install_placement(&mut machine, placement);
        let base = machine.reserve_vspace(8 * PAGE_SIZE);
        let total_frames = machine.memory().total_frames();
        let mlds = MldSet::for_machine(&machine);

        for op in ops {
            match op {
                Op::Touch { cpu, page, line, write } => {
                    let addr = base + page as u64 * PAGE_SIZE + line as u64 * 128;
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    let ns = machine.touch(cpu, addr, kind);
                    prop_assert!(ns > 0.0 && ns.is_finite());
                }
                Op::Migrate { page, node } => {
                    let vp = ccnuma::vpage_of(base) + page as u64;
                    // Migrating unmapped pages must fail cleanly; mapped
                    // ones must succeed (memory is plentiful here).
                    let mapped = machine.frame_of(vp).is_some();
                    let result = mlds.migrate_page(&mut machine, vp, mlds.mld(node));
                    prop_assert_eq!(result.is_ok(), mapped);
                }
                Op::Reset { page } => {
                    let vp = ccnuma::vpage_of(base) + page as u64;
                    ProcCounters.reset(&machine, vp);
                }
            }
            // Invariant: allocated + free frames == total, always.
            let free = machine.memory().total_free();
            let mapped = machine.mapped_pages().count();
            prop_assert_eq!(free + mapped, total_frames);
        }
    }

    #[test]
    fn touch_latency_is_bounded_by_the_hierarchy(
        cpu in 0..8usize,
        page in 0..4usize,
        line in 0..128usize,
    ) {
        let mut machine = Machine::new(MachineConfig::tiny_test());
        let base = machine.reserve_vspace(4 * PAGE_SIZE);
        let addr = base + page as u64 * PAGE_SIZE + line as u64 * 128;
        let cold = machine.touch(cpu, addr, AccessKind::Read);
        let warm = machine.touch(cpu, addr, AccessKind::Read);
        // Cold access reaches memory: at least local latency.
        prop_assert!(cold >= 329.0, "cold {}", cold);
        // Paper Table 1's ceiling (3 hops) bounds the tiny 4-node machine.
        prop_assert!(cold <= 862.0, "cold {}", cold);
        // Warm access hits L1.
        prop_assert_eq!(warm, 5.5);
    }

    #[test]
    fn counters_equal_memory_accesses(
        lines in proptest::collection::vec((0..8usize, 0..256usize), 1..100),
    ) {
        let mut machine = Machine::new(MachineConfig::tiny_test());
        let base = machine.reserve_vspace(2 * PAGE_SIZE);
        for &(cpu, line) in &lines {
            machine.touch(cpu, base + line as u64 * 128, AccessKind::Read);
        }
        // Sum of per-page counters == total memory accesses seen by CPUs.
        let stats = machine.aggregate_cpu_stats();
        let counted: u64 = machine
            .mapped_pages()
            .map(|(_, frame)| {
                (0..4).map(|n| machine.counters().get(frame, n)).sum::<u64>()
            })
            .sum();
        prop_assert_eq!(counted, stats.mem_accesses());
    }

    #[test]
    fn migration_never_loses_page_contents(
        moves in proptest::collection::vec(0..4usize, 1..20),
    ) {
        use ccnuma::SimArray;
        let mut machine = Machine::new(MachineConfig::tiny_test());
        let arr = SimArray::from_fn(&mut machine, "a", 2048, |i| i as f64);
        // Fault the pages in.
        for i in (0..2048).step_by(16) {
            arr.get(&mut machine, 0, i);
        }
        let vp = ccnuma::vpage_of(arr.vrange().0);
        for node in moves {
            machine.migrate_page(vp, node).unwrap();
        }
        for i in 0..2048 {
            prop_assert_eq!(arr.peek(i), i as f64);
        }
    }
}

#[test]
fn round_robin_balances_within_one_page() {
    let mut machine = Machine::new(MachineConfig::tiny_test());
    install_placement(&mut machine, PlacementScheme::RoundRobin);
    let pages = 32u64;
    let base = machine.reserve_vspace(pages * PAGE_SIZE);
    for p in 0..pages {
        machine.touch(0, base + p * PAGE_SIZE, AccessKind::Read);
    }
    let mut per_node = [0usize; 4];
    for p in 0..pages {
        per_node[machine.node_of_vpage(ccnuma::vpage_of(base) + p).unwrap()] += 1;
    }
    assert!(per_node.iter().all(|&c| c == 8), "{per_node:?}");
}
