//! Differential equivalence suite for the ccnuma phase fast path.
//!
//! The fast path (`ccnuma::fastpath`) replays whole parallel regions from
//! memoized effect sets instead of walking the cache/coherence/counter
//! machinery line by line. Its contract is *bit-identity*: a run with the
//! fast path on must produce exactly the same simulated times, statistics,
//! verification values, engine behaviour and reports as the exact path.
//! These tests enforce that contract end to end, on every benchmark and
//! every engine protocol.
//!
//! The fast path is on by default and disabled with `DDNOMP_FASTPATH=0`;
//! tests here force it per-run via `BenchRun::set_fastpath` /
//! `run_one_fastpath` so they stay independent of the ambient environment.

use nas::{BenchName, BenchRun, EngineMode, RunConfig, Scale};
use upmlib::UpmOptions;
use vmm::{KernelMigrationConfig, PlacementScheme};
use xp::run_one_fastpath;

/// Byte-exact serialized form of everything a run measures (simulated
/// times, per-iteration times, verification, UPMlib stats, kernel
/// migrations, remote fraction, record–replay overhead).
fn run_bytes(bench: BenchName, cfg: &RunConfig, fastpath: bool) -> String {
    run_one_fastpath(bench, Scale::Tiny, cfg, fastpath)
        .to_cache_json()
        .to_string()
}

fn assert_differential(bench: BenchName, cfg: &RunConfig, what: &str) {
    let slow = run_bytes(bench, cfg, false);
    let fast = run_bytes(bench, cfg, true);
    assert_eq!(
        slow,
        fast,
        "{} {what}: fast path diverged from the exact path",
        bench.label()
    );
}

#[test]
fn all_benches_bit_identical_plain() {
    for bench in BenchName::all() {
        assert_differential(bench, &RunConfig::paper_default(), "plain");
    }
}

#[test]
fn all_benches_bit_identical_under_irix_migration() {
    // The kernel engine reads the same reference counters the fast path
    // updates in bulk; a single miscredited counter changes its migration
    // decisions and shows up here.
    for bench in BenchName::all() {
        let cfg = RunConfig {
            placement: PlacementScheme::RoundRobin,
            engine: EngineMode::IrixMig(KernelMigrationConfig::default()),
            ..RunConfig::paper_default()
        };
        assert_differential(bench, &cfg, "IRIXmig");
    }
}

#[test]
fn all_benches_bit_identical_under_upmlib() {
    // UPMlib's distribution passes consume counter snapshots between
    // iterations and migrate pages — which also invalidates fast-path
    // memos (frame fingerprints change), exercising re-recording.
    for bench in BenchName::all() {
        let cfg = RunConfig {
            placement: PlacementScheme::WorstCase { node: 0 },
            engine: EngineMode::Upmlib(UpmOptions::default()),
            ..RunConfig::paper_default()
        };
        assert_differential(bench, &cfg, "upmlib");
    }
}

#[test]
fn recrep_protocol_bit_identical() {
    // Record–replay migrates pages at phase boundaries *inside* an
    // iteration: the fast path must fall back / re-record around them.
    // (BT and SP are the phase-change benchmarks the protocol targets.)
    for bench in [BenchName::Bt, BenchName::Sp] {
        let cfg = RunConfig {
            placement: PlacementScheme::WorstCase { node: 0 },
            engine: EngineMode::RecRep(UpmOptions::default()),
            ..RunConfig::paper_default()
        };
        assert_differential(bench, &cfg, "recrep");
    }
}

#[test]
fn upm_stats_bit_identical() {
    let cfg = RunConfig {
        placement: PlacementScheme::WorstCase { node: 0 },
        engine: EngineMode::Upmlib(UpmOptions::default()),
        ..RunConfig::paper_default()
    };
    let slow = run_one_fastpath(BenchName::Cg, Scale::Tiny, &cfg, false);
    let fast = run_one_fastpath(BenchName::Cg, Scale::Tiny, &cfg, true);
    assert_eq!(slow.upm, fast.upm, "UpmStats diverged");
    assert_eq!(slow.total_secs.to_bits(), fast.total_secs.to_bits());
    for (a, b) in slow.per_iter_secs.iter().zip(&fast.per_iter_secs) {
        assert_eq!(a.to_bits(), b.to_bits(), "per-iteration time diverged");
    }
}

#[test]
fn fast_path_actually_engages() {
    // The equivalence tests above are vacuous if the fast path never
    // fires; pin that CG and MG replay most of their timed regions.
    for bench in [BenchName::Cg, BenchName::Mg] {
        let cfg = RunConfig::paper_default();
        let mut run = match bench {
            BenchName::Cg => BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg),
            _ => BenchRun::new(|rt| nas::mg::Mg::new(rt, Scale::Tiny), &cfg),
        };
        run.set_fastpath(true);
        while !run.is_done() {
            run.step();
        }
        let stats = run
            .fastpath_stats()
            .expect("fast path installed for a modeled benchmark");
        assert!(
            stats.records > 0,
            "{}: no region was ever recorded: {stats:?}",
            bench.label()
        );
        assert!(
            stats.replays > stats.records,
            "{}: steady-state iterations should replay far more than they \
             record: {stats:?}",
            bench.label()
        );
    }
}

#[test]
fn forced_off_never_installs() {
    let cfg = RunConfig::paper_default();
    let mut run = BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg);
    run.set_fastpath(false);
    assert!(!run.fastpath_enabled());
    while !run.is_done() {
        run.step();
    }
    assert!(run.fastpath_stats().is_none());
}

#[test]
fn traced_runs_force_the_exact_path() {
    // The fast path replays a region without emitting per-access trace
    // events, so traced runs must silently stay exact.
    let cfg = RunConfig {
        trace: true,
        ..RunConfig::paper_default()
    };
    let mut run = BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg);
    run.set_fastpath(true); // explicitly requested, still refused
    assert!(!run.fastpath_enabled());
    while !run.is_done() {
        run.step();
    }
    assert!(run.fastpath_stats().is_none());
}

/// Environment-variable semantics and whole-report byte-identity. All
/// `DDNOMP_FASTPATH` mutation lives in this one test: other tests in this
/// binary force the mode per-run, so the ambient value never matters to
/// them and there is no cross-test race.
#[test]
fn env_var_semantics_and_golden_report_identity() {
    let cfg = RunConfig::paper_default();

    std::env::set_var("DDNOMP_FASTPATH", "0");
    let run = BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg);
    assert!(!run.fastpath_enabled(), "DDNOMP_FASTPATH=0 must disable");
    // A full figure-1 grid on the exact path…
    let slow_report = xp::fig1::run(Scale::Tiny).to_json().to_string_pretty();

    std::env::set_var("DDNOMP_FASTPATH", "1");
    let run = BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg);
    assert!(run.fastpath_enabled(), "DDNOMP_FASTPATH=1 must enable");
    // …must match the same grid on the fast path, byte for byte.
    let fast_report = xp::fig1::run(Scale::Tiny).to_json().to_string_pretty();

    std::env::remove_var("DDNOMP_FASTPATH");
    let run = BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg);
    assert!(run.fastpath_enabled(), "fast path defaults on");

    assert_eq!(slow_report, fast_report, "fig1 tiny report diverged");

    // The committed golden fixture was recorded with the default (fast)
    // path; the slow-path report matching it closes the loop with the
    // golden_reports suite.
    let fixture = std::fs::read_to_string(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig1_tiny.json"),
    )
    .expect("golden fig1 fixture");
    assert_eq!(slow_report + "\n", fixture, "slow path drifted from golden");
}

#[test]
fn lint_findings_identical_either_way() {
    // Lint consumes the same KernelModel the proofs are derived from but
    // never executes the machine; its findings must be untouched by the
    // fast path. (Static by construction — pinned so a future lint that
    // *does* run the machine keeps the invariant.)
    let deny = std::collections::BTreeSet::new();
    let allow = lint::Allowlist::empty();
    let a = xp::lint::run(&BenchName::all(), Scale::Tiny, &deny, &allow)
        .report
        .to_json()
        .to_string();
    let b = xp::lint::run(&BenchName::all(), Scale::Tiny, &deny, &allow)
        .report
        .to_json()
        .to_string();
    assert_eq!(a, b);
}
