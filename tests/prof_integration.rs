//! End-to-end checks of the trace-driven profiler: the profile built from
//! a live run must reconcile exactly with the engine's own statistics,
//! attribute every benchmark's regions without falling back to numbered
//! labels, and survive a JSONL export/import round trip unchanged.

use nas::{BenchName, Scale};
use prof::{PhaseKind, Profile};

#[test]
fn cg_profile_reconciles_with_upm_stats() {
    let (result, tracer, profile) = xp::prof::profile_one(BenchName::Cg, Scale::Tiny);
    assert!(result.verification.passed, "profiled CG run must verify");
    assert_eq!(tracer.dropped_events(), 0, "tiny run must fit in the ring");
    assert!(profile.warnings.is_empty(), "{:?}", profile.warnings);

    // The per-iteration migration totals must match UPMlib's own
    // migrations_per_invocation exactly: a prefix equality while the
    // engine is live, trailing zeros once it has deactivated.
    let upm = result.upm.as_ref().expect("upmlib run records stats");
    let invocations = &upm.migrations_per_invocation;
    assert!(!invocations.is_empty(), "the engine must have been invoked");
    assert_eq!(profile.iterations.len(), result.per_iter_secs.len());
    for (i, row) in profile.iterations.iter().enumerate() {
        let expected = invocations.get(i).copied().unwrap_or(0);
        assert_eq!(
            row.migrations, expected,
            "iteration {i}: profile says {}, UpmStats says {expected}",
            row.migrations
        );
    }

    // Those same moves reconcile three more ways: the engine decay curve,
    // the convergence total, and the per-phase migration column.
    let decay_total: u64 = profile
        .convergence
        .decay
        .iter()
        .map(|(_, m)| *m as u64)
        .sum();
    let stats_total: u64 = invocations.iter().sum();
    assert_eq!(decay_total, stats_total);
    assert_eq!(profile.convergence.total_migrations, stats_total);
    let per_phase: u64 = profile.phases.iter().map(|r| r.migrations).sum();
    assert_eq!(per_phase, stats_total);

    // Convergence: round-robin CG migrates, then the engine turns off.
    assert!(stats_total > 0, "round-robin CG must migrate pages");
    assert!(
        profile.convergence.deactivated_at.is_some(),
        "the engine must deactivate at tiny scale"
    );

    // Migration landings in the heatmaps account for every engine move
    // (every CG page belongs to a registered array).
    let heatmap_moves: u64 = profile
        .heatmaps
        .iter()
        .map(|m| prof::ArrayHeatmap::total(&m.migrations_in))
        .sum();
    assert_eq!(heatmap_moves, stats_total);
}

#[test]
fn every_benchmark_attributes_without_fallback_at_tiny() {
    for bench in BenchName::all() {
        let (result, _tracer, profile) = xp::prof::profile_one(bench, Scale::Tiny);
        assert!(result.verification.passed, "{bench:?} must verify");
        assert!(
            profile.warnings.is_empty(),
            "{bench:?} phase map must align cleanly: {:?}",
            profile.warnings
        );
        assert!(
            profile.phases.iter().all(|r| r.kind != PhaseKind::Unmapped),
            "{bench:?} must not fall back to numbered regions"
        );
        // Each model-named timed loop appears as one aggregated row with
        // one execution per occurrence per timed iteration.
        let ctx = xp::prof::context_for(bench, Scale::Tiny);
        let iters = result.per_iter_secs.len() as u64;
        for name in &ctx.iteration_loops {
            let occurrences = ctx.iteration_loops.iter().filter(|n| n == &name).count() as u64;
            let row = profile
                .phases
                .iter()
                .find(|r| &r.label == name)
                .unwrap_or_else(|| panic!("{bench:?}: missing iteration row {name}"));
            assert_eq!(row.kind, PhaseKind::Iteration, "{bench:?} {name}");
            assert_eq!(row.executions, iters * occurrences, "{bench:?} {name}");
        }
    }
}

#[test]
fn profile_of_reimported_trace_is_identical() {
    // Export the trace as JSONL, re-import it, profile the imported
    // events: the offline profile must render byte-identically to the
    // live one — the `--from FILE` workflow loses nothing.
    let (_result, tracer, live) = xp::prof::profile_one(BenchName::Mg, Scale::Tiny);
    let jsonl = obs::export::to_jsonl(tracer.ring.iter(), tracer.dropped_events());
    let loaded = obs::import::parse_jsonl(&jsonl).expect("exported trace re-imports");
    assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
    let ctx = xp::prof::context_for(BenchName::Mg, Scale::Tiny);
    let offline = Profile::analyze(&loaded.events, &ctx, loaded.dropped_events);
    assert_eq!(live.to_markdown(), offline.to_markdown());
    let live_report = xp::prof::report_for(&live);
    let offline_report = xp::prof::report_for(&offline);
    assert_eq!(
        live_report.to_json().to_string_pretty(),
        offline_report.to_json().to_string_pretty()
    );
}
