//! Cross-thread integrity of the host span profiler: every worker thread
//! of the exec pool keeps its own span stack, so spans opened by jobs on
//! worker 0 and by stolen jobs on other workers must never interleave
//! into one tree — each job's root stays a root on exactly one thread,
//! with its children nested under it and nothing orphaned.
//!
//! Sibling tests in this binary may run their own hostprof sessions or
//! touch instrumented hot paths concurrently (sessions serialize on the
//! process-wide session lock, but non-session threads still record while
//! a session is open), so every assertion here is scoped to span names
//! only this file uses.

use exec::{Job, Pool};
use hostprof::SpanNode;

/// Find a node by name anywhere in a forest, returning every match with
/// its depth.
fn find_all<'a>(
    nodes: &'a [SpanNode],
    name: &str,
    depth: usize,
    out: &mut Vec<(&'a SpanNode, usize)>,
) {
    for node in nodes {
        if node.name == name {
            out.push((node, depth));
        }
        find_all(&node.children, name, depth + 1, out);
    }
}

#[test]
fn worker_span_stacks_never_interleave() {
    const JOBS: usize = 16;
    let session = hostprof::start();
    let pool = Pool::new(4);
    let jobs: Vec<Job<()>> = (0..JOBS)
        .map(|i| {
            Box::new(move || {
                let _root = hostprof::span_named(|| format!("hsx-job:{i}"));
                for _ in 0..3 {
                    let _inner = hostprof::span("hsx-work.inner");
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }) as Job<()>
        })
        .collect();
    let (results, telemetry) = pool.run_timed(jobs, None);
    assert!(results.iter().all(|r| r.result.is_ok()));
    assert_eq!(telemetry.jobs_total, JOBS);
    let report = session.finish();

    for i in 0..JOBS {
        let name = format!("hsx-job:{i}");
        // Exactly one occurrence across every thread, and it is a root:
        // a stolen job opening its root while another worker has a span
        // open must not end up nested under that other worker's stack.
        let mut hits = Vec::new();
        for thread in &report.threads {
            let mut found = Vec::new();
            find_all(&thread.roots, &name, 0, &mut found);
            for (node, depth) in found {
                hits.push((thread.label.clone(), node, depth));
            }
        }
        assert_eq!(hits.len(), 1, "span {name} appears once: {hits:?}");
        // Worker 0 runs on the calling thread, the rest on `xp-worker-N`
        // threads; either way the job's root must be a root there.
        let (label, node, depth) = &hits[0];
        assert_eq!(*depth, 0, "{name} is a root, not nested under {label}");
        assert_eq!(node.calls, 1);
        assert_eq!(
            node.children.len(),
            1,
            "{name} children: {:?}",
            node.children
        );
        assert_eq!(node.children[0].name, "hsx-work.inner");
        assert_eq!(node.children[0].calls, 3);
    }
    // The inner span never leaks to a root on any thread: it is only ever
    // opened while its job's root is on the same thread's stack.
    for thread in &report.threads {
        assert!(
            !thread.roots.iter().any(|r| r.name == "hsx-work.inner"),
            "orphaned inner span on {}",
            thread.label
        );
    }
}

#[test]
fn a_panicking_job_leaves_its_worker_stack_balanced() {
    let session = hostprof::start();
    let pool = Pool::new(1);
    let jobs: Vec<Job<()>> = vec![
        Box::new(|| {
            let _outer = hostprof::span("hsx-doomed.outer");
            let _inner = hostprof::span("hsx-doomed.inner");
            panic!("mid-span panic");
        }),
        Box::new(|| {
            let _after = hostprof::span("hsx-after.root");
        }),
    ];
    let (results, _telemetry) = pool.run_timed(jobs, None);
    assert!(results[0].result.is_err());
    assert!(results[1].result.is_ok());
    let report = session.finish();

    // The unwind closed both spans in order, so the tree is balanced...
    let doomed = report.root("hsx-doomed.outer").expect("doomed root exists");
    assert_eq!(doomed.children.len(), 1);
    assert_eq!(doomed.children[0].name, "hsx-doomed.inner");
    // ...and the next job on the same worker starts a fresh root instead
    // of nesting under the dead job's spans.
    let mut nested = Vec::new();
    for thread in &report.threads {
        find_all(&thread.roots, "hsx-after.root", 0, &mut nested);
    }
    assert_eq!(nested.len(), 1);
    assert_eq!(nested[0].1, 0, "after.root is a root");
}

/// The phase fast path's effect where it must show: with the fast path on,
/// a CG run spends strictly less host time inside `ccnuma` spans than the
/// exact path — replayed regions suppress the per-access simulation, and
/// the engine's own `ccnuma.fastpath` spans are counted against it in the
/// same component bucket, so the comparison includes its overhead.
#[test]
fn fastpath_cg_spends_less_ccnuma_self_time_than_exact() {
    fn ccnuma_self_secs(fast: bool) -> f64 {
        let session = hostprof::start();
        let cfg = xp::bench_gate::gate_config();
        let r = xp::run_one_fastpath(nas::BenchName::Cg, nas::Scale::Tiny, &cfg, fast);
        assert!(r.total_secs > 0.0);
        let report = session.finish();
        hostprof::component_breakdown(&report.merged())
            .into_iter()
            .filter(|(c, _)| c == "ccnuma")
            .map(|(_, s)| s)
            .sum()
    }
    // Warm once (allocator, page tables, code paths), then measure.
    let _ = ccnuma_self_secs(false);
    let slow = ccnuma_self_secs(false);
    let fast = ccnuma_self_secs(true);
    eprintln!("ccnuma self-time: exact {slow:.4}s, fastpath {fast:.4}s");
    assert!(
        fast < slow,
        "fast path must lower ccnuma self-time: exact {slow:.4}s vs fastpath {fast:.4}s"
    );
}

/// The ISSUE's CI guard: with no session open, an instrumented hot path
/// costs one relaxed atomic load per span — indistinguishable from noise.
/// Timing asserts are inherently flaky on shared runners, so the check
/// only arms when CI exports `HOSTPROF_OVERHEAD_ASSERT=1` — and CI arms
/// it on a `--release` run only, since a debug build doesn't inline the
/// guard (~35 ns/op debug vs ~1 ns release). Un-armed runs still
/// exercise the disabled path.
#[test]
fn disabled_span_path_stays_within_noise() {
    // Holding the session lock guarantees no sibling test has profiling
    // enabled while we measure the disabled path.
    let _lock = hostprof::exclusive();
    assert!(!hostprof::enabled());

    fn time(f: impl Fn()) -> std::time::Duration {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed()
    }
    const N: u64 = 2_000_000;
    let work = || {
        let mut acc = 0u64;
        for i in 0..N {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
    };
    let spanned = || {
        let mut acc = 0u64;
        for i in 0..N {
            let _hp = hostprof::span_hot("hsx-bench.disabled");
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
    };
    // Warm both paths, then measure.
    work();
    spanned();
    let base = time(work);
    let with = time(spanned);

    let per_op_ns = (with.as_nanos().saturating_sub(base.as_nanos())) as f64 / N as f64;
    eprintln!("disabled span overhead: {per_op_ns:.2} ns/span (base {base:?}, with {with:?})");
    if std::env::var("HOSTPROF_OVERHEAD_ASSERT").as_deref() == Ok("1") {
        assert!(
            per_op_ns < 25.0,
            "disabled hostprof span costs {per_op_ns:.2} ns/op — the disabled \
             path must be a single relaxed load"
        );
    }
}
