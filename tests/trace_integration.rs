//! End-to-end check of the observability pipeline: the `xp trace` run path
//! must produce a non-empty JSON Lines trace, a parseable Chrome trace,
//! and an event stream whose per-iteration migration counts agree with
//! UPMlib's own statistics — and the scheduler's trace must agree with its
//! own migration accounting.

use nas::{BenchName, Scale};
use obs::export::{chrome_trace, to_jsonl};
use obs::json::Value;
use obs::EventKind;
use sched::{JobSpec, SchedConfig, Scheduler, TimeSharing};

#[test]
fn trace_run_exports_and_matches_upm_stats() {
    let (result, tracer) = xp::trace::run_traced(BenchName::Cg, Scale::Tiny);
    assert!(result.verification.passed, "traced CG run must verify");
    assert_eq!(tracer.ring.dropped(), 0, "tiny run must fit in the ring");

    // JSON Lines export: a schema header line, then one valid object per
    // line, every line carrying a timestamp and an event name.
    let jsonl = to_jsonl(tracer.ring.iter(), tracer.dropped_events());
    assert!(!jsonl.is_empty(), "trace.jsonl must not be empty");
    for (i, line) in jsonl.lines().enumerate() {
        let v = Value::parse(line).expect("each trace line parses as JSON");
        if i == 0 {
            assert_eq!(v["schema"], "ddnomp-trace", "first line is the header");
            assert_eq!(v["dropped_events"].as_u64(), Some(0));
            continue;
        }
        assert!(
            v["event"].as_str().is_some(),
            "line has an event name: {line}"
        );
        assert!(v["t_ns"].as_f64().is_some(), "line has a timestamp: {line}");
    }

    // The streaming importer round-trips the exported stream exactly.
    let loaded = obs::import::parse_jsonl(&jsonl).expect("exported trace re-imports");
    assert_eq!(loaded.events.len(), tracer.ring.len());
    assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
    assert!(loaded
        .events
        .iter()
        .zip(tracer.ring.iter())
        .all(|(a, b)| a == b));

    // Chrome trace export: a valid JSON document with a traceEvents array
    // (metadata record plus every event) keyed to simulated microseconds.
    let doc = chrome_trace(tracer.ring.iter(), "cg-tiny", tracer.dropped_events());
    let parsed = Value::parse(&doc.to_string_pretty()).expect("chrome trace parses");
    let entries = parsed["traceEvents"]
        .as_array()
        .expect("traceEvents is an array");
    assert_eq!(entries.len(), tracer.ring.len() + 1);

    // Reconstruct per-iteration migration counts from the event stream:
    // PageMigrated events seen before the i-th IterationBoundary belong to
    // iteration i. Only UPMlib moves pages in this configuration, so the
    // counts must match the engine's migrations_per_invocation (iterations
    // past the engine's self-deactivation contribute trailing zeros).
    let mut per_iter: Vec<u64> = Vec::new();
    let mut current = 0u64;
    for event in tracer.ring.iter() {
        match event.kind {
            EventKind::PageMigrated { .. } => current += 1,
            EventKind::IterationBoundary {
                iter, migrations, ..
            } => {
                assert_eq!(iter, per_iter.len(), "boundaries arrive in order");
                assert_eq!(
                    migrations, current,
                    "boundary aggregate must match the event stream"
                );
                per_iter.push(current);
                current = 0;
            }
            _ => {}
        }
    }
    assert_eq!(per_iter.len(), result.per_iter_secs.len());
    let upm = result.upm.as_ref().expect("upmlib run records stats");
    let invocations = &upm.migrations_per_invocation;
    assert!(!invocations.is_empty(), "the engine must have been invoked");
    assert!(invocations[0] > 0, "round-robin CG must migrate pages");
    for (i, &counted) in per_iter.iter().enumerate() {
        let expected = invocations.get(i).copied().unwrap_or(0);
        assert_eq!(
            counted, expected,
            "iteration {i}: trace counted {counted}, UpmStats says {expected}"
        );
    }
}

#[test]
fn scheduler_trace_agrees_with_migration_accounting() {
    // A tiny time-sharing schedule with tracing on: the event stream must
    // agree with the scheduler's own accounting — one ThreadMigrated event
    // per counted thread migration, one QuantumExpired per quantum, one
    // JobArrived per submitted job — and the scheduler events must survive
    // the JSON Lines exporter.
    let mut s = Scheduler::new(
        Box::new(TimeSharing::default()),
        SchedConfig {
            quantum_ns: xp::multiprog::quantum_ns(Scale::Tiny),
            trace: true,
            ..SchedConfig::default()
        },
    );
    let variant = &xp::multiprog::engine_variants()[0];
    for bench in [BenchName::Cg, BenchName::Mg, BenchName::Cg, BenchName::Mg] {
        s.submit(
            JobSpec::new(
                bench,
                Scale::Tiny,
                xp::multiprog::job_config(&variant.engine),
            )
            .with_response(variant.response),
        );
    }
    let out = s.run_to_completion();
    let tracer = out.trace.as_ref().expect("tracing was enabled");
    assert_eq!(
        tracer.ring.dropped(),
        0,
        "tiny schedule must fit in the ring"
    );

    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        tracer.ring.iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert!(
        out.thread_migrations > 0,
        "time sharing must migrate threads"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::ThreadMigrated { .. })),
        out.thread_migrations,
        "one ThreadMigrated event per counted migration"
    );
    assert_eq!(
        out.jobs.iter().map(|j| j.thread_migrations).sum::<u64>(),
        out.thread_migrations,
        "per-job migration counts sum to the schedule total"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::QuantumExpired { .. })),
        out.quanta,
        "one QuantumExpired event per quantum"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::JobArrived { .. })),
        out.jobs.len() as u64,
        "one JobArrived event per submitted job"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::TeamResized { .. })),
        out.team_resizes,
        "one TeamResized event per counted resize"
    );

    // The scheduler's event kinds round-trip through the exporter.
    let jsonl = to_jsonl(tracer.ring.iter(), tracer.dropped_events());
    let mut seen_migrated = false;
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("each scheduler trace line parses as JSON");
        if v["event"].as_str() == Some("ThreadMigrated") {
            seen_migrated = true;
        }
    }
    assert!(seen_migrated, "ThreadMigrated events appear in the export");
}
