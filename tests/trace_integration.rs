//! End-to-end check of the observability pipeline: the `xp trace` run path
//! must produce a non-empty JSON Lines trace, a parseable Chrome trace,
//! and an event stream whose per-iteration migration counts agree with
//! UPMlib's own statistics.

use nas::{BenchName, Scale};
use obs::export::{chrome_trace, to_jsonl};
use obs::json::Value;
use obs::EventKind;

#[test]
fn trace_run_exports_and_matches_upm_stats() {
    let (result, tracer) = xp::trace::run_traced(BenchName::Cg, Scale::Tiny);
    assert!(result.verification.passed, "traced CG run must verify");
    assert_eq!(tracer.ring.dropped(), 0, "tiny run must fit in the ring");

    // JSON Lines export: non-empty, one valid object per line, every line
    // carrying a timestamp and an event name.
    let jsonl = to_jsonl(tracer.ring.iter());
    assert!(!jsonl.is_empty(), "trace.jsonl must not be empty");
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("each trace line parses as JSON");
        assert!(
            v["event"].as_str().is_some(),
            "line has an event name: {line}"
        );
        assert!(v["t_ns"].as_f64().is_some(), "line has a timestamp: {line}");
    }

    // Chrome trace export: a valid JSON document with a traceEvents array
    // (metadata record plus every event) keyed to simulated microseconds.
    let doc = chrome_trace(tracer.ring.iter(), "cg-tiny");
    let parsed = Value::parse(&doc.to_string_pretty()).expect("chrome trace parses");
    let entries = parsed["traceEvents"]
        .as_array()
        .expect("traceEvents is an array");
    assert_eq!(entries.len(), tracer.ring.len() + 1);

    // Reconstruct per-iteration migration counts from the event stream:
    // PageMigrated events seen before the i-th IterationBoundary belong to
    // iteration i. Only UPMlib moves pages in this configuration, so the
    // counts must match the engine's migrations_per_invocation (iterations
    // past the engine's self-deactivation contribute trailing zeros).
    let mut per_iter: Vec<u64> = Vec::new();
    let mut current = 0u64;
    for event in tracer.ring.iter() {
        match event.kind {
            EventKind::PageMigrated { .. } => current += 1,
            EventKind::IterationBoundary {
                iter, migrations, ..
            } => {
                assert_eq!(iter, per_iter.len(), "boundaries arrive in order");
                assert_eq!(
                    migrations, current,
                    "boundary aggregate must match the event stream"
                );
                per_iter.push(current);
                current = 0;
            }
            _ => {}
        }
    }
    assert_eq!(per_iter.len(), result.per_iter_secs.len());
    let upm = result.upm.as_ref().expect("upmlib run records stats");
    let invocations = &upm.migrations_per_invocation;
    assert!(!invocations.is_empty(), "the engine must have been invoked");
    assert!(invocations[0] > 0, "round-robin CG must migrate pages");
    for (i, &counted) in per_iter.iter().enumerate() {
        let expected = invocations.get(i).copied().unwrap_or(0);
        assert_eq!(
            counted, expected,
            "iteration {i}: trace counted {counted}, UpmStats says {expected}"
        );
    }
}
