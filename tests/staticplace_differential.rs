//! Differential suite for the placement synthesizer: the static
//! prescription vs the dynamic engine, and the fast path under static
//! placement.
//!
//! The synthesizer's contract ([`lint::synthesize`]) is checked against
//! real runs, benchmark by benchmark:
//!
//! 1. **stable ⇔ converged** — wherever the analyzer predicts no `L007`
//!    phase-dominance flip, the synthesized home must equal the placement
//!    a real first-touch + UPMlib run converges to, page for page;
//! 2. **flips are accounted** — pages that do flip carry
//!    [`lint::Confidence::Flip`] and only those pages may appear in the
//!    residual-migration ledger (the traffic a hybrid static+UPMlib run
//!    still pays);
//! 3. **fast-path interplay** — the phase fast path stays bit-identical
//!    and keeps engaging when the initial placement is the synthesized
//!    map instead of first-touch, and the eligible-proof counts pinned in
//!    `fastpath_props.rs` hold unchanged (proof derivation is placement
//!    independent by construction; this pins it empirically).

use ccnuma::{vpage_of, NodeId};
use lint::Confidence;
use nas::{derive_proofs, BenchName, BenchRun, EngineMode, RunConfig, Scale};
use std::collections::BTreeMap;
use upmlib::UpmOptions;
use xp::run_one_fastpath;

/// Run a real first-touch + UPMlib benchmark to completion and return the
/// machine's final page table over the model's array ranges.
fn dynamic_converged(bench: BenchName) -> BTreeMap<u64, NodeId> {
    let cfg = RunConfig {
        engine: EngineMode::Upmlib(UpmOptions::default()),
        ..RunConfig::paper_default()
    };
    let mut run = match bench {
        BenchName::Bt => BenchRun::new(|rt| nas::bt::Bt::new(rt, Scale::Tiny), &cfg),
        BenchName::Sp => BenchRun::new(|rt| nas::sp::Sp::new(rt, Scale::Tiny), &cfg),
        BenchName::Cg => BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg),
        BenchName::Mg => BenchRun::new(|rt| nas::mg::Mg::new(rt, Scale::Tiny), &cfg),
        BenchName::Ft => BenchRun::new(|rt| nas::ft::Ft::new(rt, Scale::Tiny), &cfg),
    };
    while !run.is_done() {
        run.step();
    }
    assert!(
        !run.upm().expect("upmlib engine").is_active(),
        "{}: engine must converge within the run",
        bench.label()
    );
    let machine = run.runtime().machine();
    let model = xp::lint::model_for(bench, Scale::Tiny);
    let mut actual = BTreeMap::new();
    for layout in model.arrays() {
        let (base, bytes) = layout.vrange();
        if bytes == 0 {
            continue;
        }
        for page in vpage_of(base)..=vpage_of(base + bytes - 1) {
            if let Some(node) = machine.node_of_vpage(page) {
                actual.insert(page, node);
            }
        }
    }
    actual
}

fn check_static_matches_converged(bench: BenchName) {
    let map = xp::lint::placement_map(bench, Scale::Tiny);
    let actual = dynamic_converged(bench);
    let flips: Vec<u64> = map.flip_pages();
    let mut mismatches = Vec::new();
    for (&page, a) in map.pages() {
        if a.confidence != Confidence::Stable {
            continue;
        }
        match actual.get(&page) {
            Some(&node) if node == a.node => {}
            other => mismatches.push((page, a.node, other.copied())),
        }
    }
    assert!(
        mismatches.is_empty(),
        "{}: {} stable pages disagree with the dynamic ft+UPMlib converged \
         placement (first: {:x?})",
        bench.label(),
        mismatches.len(),
        mismatches.first()
    );
    // Residual traffic may only come from flip pages: stable pages are the
    // replay's fixpoint, so re-seeding the engine with the map must not
    // move them.
    for page in map.residual_by_page().keys() {
        assert!(
            flips.contains(page),
            "{}: residual migration on a stable page {page:#x}",
            bench.label()
        );
    }
    if flips.is_empty() {
        assert_eq!(
            map.residual_migrations(),
            0,
            "{}: no flips → no residual traffic",
            bench.label()
        );
    }
}

#[test]
fn cg_static_placement_matches_dynamic_convergence() {
    check_static_matches_converged(BenchName::Cg);
}

#[test]
fn mg_static_placement_matches_dynamic_convergence() {
    check_static_matches_converged(BenchName::Mg);
}

#[test]
fn remaining_benches_static_placement_matches_dynamic_convergence() {
    for bench in [BenchName::Bt, BenchName::Sp, BenchName::Ft] {
        check_static_matches_converged(bench);
    }
}

/// The fast path must not care where pages live: plain runs under the
/// synthesized static placement are bit-identical with the fast path on
/// and off, for every benchmark.
#[test]
fn fastpath_bit_identical_under_static_placement() {
    for bench in BenchName::all() {
        let cfg = RunConfig {
            placement: xp::lint::static_scheme(bench, Scale::Tiny),
            ..RunConfig::paper_default()
        };
        let slow = run_one_fastpath(bench, Scale::Tiny, &cfg, false)
            .to_cache_json()
            .to_string();
        let fast = run_one_fastpath(bench, Scale::Tiny, &cfg, true)
            .to_cache_json()
            .to_string();
        assert_eq!(
            slow,
            fast,
            "{}: fast path diverged under static placement",
            bench.label()
        );
    }
}

/// The hybrid (static + UPMlib) exercises migration-driven memo
/// invalidation on top of the prescription; CG has the largest map.
#[test]
fn fastpath_bit_identical_under_static_plus_upmlib() {
    for bench in [BenchName::Cg, BenchName::Mg] {
        let cfg = RunConfig {
            placement: xp::lint::static_scheme(bench, Scale::Tiny),
            engine: EngineMode::Upmlib(UpmOptions::default()),
            ..RunConfig::paper_default()
        };
        let slow = run_one_fastpath(bench, Scale::Tiny, &cfg, false)
            .to_cache_json()
            .to_string();
        let fast = run_one_fastpath(bench, Scale::Tiny, &cfg, true)
            .to_cache_json()
            .to_string();
        assert_eq!(
            slow,
            fast,
            "{}: fast path diverged under static+upmlib",
            bench.label()
        );
    }
}

/// Fast-path engagement and proof eligibility do not regress when runs
/// start from the synthesized placement: the pinned per-bench eligible
/// counts from `fastpath_props.rs` hold, and CG/MG still replay most
/// timed regions.
#[test]
fn fastpath_eligibility_survives_static_placement() {
    let expected: &[(BenchName, usize, usize)] = &[
        (BenchName::Cg, 25, 25),
        (BenchName::Mg, 7, 7),
        (BenchName::Bt, 4, 5),
        (BenchName::Sp, 4, 5),
        (BenchName::Ft, 5, 5),
    ];
    for &(bench, want_eligible, want_total) in expected {
        let model = xp::lint::model_for(bench, Scale::Tiny);
        let proofs = derive_proofs(model.iteration(), 16);
        let eligible = proofs.iter().filter(|p| p.is_some()).count();
        assert_eq!(
            (eligible, proofs.len()),
            (want_eligible, want_total),
            "{}: eligible proof count changed",
            bench.label()
        );
    }
    for bench in [BenchName::Cg, BenchName::Mg] {
        let cfg = RunConfig {
            placement: xp::lint::static_scheme(bench, Scale::Tiny),
            ..RunConfig::paper_default()
        };
        let mut run = match bench {
            BenchName::Cg => BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg),
            _ => BenchRun::new(|rt| nas::mg::Mg::new(rt, Scale::Tiny), &cfg),
        };
        run.set_fastpath(true);
        while !run.is_done() {
            run.step();
        }
        let stats = run.fastpath_stats().expect("fast path installed");
        assert!(
            stats.records > 0 && stats.replays > stats.records,
            "{}: fast path stopped engaging under static placement: {stats:?}",
            bench.label()
        );
    }
}
