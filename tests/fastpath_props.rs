//! Property tests for the phase fast path's proof contract (vendored
//! proptest shim).
//!
//! Two directions of the [`nas::derive_loop_proof`] eligibility analysis:
//!
//! * **Soundness** — for *arbitrary* generated loop shapes (including
//!   write-shared and dynamically scheduled ones), installing whatever proof
//!   the analysis derives never changes observable machine state: paired
//!   runtimes on `tiny_test`, fast path on vs off, finish bit-identical.
//! * **Completeness** — loop shapes that are thread-local by construction
//!   (each line written by at most one thread, shared data read-only) are
//!   never rejected, for arbitrary sizes, team sizes, and static schedules;
//!   and every known-local phase of the real NAS models derives a proof.

use ccnuma::{AccessKind, Machine, MachineConfig, SimArray, LINE_SHIFT};
use nas::{derive_loop_proof, derive_proofs, LoopModel, NasBenchmark, Scale};
use omp::{Runtime, Schedule};
use proptest::prelude::*;

/// f64 elements per cache line.
const EPL: usize = (1usize << LINE_SHIFT) / 8;

/// Per-iteration access shapes, shared between the declarative
/// [`LoopModel`] and the executable loop body so the two cannot drift.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pattern {
    /// Iteration `i` reads and writes its own line: thread-local.
    Stripe,
    /// Everyone reads line 0, writes its own line *past* the shared one:
    /// shared input stays read-only.
    Bcast,
    /// Reads the (wrapping) successor line, writes its own: the read crosses
    /// chunk seams into another thread's written line.
    Neighbor,
    /// Element-dense: reads and writes element `i`, so `EPL` iterations
    /// share a line and chunk seams write-share it.
    Dense,
    /// Reads its own line, writes nothing.
    ReadOnly,
    /// Everyone writes line 0: cross-thread write sharing.
    AllWrite,
}

/// `(reads, writes)` of iteration `i`, as element indices.
fn accesses(p: Pattern, i: usize, n: usize) -> (Vec<usize>, Vec<usize>) {
    let line = |k: usize| k * EPL;
    match p {
        Pattern::Stripe => (vec![line(i)], vec![line(i)]),
        Pattern::Bcast => (vec![line(0)], vec![line(i + 1)]),
        Pattern::Neighbor => (vec![line((i + 1) % n)], vec![line(i)]),
        Pattern::Dense => (vec![i], vec![i]),
        Pattern::ReadOnly => (vec![line(i)], vec![]),
        Pattern::AllWrite => (vec![], vec![line(0)]),
    }
}

fn elems(p: Pattern, n: usize) -> usize {
    match p {
        Pattern::Dense => n,
        _ => (n + 1) * EPL,
    }
}

fn loop_model(p: Pattern, n: usize, schedule: Schedule, base: u64) -> LoopModel {
    LoopModel::parallel("loop", n, schedule, move |i, emit| {
        let (reads, writes) = accesses(p, i, n);
        for r in reads {
            emit(base + 8 * r as u64, AccessKind::Read);
        }
        for w in writes {
            emit(base + 8 * w as u64, AccessKind::Write);
        }
    })
}

/// Full observable state: clock bits, machine stats, per-CPU stats, counters
/// of every mapped frame, per-page directory version sums.
fn fingerprint(m: &Machine) -> (u64, String) {
    let mut counters = Vec::new();
    let mut versions = Vec::new();
    for (vp, f) in m.mapped_pages() {
        for node in 0..m.topology().nodes() {
            counters.push(m.counters().get(f, node));
        }
        versions.push(m.page_version_sum(vp));
    }
    let per_cpu: Vec<_> = (0..m.cpus()).map(|c| *m.cpu_stats(c)).collect();
    (
        m.clock().now_ns().to_bits(),
        format!("{:?} {per_cpu:?} {counters:?} {versions:?}", m.stats()),
    )
}

/// Run `reps` regions of the pattern on a fresh `tiny_test` runtime, with
/// whatever proof the analysis derives installed (or not), and fingerprint
/// the machine. Also reports the proof's eligibility.
fn run_case(
    p: Pattern,
    n: usize,
    threads: usize,
    schedule: Schedule,
    reps: usize,
    fast: bool,
) -> ((u64, String), bool) {
    let mut m = Machine::new(MachineConfig::tiny_test());
    let arr = SimArray::<f64>::new(&mut m, "p.a", elems(p, n).max(1), 0.0);
    let base = arr.vrange().0;
    let mut rt = Runtime::with_threads(m, threads);
    let proof = derive_loop_proof("p/loop", &loop_model(p, n, schedule, base), threads);
    let eligible = proof.is_some();
    if fast {
        rt.install_fastpath(vec![proof]);
    }
    for rep in 0..reps {
        rt.fastpath_reset_cursor();
        rt.parallel_for(n, schedule, |par, i| {
            let (reads, writes) = accesses(p, i, n);
            for r in reads {
                par.get(&arr, r);
            }
            for w in writes {
                par.set(&arr, w, (i + rep) as f64);
            }
        });
    }
    (fingerprint(rt.machine()), eligible)
}

fn any_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::Stripe),
        Just(Pattern::Bcast),
        Just(Pattern::Neighbor),
        Just(Pattern::Dense),
        Just(Pattern::ReadOnly),
        Just(Pattern::AllWrite),
    ]
}

fn any_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..9).prop_map(Schedule::StaticChunk),
        (1usize..5).prop_map(Schedule::Dynamic),
    ]
}

fn static_schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..9).prop_map(Schedule::StaticChunk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: whatever `derive_loop_proof` decides, running with the
    /// fast path installed is bit-identical to running without it —
    /// replays, partial replays, rejections, and `None` proofs included.
    #[test]
    fn derived_proofs_replay_bit_identically(
        pattern in any_pattern(),
        n in 1usize..40,
        threads in 1usize..9, // tiny_test has 8 CPUs
        schedule in any_schedule(),
        reps in 2usize..5,
    ) {
        let (slow, _) = run_case(pattern, n, threads, schedule, reps, false);
        let (fast, _) = run_case(pattern, n, threads, schedule, reps, true);
        prop_assert_eq!(slow, fast);
    }

    /// Completeness: thread-local shapes — single writer per line, shared
    /// data read-only — are never rejected under any static schedule.
    #[test]
    fn known_local_patterns_always_derive_a_proof(
        pattern in prop_oneof![
            Just(Pattern::Stripe),
            Just(Pattern::Bcast),
            Just(Pattern::ReadOnly),
        ],
        n in 1usize..200,
        threads in 1usize..17,
        schedule in static_schedules(),
    ) {
        let proof = derive_loop_proof("p/loop", &loop_model(pattern, n, schedule, 0), threads);
        prop_assert!(proof.is_some(), "{pattern:?} n={n} threads={threads} rejected");
    }

    /// Eligibility soundness, negative direction: a line written by two or
    /// more threads must be rejected (a replay could not reconstruct the
    /// cross-thread staleness).
    #[test]
    fn write_shared_patterns_are_rejected(
        n in 2usize..200,
        threads in 2usize..17,
        schedule in static_schedules(),
    ) {
        let lp = loop_model(Pattern::AllWrite, n, schedule, 0);
        // With one chunk per thread some teams leave line 0 single-writer;
        // only assert when two threads actually receive iterations.
        let busy = schedule
            .static_chunks(n, threads)
            .iter()
            .filter(|c| c.iter().any(|&(s, e)| e > s))
            .count();
        if busy >= 2 {
            prop_assert!(derive_loop_proof("p/loop", &lp, threads).is_none());
        }
    }
}

/// Completeness on the real kernels: every NAS benchmark's access model
/// derives proofs for its known-local phases. The exact counts are pinned:
/// a silent drop to zero would quietly disable the fast path for a bench.
#[test]
fn nas_iteration_models_derive_the_expected_proofs() {
    let expected: &[(nas::BenchName, usize, usize)] = &[
        // (bench, eligible iteration proofs, total iteration loops)
        (nas::BenchName::Cg, 25, 25),
        (nas::BenchName::Mg, 7, 7),
        (nas::BenchName::Bt, 4, 5),
        (nas::BenchName::Sp, 4, 5),
        (nas::BenchName::Ft, 5, 5),
    ];
    let mut got = Vec::new();
    for &(bench, _, _) in expected {
        let mut rt =
            Runtime::with_threads(Machine::new(MachineConfig::origin2000_16p_scaled()), 16);
        let model = match bench {
            nas::BenchName::Cg => nas::cg::Cg::new(&mut rt, Scale::Tiny).access_model(),
            nas::BenchName::Mg => nas::mg::Mg::new(&mut rt, Scale::Tiny).access_model(),
            nas::BenchName::Bt => nas::bt::Bt::new(&mut rt, Scale::Tiny).access_model(),
            nas::BenchName::Sp => nas::sp::Sp::new(&mut rt, Scale::Tiny).access_model(),
            nas::BenchName::Ft => nas::ft::Ft::new(&mut rt, Scale::Tiny).access_model(),
        }
        .expect("every bench ships an access model");
        let proofs = derive_proofs(model.iteration(), rt.threads());
        let eligible = proofs.iter().filter(|p| p.is_some()).count();
        println!("{}: {eligible}/{} eligible", bench.label(), proofs.len());
        got.push((eligible, proofs.len()));
    }
    let want: Vec<(usize, usize)> = expected.iter().map(|&(_, e, t)| (e, t)).collect();
    assert_eq!(got, want, "tiny iteration proof counts per bench");
}
