//! Differential suite: the static analyzer's predictions vs the dynamic
//! simulator.
//!
//! Three cross-checks, each closing a different gap between the access
//! models and the machine:
//!
//! 1. **frozen ⇔ flagged** — for every benchmark, the set of pages the
//!    symbolic UPMlib replay freezes must equal the set the real engine
//!    freezes during a full run (both are empty for the NAS kernels: with
//!    an iteration-invariant reference pattern the first migration lands
//!    each page on its global argmax node, after which no competitive ratio
//!    can exceed the threshold again — no reversal, nothing to freeze);
//! 2. **lockstep synthetic ping-pong** — a page hammered from alternating
//!    nodes drives the real engine and the replay through the same
//!    migrate/veto/freeze/deactivate sequence, proving the equivalence in
//!    (1) is not vacuous;
//! 3. **first-touch fidelity** — the model-replayed first-touch placement
//!    must match the machine's page table after a real cold start, page for
//!    page, which validates the models' addresses and thread ordering
//!    bit-for-bit;
//!
//! plus the determinism cross-check: real runs must be bit-reproducible
//! across team sizes exactly when the analyzer reports no `L008`.

use ccnuma::{vpage_of, AccessKind, Machine, MachineConfig, NodeId, SimArray, PAGE_SIZE};
use lint::{Code, CountTable, LintConfig, UpmReplay};
use nas::{run_benchmark, BenchName, BenchRun, EngineMode, RunConfig, Scale};
use std::collections::BTreeMap;
use upmlib::{UpmEngine, UpmOptions};

fn tiny_cfg(engine: EngineMode) -> RunConfig {
    let mut cfg = RunConfig::paper_default();
    cfg.engine = engine;
    cfg
}

/// Drive a full dynamic run of `bench` and return the engine's frozen set.
fn dynamic_frozen(bench: BenchName) -> Vec<u64> {
    let cfg = tiny_cfg(EngineMode::Upmlib(UpmOptions::default()));
    let mut run = match bench {
        BenchName::Bt => BenchRun::new(|rt| nas::bt::Bt::new(rt, Scale::Tiny), &cfg),
        BenchName::Sp => BenchRun::new(|rt| nas::sp::Sp::new(rt, Scale::Tiny), &cfg),
        BenchName::Cg => BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg),
        BenchName::Mg => BenchRun::new(|rt| nas::mg::Mg::new(rt, Scale::Tiny), &cfg),
        BenchName::Ft => BenchRun::new(|rt| nas::ft::Ft::new(rt, Scale::Tiny), &cfg),
    };
    while !run.is_done() {
        run.step();
    }
    let upm = run.upm().expect("Upmlib mode has an engine");
    assert!(
        !upm.is_active(),
        "{}: engine must converge within the run",
        bench.label()
    );
    upm.frozen_pages()
}

fn check_frozen_differential(bench: BenchName) {
    let analysis = xp::lint::analyze_bench(bench, Scale::Tiny);
    let frozen = dynamic_frozen(bench);
    assert_eq!(
        analysis.predicted_frozen,
        frozen,
        "{}: statically flagged ping-pong pages must be exactly the \
         dynamically frozen ones",
        bench.label()
    );
    let flagged = analysis
        .findings
        .iter()
        .any(|f| f.code == Code::PredictedFrozen);
    assert_eq!(
        flagged,
        !frozen.is_empty(),
        "{}: L004 findings must track the frozen set",
        bench.label()
    );
}

#[test]
fn cg_frozen_pages_match_static_prediction() {
    check_frozen_differential(BenchName::Cg);
}

#[test]
fn mg_frozen_pages_match_static_prediction() {
    check_frozen_differential(BenchName::Mg);
}

#[test]
fn remaining_benches_frozen_pages_match_static_prediction() {
    for bench in [BenchName::Bt, BenchName::Sp, BenchName::Ft] {
        check_frozen_differential(bench);
    }
}

/// Hammer the page at `base` from `cpu` hard enough to dominate its
/// counters (writes + reads over every line, several sweeps).
fn hammer(machine: &mut Machine, cpu: usize, base: u64) {
    for _ in 0..6 {
        for line in 0..(PAGE_SIZE / 128) {
            machine.touch(cpu, base + line * 128, AccessKind::Write);
            machine.touch(cpu, base + line * 128, AccessKind::Read);
        }
    }
}

/// Run the real engine and the symbolic replay in lockstep: before each
/// `migrate_memory` the replay is fed the exact counter snapshot the engine
/// is about to read, and after it both must agree on moves, homes, frozen
/// set and activation.
fn lockstep(hammer_cpus: &[usize]) -> (Vec<u64>, u64) {
    let mut m = Machine::new(MachineConfig::tiny_test());
    let elems = (PAGE_SIZE / 8) as usize;
    let arr = SimArray::<f64>::new(&mut m, "pp", elems, 0.0);
    let (base, len) = arr.vrange();
    m.touch(0, base, AccessKind::Read); // first touch: cpu 0 → node 0
    let vp = vpage_of(base);
    let mut upm = UpmEngine::new(&m, UpmOptions::default());
    upm.memrefcnt(&arr);
    upm.reset_counters(&m);
    let homes: BTreeMap<u64, NodeId> = [(vp, m.node_of_vpage(vp).unwrap())].into();
    let mut replay = UpmReplay::new(homes, m.topology().nodes(), UpmOptions::default());
    for &cpu in hammer_cpus {
        hammer(&mut m, cpu, base);
        let table: CountTable = vmm::ProcCounters
            .read_range(&m, base, len)
            .into_iter()
            .map(|v| (v.vpage, v.counts))
            .collect();
        let predicted = replay.invoke(&table);
        let moved = upm.migrate_memory(&mut m);
        assert_eq!(predicted, moved, "replay and engine must move in lockstep");
        assert_eq!(
            replay.homes().get(&vp).copied(),
            m.node_of_vpage(vp),
            "replay and engine must agree on the page's home"
        );
        assert_eq!(replay.frozen_pages(), upm.frozen_pages());
        assert_eq!(replay.is_active(), upm.is_active());
        if !upm.is_active() {
            break;
        }
    }
    (upm.frozen_pages(), vp)
}

#[test]
fn synthetic_ping_pong_freezes_in_lockstep() {
    // cpu 6 lives on node 3, cpu 0 on node 0: alternating dominance forces
    // a 0→3 migration, then a vetoed 3→0 reversal that freezes the page.
    let (frozen, vp) = lockstep(&[6, 0, 6, 0]);
    assert_eq!(frozen, vec![vp], "alternating dominance must freeze");
}

#[test]
fn stable_dominance_freezes_nothing_in_lockstep() {
    let (frozen, _) = lockstep(&[6, 6, 6]);
    assert!(frozen.is_empty(), "one-way migration must not freeze");
}

fn check_first_touch_fidelity(bench: BenchName) {
    let model = xp::lint::model_for(bench, Scale::Tiny);
    let analysis = lint::analyze(&model, &LintConfig::paper_default());
    let cfg = tiny_cfg(EngineMode::None);
    let mut run = match bench {
        BenchName::Bt => BenchRun::new(|rt| nas::bt::Bt::new(rt, Scale::Tiny), &cfg),
        BenchName::Sp => BenchRun::new(|rt| nas::sp::Sp::new(rt, Scale::Tiny), &cfg),
        BenchName::Cg => BenchRun::new(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg),
        BenchName::Mg => BenchRun::new(|rt| nas::mg::Mg::new(rt, Scale::Tiny), &cfg),
        BenchName::Ft => BenchRun::new(|rt| nas::ft::Ft::new(rt, Scale::Tiny), &cfg),
    };
    run.step(); // cold start + one timed iteration, no migration engine
    let machine = run.runtime().machine();
    let mut actual: BTreeMap<u64, NodeId> = BTreeMap::new();
    for layout in model.arrays() {
        let (base, bytes) = layout.vrange();
        if bytes == 0 {
            continue;
        }
        for page in vpage_of(base)..=vpage_of(base + bytes - 1) {
            if let Some(node) = machine.node_of_vpage(page) {
                actual.insert(page, node);
            }
        }
    }
    assert_eq!(
        analysis.first_touch,
        actual,
        "{}: model-replayed first-touch placement must match the machine's \
         page table (same pages, same homes)",
        bench.label()
    );
}

#[test]
fn first_touch_prediction_matches_machine_page_table() {
    for bench in BenchName::all() {
        check_first_touch_fidelity(bench);
    }
}

#[test]
fn cg_is_bit_reproducible_across_team_sizes_and_lint_agrees() {
    // Dynamic side: the REDUCTION_BLOCKS machinery must make CG's zeta
    // estimate bit-identical for every team size up to REDUCTION_BLOCKS.
    let mut bits = Vec::new();
    for threads in [1usize, 4, 8, 16] {
        let mut cfg = tiny_cfg(EngineMode::None);
        cfg.threads = threads;
        let result = run_benchmark(|rt| nas::cg::Cg::new(rt, Scale::Tiny), &cfg);
        assert!(result.verification.passed);
        bits.push(result.verification.value.to_bits());
    }
    assert!(
        bits.windows(2).all(|w| w[0] == w[1]),
        "zeta must be bit-identical across team sizes, got {bits:?}"
    );
    // Static side: the analyzer agrees there is no divergence at 16 threads
    // (block count constant) ...
    let analysis = xp::lint::analyze_bench(BenchName::Cg, Scale::Tiny);
    assert!(
        analysis
            .findings
            .iter()
            .all(|f| f.code != Code::TeamSensitiveReduction),
        "no L008 expected at 16 threads"
    );
    // ... and predicts divergence as soon as team sizes exceed
    // REDUCTION_BLOCKS, where the partial-sum partition starts to vary.
    let model = xp::lint::model_for(BenchName::Cg, Scale::Tiny);
    let wide = LintConfig {
        threads: 32,
        ..LintConfig::paper_default()
    };
    let flagged = lint::analyze(&model, &wide);
    assert!(
        flagged
            .findings
            .iter()
            .any(|f| f.code == Code::TeamSensitiveReduction),
        "L008 expected for team sizes beyond REDUCTION_BLOCKS"
    );
}
