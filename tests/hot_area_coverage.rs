//! The paper's compiler identifies "hot memory areas" (shared arrays both
//! read and written across parallel constructs) and registers them with
//! UPMlib. These tests check that each benchmark's `register_hot` actually
//! covers the pages its kernels touch — an engine watching the wrong ranges
//! would silently do nothing.

use ccnuma::{Machine, MachineConfig};
use nas::bt::Bt;
use nas::cg::Cg;
use nas::common::{NasBenchmark, PhasePoint};
use nas::ft::Ft;
use nas::mg::Mg;
use nas::sp::Sp;
use nas::Scale;
use omp::Runtime;
use upmlib::{UpmEngine, UpmOptions};
use vmm::{install_placement, PlacementScheme};

/// Run one cold-start + one iteration and report what fraction of the
/// machine's counted memory accesses landed inside the benchmark's
/// registered hot areas.
fn hot_coverage(mut bench: impl NasBenchmark, mut rt: Runtime) -> f64 {
    let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
    bench.register_hot(&mut upm);
    bench.cold_start(&mut rt);
    let mut noop = |_: &mut Runtime, _: PhasePoint| {};
    bench.iterate(&mut rt, &mut noop);

    let machine = rt.machine();
    let in_hot = |vpage: u64| {
        upm.hot_areas().iter().any(|&(base, len)| {
            len > 0 && vpage >= ccnuma::vpage_of(base) && vpage <= ccnuma::vpage_of(base + len - 1)
        })
    };
    let mut total = 0u64;
    let mut hot = 0u64;
    for (vpage, frame) in machine.mapped_pages() {
        let page_total: u64 = (0..machine.topology().nodes())
            .map(|n| machine.counters().get(frame, n))
            .sum();
        total += page_total;
        if in_hot(vpage) {
            hot += page_total;
        }
    }
    assert!(total > 0, "the iteration must generate memory traffic");
    hot as f64 / total as f64
}

macro_rules! coverage_test {
    ($name:ident, $ty:ident) => {
        #[test]
        fn $name() {
            let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
            install_placement(&mut machine, PlacementScheme::FirstTouch);
            let mut rt = Runtime::new(machine);
            let bench = $ty::new(&mut rt, Scale::Tiny);
            let coverage = hot_coverage(bench, rt);
            assert!(
                coverage >= 0.9,
                "{}: hot areas cover only {:.0}% of memory traffic",
                stringify!($ty),
                coverage * 100.0
            );
        }
    };
}

coverage_test!(bt_hot_areas_cover_its_traffic, Bt);
coverage_test!(sp_hot_areas_cover_its_traffic, Sp);
coverage_test!(cg_hot_areas_cover_its_traffic, Cg);
coverage_test!(mg_hot_areas_cover_its_traffic, Mg);
coverage_test!(ft_hot_areas_cover_its_traffic, Ft);
