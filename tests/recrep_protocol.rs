//! Integration tests of the record–replay protocol beyond the single-phase
//! BT/SP usage: multiple phase transitions per iteration, interaction with
//! the distribution mechanism, and overhead accounting.

use ccnuma::{Machine, MachineConfig, SimArray, PAGE_SIZE};
use omp::{Runtime, Schedule};
use upmlib::{UpmEngine, UpmOptions};
use vmm::{install_placement, PlacementScheme};

/// A synthetic three-phase iterative program:
/// * phase A: threads sweep their own blocks (owner-local);
/// * phase B: threads sweep blocks shifted by half the team (remote set 1);
/// * phase C: threads sweep reversed blocks (remote set 2).
///
/// Phase boundaries A|B and B|C are the two record/replay points.
struct ThreePhase {
    data: SimArray<f64>,
    len: usize,
}

impl ThreePhase {
    fn new(rt: &mut Runtime) -> Self {
        // 128 pages (2 MB): each thread's slice exceeds the scaled 32 KB L2,
        // so every phase streams from memory and the counters see it.
        let len = 128 * (PAGE_SIZE as usize / 8);
        let data = SimArray::new(rt.machine_mut(), "tp", len, 0.0);
        Self { data, len }
    }

    fn phase(&self, rt: &mut Runtime, mapping: impl Fn(usize, usize) -> usize + Copy) {
        let len = self.len;
        let data = &self.data;
        rt.parallel_for(len, Schedule::Static, |par, i| {
            let j = mapping(i, len);
            par.update(data, j, |v| v + 1.0);
            par.flops(1);
        });
    }

    fn phase_a(&self, rt: &mut Runtime) {
        self.phase(rt, |i, _| i);
    }

    fn phase_b(&self, rt: &mut Runtime) {
        self.phase(rt, |i, len| (i + len / 2) % len);
    }

    fn phase_c(&self, rt: &mut Runtime) {
        self.phase(rt, |i, len| len - 1 - i);
    }
}

fn setup() -> (Runtime, ThreePhase, UpmEngine) {
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    install_placement(&mut machine, PlacementScheme::FirstTouch);
    let mut rt = Runtime::new(machine);
    let prog = ThreePhase::new(&mut rt);
    let mut upm = UpmEngine::new(
        rt.machine(),
        UpmOptions {
            critical_pages: 256,
            ..Default::default()
        },
    );
    upm.memrefcnt(&prog.data);
    // Cold start on phase A, so first-touch distributes by A's mapping.
    prog.phase_a(&mut rt);
    upm.reset_counters(rt.machine());
    (rt, prog, upm)
}

#[test]
fn multi_phase_record_builds_one_list_per_transition() {
    let (mut rt, prog, mut upm) = setup();
    // Recording iteration: record before B, before C, and at the end.
    prog.phase_a(&mut rt);
    upm.record(rt.machine());
    prog.phase_b(&mut rt);
    upm.record(rt.machine());
    prog.phase_c(&mut rt);
    upm.record(rt.machine());
    let scheduled = upm.compare_counters();
    let sizes = upm.replay_list_sizes();
    assert_eq!(sizes.len(), 2, "two transitions => two replay lists");
    assert!(scheduled > 0, "phase shifts must schedule migrations");
    assert!(sizes[0] > 0, "B's delta is remote-shifted: {sizes:?}");
    assert!(sizes[1] > 0, "C's delta is remote-shifted: {sizes:?}");
}

#[test]
fn replay_cursor_walks_transitions_and_undo_rewinds() {
    let (mut rt, prog, mut upm) = setup();
    prog.phase_a(&mut rt);
    upm.record(rt.machine());
    prog.phase_b(&mut rt);
    upm.record(rt.machine());
    prog.phase_c(&mut rt);
    upm.record(rt.machine());
    upm.compare_counters();

    let (base, len) = prog.data.vrange();
    let homes = |m: &Machine| -> Vec<usize> {
        (ccnuma::vpage_of(base)..ccnuma::vpage_of(base + len - 1) + 1)
            .map(|vp| m.node_of_vpage(vp).unwrap())
            .collect()
    };
    let initial = homes(rt.machine());
    for _iteration in 0..3 {
        prog.phase_a(&mut rt);
        let moved_b = upm.replay(rt.machine_mut());
        prog.phase_b(&mut rt);
        let moved_c = upm.replay(rt.machine_mut());
        prog.phase_c(&mut rt);
        assert!(moved_b > 0 && moved_c > 0, "replays act every iteration");
        // A third replay in the same iteration has no list: no-op.
        assert_eq!(upm.replay(rt.machine_mut()), 0);
        upm.undo(rt.machine_mut());
        assert_eq!(homes(rt.machine()), initial, "undo restores the placement");
    }
}

#[test]
fn replaying_toward_phase_b_reduces_its_remote_traffic() {
    let (mut rt, prog, mut upm) = setup();
    prog.phase_a(&mut rt);
    upm.record(rt.machine());
    prog.phase_b(&mut rt);
    upm.record(rt.machine());
    upm.compare_counters();

    // Measure phase B remote misses without replay...
    let r0 = rt.machine().aggregate_cpu_stats().mem_remote;
    prog.phase_b(&mut rt);
    let remote_plain = rt.machine().aggregate_cpu_stats().mem_remote - r0;
    // ...and with the replayed placement.
    upm.replay(rt.machine_mut());
    let r1 = rt.machine().aggregate_cpu_stats().mem_remote;
    prog.phase_b(&mut rt);
    let remote_replayed = rt.machine().aggregate_cpu_stats().mem_remote - r1;
    upm.undo(rt.machine_mut());
    assert!(
        remote_replayed < remote_plain / 4,
        "replay must localize phase B: {remote_replayed} vs {remote_plain}"
    );
}

#[test]
fn distribution_then_recording_compose() {
    // The Figure 3 protocol: migrate_memory in iteration 1, record in
    // iteration 2 — the recording must observe the *post-distribution*
    // homes as `original_home`s so undo restores the distributed layout,
    // not the initial one.
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    install_placement(&mut machine, PlacementScheme::WorstCase { node: 0 });
    let mut rt = Runtime::new(machine);
    let prog = ThreePhase::new(&mut rt);
    let mut upm = UpmEngine::new(
        rt.machine(),
        UpmOptions {
            critical_pages: 256,
            ..Default::default()
        },
    );
    upm.memrefcnt(&prog.data);
    prog.phase_a(&mut rt); // cold start: everything lands on node 0
    upm.reset_counters(rt.machine());

    // Iteration 1: phase A runs, distribution moves pages to their owners.
    prog.phase_a(&mut rt);
    let moved = upm.migrate_memory(rt.machine_mut());
    assert!(moved > 0, "worst-case placement must trigger distribution");
    let (base, len) = prog.data.vrange();
    let distributed: Vec<_> = (ccnuma::vpage_of(base)..ccnuma::vpage_of(base + len - 1) + 1)
        .map(|vp| rt.machine().node_of_vpage(vp).unwrap())
        .collect();
    assert!(
        distributed.iter().any(|&n| n != 0),
        "pages must have left node 0"
    );

    // Iteration 2: record around phase B.
    prog.phase_a(&mut rt);
    upm.record(rt.machine());
    prog.phase_b(&mut rt);
    upm.record(rt.machine());
    upm.compare_counters();

    // Iteration 3: replay + undo must return to the *distributed* layout.
    prog.phase_a(&mut rt);
    upm.replay(rt.machine_mut());
    prog.phase_b(&mut rt);
    upm.undo(rt.machine_mut());
    let after: Vec<_> = (ccnuma::vpage_of(base)..ccnuma::vpage_of(base + len - 1) + 1)
        .map(|vp| rt.machine().node_of_vpage(vp).unwrap())
        .collect();
    assert_eq!(after, distributed);
}
