//! Integration tests of read-only replication composed with the rest of the
//! stack: correctness under collapse, interaction with migration, and the
//! broadcast-workload win.

use ccnuma::{Machine, MachineConfig, SimArray, PAGE_SIZE};
use omp::{Runtime, Schedule};
use upmlib::{UpmEngine, UpmOptions};
use vmm::{install_placement, PlacementScheme};

fn broadcast_setup() -> (Runtime, SimArray<f64>, SimArray<f64>, UpmEngine) {
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    install_placement(&mut machine, PlacementScheme::WorstCase { node: 0 });
    let mut rt = Runtime::new(machine);
    let table_len = 8 * (PAGE_SIZE as usize / 8);
    let work_len = 32 * (PAGE_SIZE as usize / 8);
    let table = SimArray::from_fn(rt.machine_mut(), "table", table_len, |i| (i % 13) as f64);
    let work = SimArray::new(rt.machine_mut(), "work", work_len, 0.0f64);
    let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
    upm.memrefcnt(&table);
    upm.memrefcnt(&work);
    (rt, table, work, upm)
}

fn sweep(rt: &mut Runtime, table: &SimArray<f64>, work: &SimArray<f64>) {
    let (tl, wl) = (table.len(), work.len());
    rt.parallel_for(wl, Schedule::Static, |par, i| {
        let coeff = par.get(table, (i.wrapping_mul(7919)) % tl);
        par.update(work, i, |v| v + coeff);
        par.flops(2);
    });
}

#[test]
fn replication_accelerates_broadcast_reads() {
    let run = |replicate: bool| -> (f64, Vec<f64>) {
        let (mut rt, table, work, mut upm) = broadcast_setup();
        sweep(&mut rt, &table, &work); // cold start
        upm.reset_counters(rt.machine());
        let t0 = rt.machine().clock().now_secs();
        for _ in 0..8 {
            sweep(&mut rt, &table, &work);
            if upm.is_active() {
                upm.migrate_memory(rt.machine_mut());
            }
            if replicate {
                upm.replicate_readonly(rt.machine_mut());
            }
        }
        (rt.machine().clock().now_secs() - t0, work.to_vec())
    };
    let (plain, data_plain) = run(false);
    let (replicated, data_replicated) = run(true);
    assert!(
        replicated < plain,
        "replication must win on a broadcast table: {replicated} vs {plain}"
    );
    assert_eq!(
        data_plain, data_replicated,
        "replication must not change results"
    );
}

#[test]
fn a_late_write_collapses_and_stays_correct() {
    let (mut rt, table, work, mut upm) = broadcast_setup();
    sweep(&mut rt, &table, &work);
    upm.reset_counters(rt.machine());
    for _ in 0..3 {
        sweep(&mut rt, &table, &work);
        if upm.is_active() {
            upm.migrate_memory(rt.machine_mut());
        }
        upm.replicate_readonly(rt.machine_mut());
    }
    assert!(
        upm.stats().replications > 0,
        "the table must have been replicated"
    );
    let (tbase, tlen) = table.vrange();
    let replicated_pages: usize = (ccnuma::vpage_of(tbase)..=ccnuma::vpage_of(tbase + tlen - 1))
        .map(|vp| rt.machine().replica_count(vp))
        .sum();
    assert!(replicated_pages > 0);

    // Someone writes the table (e.g. coefficients updated): collapse.
    rt.serial(|par| {
        for i in 0..table.len() {
            let v = par.get(&table, i);
            par.set(&table, i, 2.0 * v);
        }
    });
    let after: usize = (ccnuma::vpage_of(tbase)..=ccnuma::vpage_of(tbase + tlen - 1))
        .map(|vp| rt.machine().replica_count(vp))
        .sum();
    assert_eq!(after, 0, "writes must collapse every replica");

    // The next sweep sees the doubled coefficients everywhere.
    let before = work.to_vec();
    sweep(&mut rt, &table, &work);
    let tl = table.len();
    for (i, (b, a)) in before.iter().zip(work.to_vec()).enumerate() {
        let coeff = table.peek((i.wrapping_mul(7919)) % tl);
        assert_eq!(a, b + coeff, "element {i}");
    }
}

#[test]
fn frame_accounting_survives_replication_cycles() {
    let (mut rt, table, work, mut upm) = broadcast_setup();
    let total = rt.machine().memory().total_frames();
    sweep(&mut rt, &table, &work);
    for round in 0..4 {
        sweep(&mut rt, &table, &work);
        upm.replicate_readonly(rt.machine_mut());
        if round % 2 == 1 {
            // Collapse by writing one table element.
            rt.serial(|par| par.set(&table, 0, round as f64));
        }
        let replicas: usize = rt
            .machine()
            .mapped_pages()
            .map(|(vp, _)| rt.machine().replica_count(vp))
            .sum();
        let mapped = rt.machine().mapped_pages().count();
        assert_eq!(
            rt.machine().memory().total_free() + mapped + replicas,
            total,
            "round {round}"
        );
    }
}
