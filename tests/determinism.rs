//! Determinism: the entire stack — machine, runtime, engines, benchmarks —
//! must produce bit-identical simulated times and results across runs.
//! Every experiment in the paper reproduction depends on this.

use nas::{BenchName, EngineMode, RunConfig, Scale};
use upmlib::UpmOptions;
use vmm::{KernelMigrationConfig, PlacementScheme};
use xp::run_one;

fn fingerprint(
    bench: BenchName,
    placement: PlacementScheme,
    engine: EngineMode,
) -> (f64, Vec<f64>, f64) {
    let r = run_one(
        bench,
        Scale::Tiny,
        &RunConfig {
            placement,
            engine,
            ..RunConfig::paper_default()
        },
    );
    (r.total_secs, r.per_iter_secs, r.verification.value)
}

#[test]
fn plain_runs_are_deterministic() {
    for bench in BenchName::all() {
        let a = fingerprint(bench, PlacementScheme::FirstTouch, EngineMode::None);
        let b = fingerprint(bench, PlacementScheme::FirstTouch, EngineMode::None);
        assert_eq!(a, b, "{} not deterministic", bench.label());
    }
}

#[test]
fn random_placement_is_deterministic_given_seed() {
    let a = fingerprint(
        BenchName::Cg,
        PlacementScheme::Random { seed: 5 },
        EngineMode::None,
    );
    let b = fingerprint(
        BenchName::Cg,
        PlacementScheme::Random { seed: 5 },
        EngineMode::None,
    );
    assert_eq!(a, b);
    let c = fingerprint(
        BenchName::Cg,
        PlacementScheme::Random { seed: 6 },
        EngineMode::None,
    );
    assert_ne!(a.0, c.0, "different placement seeds should change timing");
    assert_eq!(a.2, c.2, "but never the numerics");
}

#[test]
fn engine_runs_are_deterministic() {
    for engine in [
        EngineMode::IrixMig(KernelMigrationConfig::default()),
        EngineMode::Upmlib(UpmOptions::default()),
        EngineMode::RecRep(UpmOptions::default()),
    ] {
        let a = fingerprint(BenchName::Bt, PlacementScheme::RoundRobin, engine.clone());
        let b = fingerprint(BenchName::Bt, PlacementScheme::RoundRobin, engine.clone());
        assert_eq!(a, b, "engine {} not deterministic", engine.label());
    }
}

#[test]
fn experiment_reports_are_deterministic() {
    let a = xp::table1::run();
    let b = xp::table1::run();
    assert_eq!(a.rows, b.rows);
}
