//! Smoke tests of the experiment reports at Tiny scale: every artifact
//! renders with the right shape and every embedded run verifies.

use nas::Scale;

#[test]
fn table1_report_has_six_levels() {
    let r = xp::table1::run();
    assert_eq!(r.id, "table1");
    assert_eq!(r.rows.len(), 6);
    assert!(r.to_markdown().contains("| L1 cache |"));
}

#[test]
fn fig1_report_covers_all_benchmarks_and_configs() {
    let r = xp::fig1::run(Scale::Tiny);
    // 5 benchmarks x 5 placements (incl. synthesized static) x 2 engines.
    assert_eq!(r.rows.len(), 50);
    let verified = r.headers.iter().position(|h| h == "Verified").unwrap();
    for row in &r.rows {
        assert_eq!(row[verified], "ok", "{row:?}");
    }
    // One bar chart per benchmark.
    assert_eq!(r.charts.len(), 5);
    for (_, bars) in &r.charts {
        assert_eq!(bars.len(), 10);
        assert!(bars.iter().all(|b| b.value > 0.0));
    }
    assert_eq!(r.notes.len(), 1);
}

#[test]
fn fig5_report_shape() {
    let r = xp::fig5::run(Scale::Tiny);
    assert_eq!(r.rows.len(), 8); // BT and SP x 4 configs
    let overhead = r
        .headers
        .iter()
        .position(|h| h.contains("migration overhead"))
        .unwrap();
    // Only the recrep rows carry overhead.
    for row in &r.rows {
        let is_recrep = row[1].contains("recrep");
        let has_overhead = row[overhead].parse::<f64>().unwrap() > 0.0;
        assert_eq!(is_recrep, has_overhead, "{row:?}");
    }
}

#[test]
fn reports_save_and_reload_as_json() {
    let r = xp::table1::run();
    let dir = std::env::temp_dir().join("ddnomp-report-roundtrip");
    let path = r.save_json(&dir).unwrap();
    let text = std::fs::read_to_string(path).unwrap();
    let value = obs::json::Value::parse(&text).unwrap();
    assert_eq!(value["id"], "table1");
    assert_eq!(value["rows"].as_array().unwrap().len(), 6);
}
