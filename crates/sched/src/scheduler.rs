//! The quantum-driven scheduler loop.
//!
//! A global simulated clock advances one quantum at a time. Each quantum
//! the policy maps the runnable job set to disjoint CPU grants; the
//! scheduler applies each grant — shrinking, growing, or rebinding the
//! job's OpenMP team through `omp::Runtime`, firing the job's
//! scheduler-aware UPMlib response — and then lets the job consume its
//! CPU-time budget by stepping timed iterations on its own machine.
//!
//! Preemption is cooperative at iteration granularity: an iteration that
//! outlives the quantum leaves the job's budget negative, and the job pays
//! that debt out of its next grant before stepping again — the simulated
//! analogue of a thread being descheduled mid-iteration. CPU grants are
//! checked every quantum (no CPU double-booked, only runnable jobs
//! scheduled) via [`crate::policy::validate_assignments`].

use crate::job::{Job, JobSpec, UpmResponse};
use crate::outcome::{JobOutcome, SchedOutcome};
use crate::policy::{JobRequest, Policy};
use obs::{EventKind, TraceSink};

/// Scheduler tunables.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Quantum length in simulated ns. IRIX time-shares at 10–100 ms; the
    /// right value for an experiment is a few iterations of the smallest
    /// job, so the scheduler preempts mid-run but not every instant.
    pub quantum_ns: f64,
    /// Collect the scheduler's event trace (JobArrived, QuantumExpired,
    /// ThreadMigrated, TeamResized).
    pub trace: bool,
    /// Event-ring bound for the scheduler trace.
    pub trace_capacity: usize,
    /// Safety valve: panic if the schedule exceeds this many quanta
    /// (a policy that starves a job would otherwise spin forever).
    pub max_quanta: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            quantum_ns: 10.0e6,
            trace: false,
            trace_capacity: 1 << 18,
            max_quanta: 1_000_000,
        }
    }
}

/// The kernel scheduler: owns the jobs and the global clock.
pub struct Scheduler {
    cfg: SchedConfig,
    policy: Box<dyn Policy>,
    jobs: Vec<Job>,
    trace: TraceSink,
    now_ns: f64,
    quantum: u64,
    thread_migrations: u64,
    team_resizes: u64,
}

impl Scheduler {
    pub fn new(policy: Box<dyn Policy>, cfg: SchedConfig) -> Self {
        let trace = if cfg.trace {
            TraceSink::enabled(cfg.trace_capacity)
        } else {
            TraceSink::Null
        };
        Scheduler {
            cfg,
            policy,
            jobs: Vec::new(),
            trace,
            now_ns: 0.0,
            quantum: 0,
            thread_migrations: 0,
            team_resizes: 0,
        }
    }

    /// Admit a job; returns its id. All jobs must target machines with the
    /// same CPU count (they share the physical processors).
    pub fn submit(&mut self, spec: JobSpec) -> usize {
        let id = self.jobs.len();
        let arrival = spec.arrival_ns;
        let job = Job::new(id, spec);
        if let Some(first) = self.jobs.first() {
            assert_eq!(
                first.run.runtime().machine().topology().cpus(),
                job.run.runtime().machine().topology().cpus(),
                "all jobs must share one machine size"
            );
        }
        self.trace
            .emit(arrival, || EventKind::JobArrived { job: id });
        self.jobs.push(job);
        id
    }

    /// Threads moved between CPUs so far, all jobs.
    pub fn thread_migrations(&self) -> u64 {
        self.thread_migrations
    }

    /// Run quanta until every job finishes; consume the scheduler and
    /// report.
    pub fn run_to_completion(mut self) -> SchedOutcome {
        assert!(!self.jobs.is_empty(), "no jobs submitted");
        let cpus = self.jobs[0].run.runtime().machine().topology().cpus();
        let quantum_ns = self.cfg.quantum_ns;
        while self.jobs.iter().any(|j| !j.is_done()) {
            assert!(
                self.quantum < self.cfg.max_quanta,
                "schedule exceeded {} quanta: a job is starving or the quantum is too short; jobs: {:?}",
                self.cfg.max_quanta,
                self.jobs
                    .iter()
                    .map(|j| (j.id, j.is_done(), j.run.steps_done(), j.budget_ns))
                    .collect::<Vec<_>>()
            );
            let runnable: Vec<JobRequest> = self
                .jobs
                .iter()
                .filter(|j| !j.is_done() && j.spec.arrival_ns <= self.now_ns)
                .map(|j| JobRequest {
                    job: j.id,
                    threads: j.spec.config.threads,
                })
                .collect();
            if runnable.is_empty() {
                // Idle quantum: every unfinished job is still in the future.
                self.now_ns += quantum_ns;
                self.quantum += 1;
                continue;
            }
            let assignments = self.policy.assign(self.quantum, &runnable, cpus);
            crate::policy::validate_assignments(&assignments, &runnable, cpus);
            let scheduled = assignments.len();
            for a in &assignments {
                self.apply_binding(a.job, &a.cpus);
                {
                    let job = &mut self.jobs[a.job];
                    job.budget_ns += quantum_ns;
                    job.quanta_run += 1;
                }
                loop {
                    let job = &mut self.jobs[a.job];
                    if job.budget_ns <= 0.0 || job.run.is_done() {
                        break;
                    }
                    let ns = job.run.step() * 1e9;
                    job.budget_ns -= ns;
                    job.cpu_ns += ns;
                    // A response deferred while the job could not step may
                    // fire now that an iteration completed.
                    self.fire_response(a.job);
                }
                let job = &mut self.jobs[a.job];
                if job.run.is_done() && job.finish_ns.is_none() {
                    job.finish_ns = Some(self.now_ns + quantum_ns);
                }
            }
            let q = self.quantum;
            self.trace
                .emit(self.now_ns + quantum_ns, || EventKind::QuantumExpired {
                    quantum: q,
                    scheduled,
                });
            self.now_ns += quantum_ns;
            self.quantum += 1;
        }
        self.report()
    }

    /// Install `cpus` as the job's binding: resize if the team size
    /// changes, rebind (counting per-thread migrations) if only the CPUs
    /// change, and fire the job's UPMlib response on any change.
    fn apply_binding(&mut self, id: usize, cpus: &[usize]) {
        let now = self.now_ns;
        let job = &mut self.jobs[id];
        if job.binding == cpus {
            return;
        }
        let old = std::mem::replace(&mut job.binding, cpus.to_vec());
        if old.len() != cpus.len() {
            self.trace.emit(now, || EventKind::TeamResized {
                job: id,
                from: old.len(),
                to: cpus.len(),
            });
            job.team_resizes += 1;
            self.team_resizes += 1;
            job.run.runtime_mut().resize_team(cpus);
        } else {
            for (thread, (&from, &to)) in old.iter().zip(cpus).enumerate() {
                if from != to {
                    self.trace.emit(now, || EventKind::ThreadMigrated {
                        job: id,
                        thread,
                        from,
                        to,
                    });
                    job.thread_migrations += 1;
                    self.thread_migrations += 1;
                }
            }
            job.run.runtime_mut().rebind_threads(cpus);
        }
        // Queue the UPMlib response. Rebinds arriving faster than the job
        // can step coalesce: the deferred response runs from the binding
        // before the oldest unanswered rebind to whatever the binding is
        // when it fires.
        if job.response_old.is_none() {
            job.response_old = Some(old);
        }
        self.fire_response(id);
    }

    /// Fire the job's pending UPMlib response, if it has one and has
    /// completed an iteration since the last one fired. The response may
    /// move pages (the follow-threads replay); that work runs on the
    /// job's machine and advances its clock, so it is billed against the
    /// job's budget like any other consumed CPU time. Gating on a
    /// completed step bounds total response cost by (iterations x
    /// hot-set move cost): a scheduler that rotates bindings faster than
    /// the job can afford to chase them cannot starve it.
    fn fire_response(&mut self, id: usize) {
        let job = &mut self.jobs[id];
        if job.spec.response == UpmResponse::None {
            job.response_old = None;
            return;
        }
        if job.response_old.is_none() || job.run.steps_done() <= job.steps_at_last_response {
            return;
        }
        let old = job.response_old.take().expect("pending response");
        job.steps_at_last_response = job.run.steps_done();
        // Iteration work is measured inside `step` and must not be
        // double-charged, hence the clock delta around the response only.
        let t0 = job.run.runtime().machine().clock().now_ns();
        match job.spec.response {
            UpmResponse::None => unreachable!("cleared above"),
            UpmResponse::ForgetRelearn => job.run.rearm_upm(),
            UpmResponse::FollowThreads => {
                let new = job.binding.clone();
                job.run.upm_follow_rebind(&old, &new);
            }
        }
        let response_ns = job.run.runtime().machine().clock().now_ns() - t0;
        job.budget_ns -= response_ns;
        job.cpu_ns += response_ns;
    }

    fn report(mut self) -> SchedOutcome {
        let makespan_secs = self.now_ns * 1e-9;
        let jobs = std::mem::take(&mut self.jobs)
            .into_iter()
            .map(|job| JobOutcome {
                job: job.id,
                bench: job.spec.bench,
                arrival_secs: job.spec.arrival_ns * 1e-9,
                turnaround_secs: (job.finish_ns.expect("job finished before report")
                    - job.spec.arrival_ns)
                    * 1e-9,
                cpu_secs: job.cpu_ns * 1e-9,
                quanta_run: job.quanta_run,
                thread_migrations: job.thread_migrations,
                team_resizes: job.team_resizes,
                result: job.run.finish(),
            })
            .collect();
        SchedOutcome {
            policy: self.policy.name().to_string(),
            quanta: self.quantum,
            makespan_secs,
            thread_migrations: self.thread_migrations,
            team_resizes: self.team_resizes,
            jobs,
            trace: self.trace.take(),
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.policy.name())
            .field("jobs", &self.jobs.len())
            .field("quantum", &self.quantum)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gang, SpaceSharing, TimeSharing};
    use ccnuma::MachineConfig;
    use nas::{BenchName, EngineMode, RunConfig, Scale};
    use vmm::PlacementScheme;

    fn tiny_spec(bench: BenchName) -> JobSpec {
        JobSpec::new(
            bench,
            Scale::Tiny,
            RunConfig {
                placement: PlacementScheme::FirstTouch,
                engine: EngineMode::None,
                threads: 8,
                machine: MachineConfig::tiny_test(),
                trace: false,
            },
        )
    }

    fn sched(policy: Box<dyn Policy>) -> Scheduler {
        Scheduler::new(
            policy,
            SchedConfig {
                // Tiny-scale jobs last ~2 ms; a 50 us quantum gives each
                // job tens of quanta and several time-sharing rotations.
                quantum_ns: 0.05e6,
                trace: true,
                ..SchedConfig::default()
            },
        )
    }

    #[test]
    fn gang_runs_jobs_to_completion_without_migration() {
        let mut s = sched(Box::new(Gang));
        s.submit(tiny_spec(BenchName::Cg));
        s.submit(tiny_spec(BenchName::Mg));
        let out = s.run_to_completion();
        assert_eq!(out.policy, "gang");
        assert_eq!(out.jobs.len(), 2);
        assert_eq!(out.thread_migrations, 0, "gangs keep their CPUs");
        for j in &out.jobs {
            assert!(j.result.verification.passed, "{:?} must verify", j.bench);
            assert!(j.turnaround_secs > 0.0);
            assert!(j.cpu_secs > 0.0);
            assert!(j.turnaround_secs + 1e-12 >= j.cpu_secs);
        }
        assert!(out.makespan_secs >= out.jobs[0].turnaround_secs);
    }

    #[test]
    fn space_sharing_shrinks_then_grows_teams() {
        let mut s = sched(Box::new(SpaceSharing));
        s.submit(tiny_spec(BenchName::Cg));
        s.submit(tiny_spec(BenchName::Mg));
        let out = s.run_to_completion();
        assert_eq!(out.thread_migrations, 0, "partitions are stable");
        // Both jobs were shrunk from 8 to 4 threads at admission; the
        // survivor grows back to 8 when the other finishes.
        assert!(out.team_resizes >= 2, "both jobs resized at least once");
        let survivor = out
            .jobs
            .iter()
            .max_by(|a, b| a.turnaround_secs.total_cmp(&b.turnaround_secs))
            .unwrap();
        assert!(survivor.team_resizes >= 2, "survivor shrank then grew");
        for j in &out.jobs {
            assert!(j.result.verification.passed);
        }
    }

    #[test]
    fn time_sharing_migrates_threads_every_quantum() {
        let mut s = sched(Box::new(TimeSharing::default()));
        s.submit(tiny_spec(BenchName::Cg));
        s.submit(tiny_spec(BenchName::Mg));
        let out = s.run_to_completion();
        assert!(
            out.thread_migrations > 0,
            "rotation must move threads between quanta"
        );
        for j in &out.jobs {
            assert!(j.result.verification.passed);
        }
    }

    #[test]
    fn trace_thread_migrated_events_match_reported_count() {
        let mut s = sched(Box::new(TimeSharing::default()));
        s.submit(tiny_spec(BenchName::Cg));
        s.submit(tiny_spec(BenchName::Mg));
        let out = s.run_to_completion();
        let tracer = out.trace.as_ref().expect("tracing was on");
        let migrated = tracer
            .ring
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ThreadMigrated { .. }))
            .count() as u64;
        assert_eq!(migrated, out.thread_migrations);
        let arrived = tracer
            .ring
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JobArrived { .. }))
            .count();
        assert_eq!(arrived, 2);
        let quanta = tracer
            .ring
            .iter()
            .filter(|e| matches!(e.kind, EventKind::QuantumExpired { .. }))
            .count() as u64;
        assert_eq!(quanta, out.quanta);
    }

    #[test]
    fn late_arrival_waits_for_its_clock_time() {
        let mut s = sched(Box::new(Gang));
        s.submit(tiny_spec(BenchName::Cg));
        s.submit(tiny_spec(BenchName::Mg).arriving_at_ns(2.0e6));
        let out = s.run_to_completion();
        // Turnaround is measured from arrival, and the late job cannot
        // have started before it.
        assert!(out.jobs[1].arrival_secs > 0.0);
        assert!(out.jobs[1].turnaround_secs > 0.0);
        assert!(out.makespan_secs * 1e9 >= 2.0e6);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let mut s = sched(Box::new(TimeSharing::default()));
            s.submit(tiny_spec(BenchName::Cg));
            s.submit(tiny_spec(BenchName::Mg));
            let out = s.run_to_completion();
            (
                out.quanta,
                out.thread_migrations,
                out.makespan_secs.to_bits(),
                out.jobs
                    .iter()
                    .map(|j| j.turnaround_secs.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
