//! Space sharing (dynamic partitioning): every runnable job runs every
//! quantum, each inside its own stable contiguous CPU partition.
//!
//! The machine is divided into equal contiguous chunks, one per runnable
//! job in job order; teams are shrunk to their partition. The partition
//! only changes when the runnable set changes (a job finishes or arrives),
//! at which point survivors grow into the reclaimed CPUs — the dynamic
//! repartitioning of IRIX's Miser/processor-set style scheduling. Because
//! partitions are contiguous and stable, threads never move between
//! quanta and first-touch locality inside a partition survives.

use crate::policy::{equal_shares, Assignment, JobRequest, Policy};

/// Equal contiguous partitions, repartitioned when the runnable set changes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaceSharing;

impl Policy for SpaceSharing {
    fn name(&self) -> &'static str {
        "space"
    }

    fn assign(&mut self, _quantum: u64, jobs: &[JobRequest], cpus: usize) -> Vec<Assignment> {
        if jobs.is_empty() {
            return Vec::new();
        }
        equal_shares(jobs, cpus)
            .into_iter()
            .zip(jobs)
            .map(|((start, len), req)| Assignment {
                job: req.job,
                cpus: (start..start + len).collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_assignments;

    fn reqs(threads: &[usize]) -> Vec<JobRequest> {
        threads
            .iter()
            .enumerate()
            .map(|(job, &threads)| JobRequest { job, threads })
            .collect()
    }

    #[test]
    fn partitions_are_disjoint_and_stable() {
        let mut sp = SpaceSharing;
        let jobs = reqs(&[16, 16]);
        let first = sp.assign(0, &jobs, 16);
        validate_assignments(&first, &jobs, 16);
        assert_eq!(first[0].cpus, (0..8).collect::<Vec<_>>());
        assert_eq!(first[1].cpus, (8..16).collect::<Vec<_>>());
        // Same runnable set, later quantum: identical grants, no migration.
        assert_eq!(sp.assign(17, &jobs, 16), first);
    }

    #[test]
    fn survivor_grows_after_a_job_finishes() {
        let mut sp = SpaceSharing;
        let both = reqs(&[16, 16]);
        let before = sp.assign(0, &both, 16);
        assert_eq!(before[1].cpus.len(), 8);
        let alone = vec![JobRequest {
            job: 1,
            threads: 16,
        }];
        let after = sp.assign(1, &alone, 16);
        validate_assignments(&after, &alone, 16);
        assert_eq!(after[0].job, 1);
        assert_eq!(after[0].cpus.len(), 16, "survivor reclaims the machine");
    }

    #[test]
    fn three_jobs_share_sixteen_cpus() {
        let mut sp = SpaceSharing;
        let jobs = reqs(&[16, 16, 16]);
        let asg = sp.assign(0, &jobs, 16);
        validate_assignments(&asg, &jobs, 16);
        let sizes: Vec<usize> = asg.iter().map(|a| a.cpus.len()).collect();
        assert_eq!(sizes, vec![6, 5, 5]);
    }
}
