//! Jobs: one NAS benchmark instance per job, with its own OpenMP team and
//! its own address space.
//!
//! Jobs model separate processes: each owns a private simulated machine
//! image (pages, caches, reference counters), so two jobs never share
//! memory — they interact only by competing for CPU time, which is the
//! interaction the paper's multiprogramming experiments study. The
//! scheduler multiplexes the *physical* CPUs; a job's grant for a quantum
//! is the set of physical CPUs its threads are bound to.

use nas::bt::Bt;
use nas::cg::Cg;
use nas::ft::Ft;
use nas::mg::Mg;
use nas::sp::Sp;
use nas::{BenchName, BenchRun, RunConfig, Scale};

/// How UPMlib responds when the scheduler migrates a job's threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpmResponse {
    /// No response: the engine stays converged (typically self-deactivated)
    /// while the threads move out from under the tuned placement.
    #[default]
    None,
    /// Forget-and-relearn: re-arm the engine after each rebind so the next
    /// observation windows re-learn the placement under the new binding.
    ForgetRelearn,
    /// Record–replay of the old placement: immediately replay the tuned
    /// page homes under the new binding — "page migration follows thread
    /// migration". Falls back to forget-and-relearn when the thread moves
    /// induce no consistent node-to-node map (e.g. a team resize).
    FollowThreads,
}

impl UpmResponse {
    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            UpmResponse::None => "none",
            UpmResponse::ForgetRelearn => "relearn",
            UpmResponse::FollowThreads => "follow",
        }
    }
}

/// Everything needed to admit one job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Which NAS benchmark the job runs.
    pub bench: BenchName,
    /// Problem scale.
    pub scale: Scale,
    /// Per-job run configuration: placement scheme, migration engine,
    /// requested team size, machine image. `trace` should stay `false` —
    /// the scheduler keeps its own trace of scheduling events.
    pub config: RunConfig,
    /// Scheduler-aware UPMlib response mode.
    pub response: UpmResponse,
    /// Simulated arrival time; the job is runnable once the scheduler's
    /// global clock reaches it.
    pub arrival_ns: f64,
}

impl JobSpec {
    /// A job arriving at time zero with the default (no) UPMlib response.
    pub fn new(bench: BenchName, scale: Scale, config: RunConfig) -> Self {
        Self {
            bench,
            scale,
            config,
            response: UpmResponse::None,
            arrival_ns: 0.0,
        }
    }

    /// Set the UPMlib response mode.
    pub fn with_response(mut self, response: UpmResponse) -> Self {
        self.response = response;
        self
    }

    /// Set the arrival time.
    pub fn arriving_at_ns(mut self, arrival_ns: f64) -> Self {
        self.arrival_ns = arrival_ns;
        self
    }
}

/// Construct the steppable run for a benchmark by name.
fn make_run(bench: BenchName, scale: Scale, cfg: &RunConfig) -> BenchRun {
    match bench {
        BenchName::Bt => BenchRun::new(|rt| Bt::new(rt, scale), cfg),
        BenchName::Sp => BenchRun::new(|rt| Sp::new(rt, scale), cfg),
        BenchName::Cg => BenchRun::new(|rt| Cg::new(rt, scale), cfg),
        BenchName::Mg => BenchRun::new(|rt| Mg::new(rt, scale), cfg),
        BenchName::Ft => BenchRun::new(|rt| Ft::new(rt, scale), cfg),
    }
}

/// One admitted job: the running benchmark plus the scheduler's
/// bookkeeping about it.
pub struct Job {
    /// Dense id, in submission order.
    pub id: usize,
    /// The admission record.
    pub spec: JobSpec,
    pub(crate) run: BenchRun,
    /// Current CPU binding (`binding[i]` = thread `i`'s physical CPU);
    /// mirrors the job runtime's binding.
    pub(crate) binding: Vec<usize>,
    /// Unspent CPU-time budget, in simulated ns. Granted a quantum each
    /// time the job is scheduled; iterations spend it. Overshoot (an
    /// iteration longer than the remaining budget) leaves it negative, so
    /// the job pays the debt out of its next grant — cooperative
    /// preemption at iteration granularity.
    pub(crate) budget_ns: f64,
    /// Global time at which the job's last iteration completed.
    pub(crate) finish_ns: Option<f64>,
    /// Threads moved between CPUs by the scheduler.
    pub(crate) thread_migrations: u64,
    /// Team shrink/grow events applied by the scheduler.
    pub(crate) team_resizes: u64,
    /// Simulated CPU seconds consumed by timed iterations, in ns.
    pub(crate) cpu_ns: f64,
    /// Quanta during which this job held CPUs.
    pub(crate) quanta_run: u64,
    /// The binding before the oldest rebind whose UPMlib response has not
    /// fired yet. The scheduler fires the response at most once per
    /// completed iteration; rebinds arriving faster than the job can step
    /// coalesce into one deferred response from this binding to the
    /// current one.
    pub(crate) response_old: Option<Vec<usize>>,
    /// `run.steps_done()` when the response last fired — responses are
    /// gated on the job having stepped since, which bounds total response
    /// cost by (iterations x hot-set move cost) and makes starvation
    /// impossible no matter how fast the scheduler rotates bindings.
    pub(crate) steps_at_last_response: usize,
}

impl Job {
    pub(crate) fn new(id: usize, spec: JobSpec) -> Self {
        let run = make_run(spec.bench, spec.scale, &spec.config);
        let binding = run.runtime().binding().to_vec();
        Self {
            id,
            spec,
            run,
            binding,
            budget_ns: 0.0,
            finish_ns: None,
            thread_migrations: 0,
            team_resizes: 0,
            cpu_ns: 0.0,
            quanta_run: 0,
            response_old: None,
            steps_at_last_response: 0,
        }
    }

    /// Whether the job has run every timed iteration.
    pub fn is_done(&self) -> bool {
        self.run.is_done()
    }

    /// Current CPU binding.
    pub fn binding(&self) -> &[usize] {
        &self.binding
    }

    /// Threads moved between CPUs so far.
    pub fn thread_migrations(&self) -> u64 {
        self.thread_migrations
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("bench", &self.spec.bench)
            .field("binding", &self.binding)
            .field("done", &self.is_done())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::MachineConfig;
    use nas::{EngineMode, RunConfig};
    use vmm::PlacementScheme;

    fn tiny_spec() -> JobSpec {
        JobSpec::new(
            BenchName::Cg,
            Scale::Tiny,
            RunConfig {
                placement: PlacementScheme::FirstTouch,
                engine: EngineMode::None,
                threads: 4,
                machine: MachineConfig::tiny_test(),
                trace: false,
            },
        )
    }

    #[test]
    fn new_job_is_bound_identity_and_not_done() {
        let job = Job::new(0, tiny_spec());
        assert_eq!(job.binding(), &[0, 1, 2, 3]);
        assert!(!job.is_done());
        assert_eq!(job.thread_migrations(), 0);
    }

    #[test]
    fn spec_builders_set_fields() {
        let spec = tiny_spec()
            .with_response(UpmResponse::FollowThreads)
            .arriving_at_ns(5e6);
        assert_eq!(spec.response, UpmResponse::FollowThreads);
        assert_eq!(spec.arrival_ns, 5e6);
        assert_eq!(UpmResponse::None.label(), "none");
        assert_eq!(UpmResponse::ForgetRelearn.label(), "relearn");
        assert_eq!(UpmResponse::FollowThreads.label(), "follow");
    }
}
