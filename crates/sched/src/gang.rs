//! Gang scheduling: one job at a time owns the whole machine.
//!
//! The classic coscheduling discipline (and IRIX's behaviour for jobs that
//! request it): all threads of a team run simultaneously or not at all, so
//! quanta are dealt to whole jobs round-robin. Each job always lands on
//! the same CPUs, so gang scheduling induces *no* thread migration — its
//! cost is purely the wait for the machine, which is why the paper treats
//! it as the locality-friendly baseline among time-sharing disciplines.

use crate::policy::{Assignment, JobRequest, Policy};

/// Round-robin whole-machine gang scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gang;

impl Policy for Gang {
    fn name(&self) -> &'static str {
        "gang"
    }

    fn assign(&mut self, quantum: u64, jobs: &[JobRequest], cpus: usize) -> Vec<Assignment> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let req = jobs[(quantum as usize) % jobs.len()];
        let team = req.threads.min(cpus).max(1);
        vec![Assignment {
            job: req.job,
            cpus: (0..team).collect(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_assignments;

    fn reqs(n: usize) -> Vec<JobRequest> {
        (0..n).map(|job| JobRequest { job, threads: 16 }).collect()
    }

    #[test]
    fn rotates_whole_machine_round_robin() {
        let mut gang = Gang;
        let jobs = reqs(3);
        for q in 0..9 {
            let asg = gang.assign(q, &jobs, 16);
            validate_assignments(&asg, &jobs, 16);
            assert_eq!(asg.len(), 1);
            assert_eq!(asg[0].job, (q as usize) % 3);
            assert_eq!(asg[0].cpus, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn binding_is_stable_per_job() {
        let mut gang = Gang;
        let jobs = reqs(2);
        let first = gang.assign(0, &jobs, 16);
        let again = gang.assign(2, &jobs, 16);
        assert_eq!(first, again, "a gang must keep its CPUs across quanta");
    }

    #[test]
    fn caps_team_at_machine_size() {
        let mut gang = Gang;
        let jobs = vec![JobRequest {
            job: 0,
            threads: 64,
        }];
        let asg = gang.assign(0, &jobs, 8);
        assert_eq!(asg[0].cpus.len(), 8);
    }
}
