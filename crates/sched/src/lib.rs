//! A simulated IRIX-like kernel scheduler: time-sharing the ccNUMA machine
//! among multiple concurrent NAS jobs.
//!
//! The paper's strongest argument against static data distribution is that
//! a `DISTRIBUTE` directive is meaningless once "the operating system
//! intervenes and preempts or migrates threads": under multiprogramming the
//! kernel moves threads across nodes, first-touch placement goes stale, and
//! only dynamic page migration can follow. This crate supplies the missing
//! operating system:
//!
//! * [`job::Job`] — one NAS benchmark instance with its own OpenMP team and
//!   its own address space (a private simulated machine image), wrapped in
//!   the steppable [`nas::BenchRun`] harness;
//! * [`scheduler::Scheduler`] — a quantum-driven loop on a global simulated
//!   clock: each quantum a pluggable [`policy::Policy`] grants disjoint CPU
//!   sets to runnable jobs, the scheduler applies the grants (shrinking,
//!   growing, or rebinding teams through `omp::Runtime`), and the jobs run
//!   until their budget for the quantum is consumed;
//! * three policies — [`gang::Gang`] (one job at a time on the whole
//!   machine, round-robin), [`space::SpaceSharing`] (stable contiguous
//!   partitions, repartitioned when jobs finish), and
//!   [`timeshare::TimeSharing`] (partitions that rotate across the machine
//!   every quantum — naive time-sharing with thread migration);
//! * [`job::UpmResponse`] — the scheduler-aware UPMlib modes: after the
//!   scheduler rebinds a team, the migration engine either re-arms and
//!   re-learns the placement (forget-and-relearn) or immediately replays
//!   the tuned placement under the new binding ("page migration follows
//!   thread migration").
//!
//! Preemption is cooperative: jobs yield at iteration boundaries (the
//! scheduler's preemption points) and expose region-boundary yield points
//! via [`nas::BenchRun::step_with`] plus `omp::Runtime::request_rebind`.
//! See DESIGN.md §10 for the model and its deviations from real IRIX.

pub mod gang;
pub mod job;
pub mod outcome;
pub mod policy;
pub mod scheduler;
pub mod space;
pub mod timeshare;

pub use gang::Gang;
pub use job::{Job, JobSpec, UpmResponse};
pub use outcome::{JobOutcome, SchedOutcome};
pub use policy::{validate_assignments, Assignment, JobRequest, Policy};
pub use scheduler::{SchedConfig, Scheduler};
pub use space::SpaceSharing;
pub use timeshare::TimeSharing;
