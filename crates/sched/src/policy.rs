//! The scheduling-policy interface: each quantum, a policy maps the
//! runnable job set to disjoint CPU grants.

use std::collections::HashSet;

/// One runnable job's standing request, as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRequest {
    /// Job id.
    pub job: usize,
    /// Team size the job asked for at submission.
    pub threads: usize,
}

/// CPUs granted to one job for one quantum: `cpus[i]` is the physical CPU
/// thread `i` runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Job id (must be in the runnable set passed to the policy).
    pub job: usize,
    /// Granted CPUs, one per thread; the team is resized to this length.
    pub cpus: Vec<usize>,
}

/// A pluggable scheduling policy.
///
/// Invariants every policy must uphold (checked by
/// [`validate_assignments`] each quantum and by the crate's property
/// tests): no CPU is granted to two jobs within a quantum, every granted
/// job is runnable, grants are non-empty, and every runnable job is
/// scheduled at least once in any window of `jobs.len()` consecutive
/// quanta with an unchanged runnable set (no starvation).
pub trait Policy {
    /// Policy label used in experiment output.
    fn name(&self) -> &'static str;

    /// Decide CPU grants for quantum number `quantum` given the runnable
    /// set and the machine's CPU count.
    fn assign(&mut self, quantum: u64, jobs: &[JobRequest], cpus: usize) -> Vec<Assignment>;
}

/// Panic if `asg` double-books a CPU, grants an out-of-range CPU, grants a
/// job not in `jobs`, or hands out an empty grant.
pub fn validate_assignments(asg: &[Assignment], jobs: &[JobRequest], cpus: usize) {
    let runnable: HashSet<usize> = jobs.iter().map(|r| r.job).collect();
    let mut granted = HashSet::new();
    let mut used = HashSet::new();
    for a in asg {
        assert!(
            runnable.contains(&a.job),
            "policy granted CPUs to job {} which is not runnable",
            a.job
        );
        assert!(
            granted.insert(a.job),
            "policy granted job {} twice in one quantum",
            a.job
        );
        assert!(!a.cpus.is_empty(), "empty CPU grant for job {}", a.job);
        for &c in &a.cpus {
            assert!(c < cpus, "cpu {c} out of range (machine has {cpus})");
            assert!(used.insert(c), "cpu {c} double-booked within a quantum");
        }
    }
}

/// Equal contiguous shares of the machine for the runnable jobs, in job
/// order: `(start, len)` per job. The partition both space-sharing and
/// time-sharing derive their grants from. A job never gets more CPUs than
/// it requested; leftovers from the division go to the earlier jobs.
pub(crate) fn equal_shares(jobs: &[JobRequest], cpus: usize) -> Vec<(usize, usize)> {
    let k = jobs.len();
    assert!(k > 0, "no runnable jobs to partition for");
    assert!(
        k <= cpus,
        "more runnable jobs ({k}) than CPUs ({cpus}): partitioning unsupported"
    );
    let base = cpus / k;
    let extra = cpus % k;
    let mut start = 0;
    let mut shares = Vec::with_capacity(k);
    for (i, req) in jobs.iter().enumerate() {
        let share = base + usize::from(i < extra);
        shares.push((start, share.min(req.threads).max(1)));
        start += share;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(threads: &[usize]) -> Vec<JobRequest> {
        threads
            .iter()
            .enumerate()
            .map(|(job, &threads)| JobRequest { job, threads })
            .collect()
    }

    #[test]
    fn equal_shares_cover_disjoint_ranges() {
        let shares = equal_shares(&reqs(&[16, 16, 16]), 16);
        assert_eq!(shares, vec![(0, 6), (6, 5), (11, 5)]);
        let shares = equal_shares(&reqs(&[16, 16]), 16);
        assert_eq!(shares, vec![(0, 8), (8, 8)]);
    }

    #[test]
    fn equal_shares_cap_at_requested_threads() {
        let shares = equal_shares(&reqs(&[2, 16]), 16);
        assert_eq!(shares, vec![(0, 2), (8, 8)]);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn validate_rejects_double_booking() {
        let jobs = reqs(&[4, 4]);
        let asg = vec![
            Assignment {
                job: 0,
                cpus: vec![0, 1],
            },
            Assignment {
                job: 1,
                cpus: vec![1, 2],
            },
        ];
        validate_assignments(&asg, &jobs, 8);
    }

    #[test]
    #[should_panic(expected = "not runnable")]
    fn validate_rejects_unknown_job() {
        let jobs = reqs(&[4]);
        let asg = vec![Assignment {
            job: 7,
            cpus: vec![0],
        }];
        validate_assignments(&asg, &jobs, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_out_of_range_cpu() {
        let jobs = reqs(&[4]);
        let asg = vec![Assignment {
            job: 0,
            cpus: vec![8],
        }];
        validate_assignments(&asg, &jobs, 8);
    }
}
