//! What a multiprogrammed schedule produced: per-job turnaround and
//! migration counts, plus the whole-schedule aggregates the `xp multiprog`
//! experiment tables are built from.

use nas::{BenchName, RunResult};

/// One job's fate under the schedule.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job id, in submission order.
    pub job: usize,
    /// Which benchmark the job ran.
    pub bench: BenchName,
    /// Simulated arrival time, seconds.
    pub arrival_secs: f64,
    /// Arrival-to-completion time on the scheduler's global clock, seconds.
    /// Per-job slowdown is this divided by the job's dedicated-machine run
    /// time (measured separately by the experiment).
    pub turnaround_secs: f64,
    /// Simulated CPU seconds the job's timed iterations consumed.
    pub cpu_secs: f64,
    /// Quanta during which the job held CPUs.
    pub quanta_run: u64,
    /// Threads the scheduler moved between CPUs over the job's lifetime.
    pub thread_migrations: u64,
    /// Team shrink/grow events the scheduler applied.
    pub team_resizes: u64,
    /// The benchmark-side result: verification, per-iteration times,
    /// remote-access fraction, engine statistics.
    pub result: RunResult,
}

/// Everything a finished schedule reports.
#[derive(Debug)]
pub struct SchedOutcome {
    /// Policy label ([`crate::Policy::name`]).
    pub policy: String,
    /// Quanta elapsed until the last job finished.
    pub quanta: u64,
    /// Global simulated time at which the last job finished, seconds.
    pub makespan_secs: f64,
    /// Total threads moved between CPUs, all jobs.
    pub thread_migrations: u64,
    /// Total team shrink/grow events, all jobs.
    pub team_resizes: u64,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// The scheduler's event trace (JobArrived / QuantumExpired /
    /// ThreadMigrated / TeamResized), when tracing was enabled.
    pub trace: Option<Box<obs::Tracer>>,
}

impl SchedOutcome {
    /// The outcome of job `id`.
    pub fn job(&self, id: usize) -> &JobOutcome {
        &self.jobs[id]
    }

    /// Mean remote-access fraction across jobs (unweighted).
    pub fn mean_remote_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.result.remote_fraction)
            .sum::<f64>()
            / self.jobs.len() as f64
    }
}
