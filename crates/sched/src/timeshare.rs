//! Naive time-sharing with thread migration: every runnable job runs every
//! quantum, but the partition assignment rotates across the machine, so
//! threads migrate between nodes as the schedule progresses.
//!
//! This models the behaviour the paper holds against static distribution:
//! a priority-driven kernel scheduler that moves threads between
//! processors for load balance, with no regard for memory affinity. The
//! grants are the same equal contiguous chunks as space sharing, but
//! shifted by `stride` CPUs once every `period` quanta (mod the machine),
//! so every thread periodically changes CPU — and home node — while the
//! page placement stays wherever first touch (or the migration engine)
//! left it. A real kernel degrades affinity occasionally (when its load
//! balancer fires), not on every tick; `period` sets how many quanta a
//! binding survives between rotations.
//!
//! The default stride of 2 equals the Origin2000's CPUs-per-node, so a
//! rotation moves whole node populations to the next node: threads that
//! shared a node keep sharing one, which is exactly the case where the
//! record–replay UPMlib response ([`crate::job::UpmResponse::FollowThreads`])
//! can replay the old placement under the new binding.

use crate::policy::{equal_shares, Assignment, JobRequest, Policy};

/// Rotating-partition time-sharing.
#[derive(Debug, Clone, Copy)]
pub struct TimeSharing {
    /// CPUs the partition shifts by at each rotation.
    pub stride: usize,
    /// Quanta between rotations (a binding survives this many quanta).
    pub period: u64,
}

impl Default for TimeSharing {
    fn default() -> Self {
        // Shift by one Origin2000 node, once every 16 quanta: threads keep
        // their CPUs long enough for a migration engine to amortize moving
        // the hot pages after them, as under a real load balancer that
        // fires occasionally rather than every tick.
        TimeSharing {
            stride: 2,
            period: 16,
        }
    }
}

impl Policy for TimeSharing {
    fn name(&self) -> &'static str {
        "timeshare"
    }

    fn assign(&mut self, quantum: u64, jobs: &[JobRequest], cpus: usize) -> Vec<Assignment> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let rotation = (quantum / self.period.max(1)) as usize;
        let offset = rotation.wrapping_mul(self.stride) % cpus;
        equal_shares(jobs, cpus)
            .into_iter()
            .zip(jobs)
            .map(|((start, len), req)| Assignment {
                job: req.job,
                cpus: (0..len).map(|i| (start + offset + i) % cpus).collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_assignments;

    fn reqs(n: usize) -> Vec<JobRequest> {
        (0..n).map(|job| JobRequest { job, threads: 16 }).collect()
    }

    #[test]
    fn rotation_stays_disjoint_and_moves_every_thread() {
        let mut ts = TimeSharing {
            stride: 2,
            period: 1,
        };
        let jobs = reqs(2);
        let mut prev: Option<Vec<Assignment>> = None;
        for q in 0..24 {
            let asg = ts.assign(q, &jobs, 16);
            validate_assignments(&asg, &jobs, 16);
            if let Some(prev) = prev {
                for (now, before) in asg.iter().zip(&prev) {
                    let moved = now
                        .cpus
                        .iter()
                        .zip(&before.cpus)
                        .filter(|(a, b)| a != b)
                        .count();
                    assert_eq!(moved, now.cpus.len(), "every thread migrates each rotation");
                }
            }
            prev = Some(asg);
        }
    }

    #[test]
    fn binding_survives_a_period_then_rotates() {
        let ts = TimeSharing::default();
        let mut ts2 = ts;
        let jobs = reqs(2);
        let base = ts2.assign(0, &jobs, 16);
        // Same binding for every quantum of the first period...
        for q in 1..ts.period {
            assert_eq!(
                ts2.assign(q, &jobs, 16),
                base,
                "binding stable within a period"
            );
        }
        // ...then every thread moves at the period boundary.
        let rotated = ts2.assign(ts.period, &jobs, 16);
        for (now, before) in rotated.iter().zip(&base) {
            let moved = now
                .cpus
                .iter()
                .zip(&before.cpus)
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(moved, now.cpus.len());
        }
    }

    #[test]
    fn stride_two_maps_nodes_onto_nodes() {
        // With 2 CPUs per node, a stride-2 rotation of an even-sized,
        // even-aligned chunk maps each node's thread pair onto one node.
        let mut ts = TimeSharing {
            stride: 2,
            period: 1,
        };
        let jobs = reqs(2);
        let before = ts.assign(0, &jobs, 16);
        let after = ts.assign(1, &jobs, 16);
        for (b, a) in before.iter().zip(&after) {
            for (pair_b, pair_a) in b.cpus.chunks(2).zip(a.cpus.chunks(2)) {
                assert_eq!(pair_b[0] / 2, pair_b[1] / 2, "pair shares a node before");
                assert_eq!(pair_a[0] / 2, pair_a[1] / 2, "pair shares a node after");
            }
        }
    }

    #[test]
    fn rotation_wraps_around_the_machine() {
        let mut ts = TimeSharing {
            stride: 2,
            period: 1,
        };
        let jobs = reqs(2);
        // After 8 quanta the offset is 16 % 16 = 0 again.
        assert_eq!(ts.assign(0, &jobs, 16), ts.assign(8, &jobs, 16));
        // Mid-cycle (offset 10), job 0's chunk [10..18) wraps through CPU 0.
        let asg = ts.assign(5, &jobs, 16);
        validate_assignments(&asg, &jobs, 16);
        assert!(asg[0].cpus.contains(&0));
    }
}
