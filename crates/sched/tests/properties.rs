//! Property tests of the scheduling policies: within any quantum no CPU is
//! granted twice, and over any window of `jobs.len()` consecutive quanta
//! with an unchanged runnable set, every runnable job is scheduled.

use proptest::prelude::*;
use sched::{validate_assignments, Gang, JobRequest, Policy, SpaceSharing, TimeSharing};
use std::collections::HashSet;

fn make_policy(tag: u8, stride: usize, period: u64) -> Box<dyn Policy> {
    match tag % 3 {
        0 => Box::new(Gang),
        1 => Box::new(SpaceSharing),
        _ => Box::new(TimeSharing { stride, period }),
    }
}

fn requests(threads: &[usize]) -> Vec<JobRequest> {
    threads
        .iter()
        .enumerate()
        .map(|(job, &threads)| JobRequest { job, threads })
        .collect()
}

proptest! {
    #[test]
    fn no_cpu_double_booked_within_a_quantum(
        tag in 0u8..3,
        stride in 1usize..5,
        period in 1u64..5,
        threads in proptest::collection::vec(1usize..17, 1..5),
        cpus in 8usize..17,
        start in 0u64..64,
    ) {
        let mut policy = make_policy(tag, stride, period);
        let jobs = requests(&threads);
        for q in start..start + 32 {
            let asg = policy.assign(q, &jobs, cpus);
            // Panics on double-booking, out-of-range CPUs, unknown or
            // duplicate jobs, empty grants.
            validate_assignments(&asg, &jobs, cpus);
            prop_assert!(!asg.is_empty(), "{} scheduled nothing", policy.name());
        }
    }

    #[test]
    fn every_runnable_job_is_eventually_scheduled(
        tag in 0u8..3,
        stride in 1usize..5,
        period in 1u64..5,
        threads in proptest::collection::vec(1usize..17, 1..5),
        cpus in 8usize..17,
        start in 0u64..64,
    ) {
        let mut policy = make_policy(tag, stride, period);
        let jobs = requests(&threads);
        // Any window of jobs.len() consecutive quanta covers every job.
        let mut scheduled = HashSet::new();
        for q in start..start + jobs.len() as u64 {
            for a in policy.assign(q, &jobs, cpus) {
                scheduled.insert(a.job);
            }
        }
        for req in &jobs {
            prop_assert!(
                scheduled.contains(&req.job),
                "{} starved job {} over a {}-quantum window from {}",
                policy.name(), req.job, jobs.len(), start
            );
        }
    }

    #[test]
    fn grants_never_exceed_the_request(
        tag in 0u8..3,
        stride in 1usize..5,
        period in 1u64..5,
        threads in proptest::collection::vec(1usize..17, 1..5),
        cpus in 8usize..17,
    ) {
        let mut policy = make_policy(tag, stride, period);
        let jobs = requests(&threads);
        for q in 0..16u64 {
            for a in policy.assign(q, &jobs, cpus) {
                prop_assert!(
                    a.cpus.len() <= jobs[a.job].threads,
                    "{} granted {} CPUs to a job requesting {}",
                    policy.name(), a.cpus.len(), jobs[a.job].threads
                );
            }
        }
    }
}
