//! Property-based tests of the worksharing runtime.

use ccnuma::{Machine, MachineConfig, SimArray};
use omp::{Runtime, Schedule};
use proptest::prelude::*;

fn runtime() -> Runtime {
    Runtime::new(Machine::new(MachineConfig::tiny_test()))
}

/// The first `take` entries of a seed-determined Fisher–Yates shuffle of
/// `0..cpus` — a valid distinct CPU binding for a `take`-thread team.
fn permutation(seed: u64, cpus: usize, take: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cpus).collect();
    let mut state = seed | 1;
    for i in (1..cpus).rev() {
        // xorshift64 step per swap: cheap, deterministic, seed-sensitive.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state as usize) % (i + 1));
    }
    order.truncate(take);
    order
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..16).prop_map(Schedule::StaticChunk),
        (1usize..16).prop_map(Schedule::Dynamic),
        (1usize..8).prop_map(Schedule::Guided),
    ]
}

proptest! {
    #[test]
    fn every_schedule_covers_every_iteration_exactly_once(
        n in 0usize..500,
        schedule in schedule_strategy(),
    ) {
        let mut rt = runtime();
        let mut seen = vec![0u32; n];
        rt.parallel_for(n, schedule, |_, i| seen[i] += 1);
        prop_assert!(seen.iter().all(|&c| c == 1), "{schedule:?} n={n}");
    }

    #[test]
    fn static_partition_is_disjoint_and_complete(
        n in 0usize..1000,
        threads in 1usize..32,
        chunk in 1usize..64,
    ) {
        for schedule in [Schedule::Static, Schedule::StaticChunk(chunk)] {
            let parts = schedule.static_chunks(n, threads);
            prop_assert_eq!(parts.len(), threads);
            let mut seen = vec![false; n];
            for chunks in &parts {
                for &(s, e) in chunks {
                    prop_assert!(s <= e && e <= n);
                    for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                        prop_assert!(!*slot, "iteration {i} assigned twice");
                        *slot = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn guided_chunks_shrink_and_terminate(
        n in 1usize..100_000,
        threads in 1usize..32,
        min_chunk in 1usize..16,
    ) {
        let s = Schedule::Guided(min_chunk);
        let mut remaining = n;
        let mut last = usize::MAX;
        let mut dispatches = 0;
        while remaining > 0 {
            let c = s.next_chunk_len(remaining, threads);
            prop_assert!(c >= 1 && c <= remaining);
            prop_assert!(c <= last, "guided chunks must not grow");
            last = c;
            remaining -= c;
            dispatches += 1;
            prop_assert!(dispatches <= 2 * n, "dispatch loop must terminate");
        }
    }

    #[test]
    fn reduction_matches_blocked_sequential_fold(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..300),
    ) {
        let n = values.len();
        let mut rt = runtime();
        let vals = values.clone();
        let a = SimArray::from_fn(rt.machine_mut(), "a", n, |i| vals[i]);
        let (sum, _) = rt.parallel_reduce(
            n,
            Schedule::Static,
            0.0,
            |par, i, acc| acc + par.get(&a, i),
            |x, y| x + y,
        );
        // Reference: fixed-block partials folded in block order — the
        // reduction's defined summation order, independent of team size.
        let blocks = omp::REDUCTION_BLOCKS.max(rt.threads());
        let block = n.div_ceil(blocks).max(1);
        let mut expect = 0.0;
        for b in 0..blocks {
            let (s, e) = ((b * block).min(n), ((b + 1) * block).min(n));
            let mut acc = 0.0;
            for v in &values[s..e] {
                acc += v;
            }
            if s < e {
                expect += acc;
            }
        }
        prop_assert_eq!(sum, expect);
    }

    #[test]
    fn reduction_is_bitwise_invariant_under_team_size(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..300),
        threads in 1usize..8,
    ) {
        // The fixed-block reduction order makes the result identical no
        // matter how many threads run it — the property a scheduler-driven
        // team resize relies on.
        let n = values.len();
        let run = |team: usize| {
            let mut rt = runtime();
            let binding: Vec<usize> = (0..team).collect();
            rt.resize_team(&binding);
            let vals = values.clone();
            let a = SimArray::from_fn(rt.machine_mut(), "a", n, |i| vals[i]);
            let (sum, _) = rt.parallel_reduce(
                n,
                Schedule::Static,
                0.0,
                |par, i, acc| acc + par.get(&a, i),
                |x, y| x + y,
            );
            sum
        };
        prop_assert_eq!(run(threads).to_bits(), run(1).to_bits());
    }

    #[test]
    fn region_count_matches_constructs(constructs in 1usize..20) {
        let mut rt = runtime();
        for _ in 0..constructs {
            rt.parallel_for(4, Schedule::Static, |par, _| par.flops(1));
        }
        prop_assert_eq!(rt.regions(), constructs as u64);
    }

    #[test]
    fn rebind_installs_exactly_the_permutation(
        seed in any::<u64>(),
        team in 1usize..9,
    ) {
        let mut rt = Runtime::with_threads(Machine::new(MachineConfig::tiny_test()), team);
        let cpus = rt.machine().topology().cpus();
        let perm = permutation(seed, cpus, team);
        rt.rebind_threads(&perm);
        prop_assert_eq!(rt.binding(), perm.as_slice());
        for (tid, &cpu) in perm.iter().enumerate() {
            prop_assert_eq!(rt.cpu_of_thread(tid), cpu);
        }
        // The binding stays a valid assignment: distinct, in-range CPUs.
        let mut seen = vec![false; cpus];
        for &cpu in rt.binding() {
            prop_assert!(cpu < cpus, "cpu {} out of range", cpu);
            prop_assert!(!seen[cpu], "cpu {} bound twice", cpu);
            seen[cpu] = true;
        }
        // The team still runs worksharing correctly after the rebind.
        let mut seen_iter = [0u32; 40];
        rt.parallel_for(40, Schedule::Static, |_, i| seen_iter[i] += 1);
        prop_assert!(seen_iter.iter().all(|&c| c == 1));
    }

    #[test]
    fn rebind_rejects_wrong_arity(
        seed in any::<u64>(),
        team in 1usize..9,
        delta in 1usize..4,
    ) {
        let mut rt = Runtime::with_threads(Machine::new(MachineConfig::tiny_test()), team);
        let cpus = rt.machine().topology().cpus();
        // Too short (when possible) and too long must both panic.
        if team > delta {
            let short = permutation(seed, cpus, team - delta);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.rebind_threads(&short)
            }));
            prop_assert!(r.is_err(), "short binding accepted");
        }
        if team + delta <= cpus {
            let long = permutation(seed, cpus, team + delta);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.rebind_threads(&long)
            }));
            prop_assert!(r.is_err(), "long binding accepted");
        }
    }

    #[test]
    fn rebind_rejects_duplicate_and_out_of_range_cpus(
        seed in any::<u64>(),
        team in 2usize..9,
        dup_at in 0usize..8,
    ) {
        let mut rt = Runtime::with_threads(Machine::new(MachineConfig::tiny_test()), team);
        let cpus = rt.machine().topology().cpus();
        let mut dup = permutation(seed, cpus, team);
        dup[dup_at % team] = dup[(dup_at + 1) % team];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.rebind_threads(&dup)
        }));
        prop_assert!(r.is_err(), "duplicate CPU accepted: {:?}", dup);
        let mut oob = permutation(seed, cpus, team);
        oob[dup_at % team] = cpus;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.rebind_threads(&oob)
        }));
        prop_assert!(r.is_err(), "out-of-range CPU accepted: {:?}", oob);
    }

    #[test]
    fn dynamic_dispatch_is_deterministic(
        n in 1usize..200,
        chunk in 1usize..8,
    ) {
        let run = || {
            let mut rt = runtime();
            let mut owners = vec![usize::MAX; n];
            rt.parallel_for(n, Schedule::Dynamic(chunk), |par, i| {
                owners[i] = par.tid;
                par.flops((i as u64 % 7) * 50);
            });
            (owners, rt.machine().clock().now_ns())
        };
        prop_assert_eq!(run(), run());
    }
}
