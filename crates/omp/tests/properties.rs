//! Property-based tests of the worksharing runtime.

use ccnuma::{Machine, MachineConfig, SimArray};
use omp::{Runtime, Schedule};
use proptest::prelude::*;

fn runtime() -> Runtime {
    Runtime::new(Machine::new(MachineConfig::tiny_test()))
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..16).prop_map(Schedule::StaticChunk),
        (1usize..16).prop_map(Schedule::Dynamic),
        (1usize..8).prop_map(Schedule::Guided),
    ]
}

proptest! {
    #[test]
    fn every_schedule_covers_every_iteration_exactly_once(
        n in 0usize..500,
        schedule in schedule_strategy(),
    ) {
        let mut rt = runtime();
        let mut seen = vec![0u32; n];
        rt.parallel_for(n, schedule, |_, i| seen[i] += 1);
        prop_assert!(seen.iter().all(|&c| c == 1), "{schedule:?} n={n}");
    }

    #[test]
    fn static_partition_is_disjoint_and_complete(
        n in 0usize..1000,
        threads in 1usize..32,
        chunk in 1usize..64,
    ) {
        for schedule in [Schedule::Static, Schedule::StaticChunk(chunk)] {
            let parts = schedule.static_chunks(n, threads);
            prop_assert_eq!(parts.len(), threads);
            let mut seen = vec![false; n];
            for chunks in &parts {
                for &(s, e) in chunks {
                    prop_assert!(s <= e && e <= n);
                    for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                        prop_assert!(!*slot, "iteration {i} assigned twice");
                        *slot = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn guided_chunks_shrink_and_terminate(
        n in 1usize..100_000,
        threads in 1usize..32,
        min_chunk in 1usize..16,
    ) {
        let s = Schedule::Guided(min_chunk);
        let mut remaining = n;
        let mut last = usize::MAX;
        let mut dispatches = 0;
        while remaining > 0 {
            let c = s.next_chunk_len(remaining, threads);
            prop_assert!(c >= 1 && c <= remaining);
            prop_assert!(c <= last, "guided chunks must not grow");
            last = c;
            remaining -= c;
            dispatches += 1;
            prop_assert!(dispatches <= 2 * n, "dispatch loop must terminate");
        }
    }

    #[test]
    fn reduction_matches_blocked_sequential_fold(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..300),
    ) {
        let n = values.len();
        let mut rt = runtime();
        let vals = values.clone();
        let a = SimArray::from_fn(rt.machine_mut(), "a", n, |i| vals[i]);
        let (sum, _) = rt.parallel_reduce(
            n,
            Schedule::Static,
            0.0,
            |par, i, acc| acc + par.get(&a, i),
            |x, y| x + y,
        );
        // Reference: per-thread block partials folded in thread order —
        // the reduction's defined summation order.
        let threads = rt.threads();
        let block = n.div_ceil(threads).max(1);
        let mut expect = 0.0;
        for t in 0..threads {
            let (s, e) = ((t * block).min(n), ((t + 1) * block).min(n));
            let mut acc = 0.0;
            for v in &values[s..e] {
                acc += v;
            }
            if s < e {
                expect += acc;
            } else {
                // Empty blocks contribute the identity, which the runtime
                // also folds in.
                expect += 0.0;
            }
        }
        prop_assert_eq!(sum, expect);
    }

    #[test]
    fn region_count_matches_constructs(constructs in 1usize..20) {
        let mut rt = runtime();
        for _ in 0..constructs {
            rt.parallel_for(4, Schedule::Static, |par, _| par.flops(1));
        }
        prop_assert_eq!(rt.regions(), constructs as u64);
    }

    #[test]
    fn dynamic_dispatch_is_deterministic(
        n in 1usize..200,
        chunk in 1usize..8,
    ) {
        let run = || {
            let mut rt = runtime();
            let mut owners = vec![usize::MAX; n];
            rt.parallel_for(n, Schedule::Dynamic(chunk), |par, i| {
                owners[i] = par.tid;
                par.flops((i as u64 % 7) * 50);
            });
            (owners, rt.machine().clock().now_ns())
        };
        prop_assert_eq!(run(), run());
    }
}
