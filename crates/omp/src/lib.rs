//! An OpenMP-like fork/join runtime over the simulated ccNUMA machine.
//!
//! OpenMP enters the paper only as the layer that decides *which processor
//! executes which iterations* — and therefore which CPU first touches and
//! subsequently re-touches each page. This runtime reproduces that layer:
//!
//! * [`Runtime::parallel_for`] — the `PARALLEL DO` worksharing construct,
//!   with `SCHEDULE(STATIC)`, `SCHEDULE(STATIC, chunk)`,
//!   `SCHEDULE(DYNAMIC, chunk)` and `SCHEDULE(GUIDED)` semantics;
//! * [`Runtime::parallel_sections`] — the `SECTIONS` construct;
//! * [`Runtime::parallel_reduce`] — `REDUCTION` clauses;
//! * [`Runtime::serial`] — sequential program text between constructs.
//!
//! Simulated CPUs execute sequentially and deterministically; dynamic and
//! guided schedules are *simulated* faithfully by an event loop that always
//! hands the next chunk to the simulated CPU with the least accumulated
//! virtual time — exactly what a real dynamic schedule's chunk queue does.
//!
//! Each construct is one fork/join region on the machine: the fork cost,
//! per-CPU times, the memory-contention correction and the barrier cost are
//! folded into the global simulated clock when the construct completes. The
//! IRIX kernel migration engine (when enabled) is given its scan at each
//! region boundary, the granularity at which simulated time advances.

pub mod runtime;
pub mod schedule;

pub use runtime::{
    reduction_block_count, reduction_block_ownership, reduction_chunks, Par, RegionSummary,
    Runtime, REDUCTION_BLOCKS,
};
pub use schedule::Schedule;
