//! The fork/join runtime: parallel regions, worksharing, reductions.

use crate::schedule::Schedule;
use ccnuma::contention::RegionTiming;
use ccnuma::fastpath::{FastpathEngine, FastpathOutcome, FastpathStats, PhaseProof, RecordToken};
use ccnuma::{CpuId, Machine, SimArray};
use vmm::KernelMigrationEngine;

/// Timing summary of one parallel construct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSummary {
    /// Wall time of the region after the contention correction, ns.
    pub wall_ns: f64,
    /// Wall time before the correction (max per-CPU busy time), ns.
    pub base_ns: f64,
    /// Highest per-node memory utilization observed.
    pub max_utilization: f64,
    /// Pages the kernel migration engine moved at this region boundary.
    pub kernel_migrations: usize,
}

impl RegionSummary {
    fn from_timing(t: &RegionTiming, kernel_migrations: usize) -> Self {
        Self {
            wall_ns: t.wall_ns,
            base_ns: t.base_ns,
            max_utilization: t.utilization.iter().copied().fold(0.0, f64::max),
            kernel_migrations,
        }
    }
}

/// Per-thread execution context handed to worksharing bodies.
///
/// `Par` is the simulated analogue of "the code running on one OpenMP
/// thread": it knows its thread id, its team size, and the CPU it is pinned
/// to, and it routes array accesses and flop accounting to the machine.
pub struct Par<'m> {
    /// The machine (borrowed for the duration of this thread's turn).
    pub machine: &'m mut Machine,
    /// CPU executing this thread (identity binding unless the scheduler
    /// has rebound the team via `Runtime::rebind_threads`).
    pub cpu: CpuId,
    /// Thread id within the team.
    pub tid: usize,
    /// Team size.
    pub team: usize,
}

impl Par<'_> {
    /// Simulated load of `array[i]`.
    #[inline(always)]
    pub fn get<T: Copy>(&mut self, array: &SimArray<T>, i: usize) -> T {
        array.get(self.machine, self.cpu, i)
    }

    /// Simulated store of `array[i] = value`.
    #[inline(always)]
    pub fn set<T: Copy>(&mut self, array: &SimArray<T>, i: usize, value: T) {
        array.set(self.machine, self.cpu, i, value)
    }

    /// Simulated read-modify-write of `array[i]`.
    #[inline(always)]
    pub fn update<T: Copy>(&mut self, array: &SimArray<T>, i: usize, f: impl FnOnce(T) -> T) {
        array.update(self.machine, self.cpu, i, f)
    }

    /// Charge `flops` floating-point operations of simulated compute time.
    #[inline(always)]
    pub fn flops(&mut self, flops: u64) {
        self.machine.compute(self.cpu, flops);
    }

    /// Charge raw nanoseconds of simulated compute time.
    #[inline(always)]
    pub fn compute_ns(&mut self, ns: f64) {
        self.machine.compute_ns(self.cpu, ns);
    }
}

/// Number of fixed reduction blocks: [`Runtime::parallel_reduce`] splits
/// the iteration space into this many blocks and combines the block
/// partials in block order regardless of team size (teams larger than
/// this use one block per thread), so reduction results are bit-identical
/// across team sizes and mid-run resizes — like a deterministic-reduction
/// OpenMP runtime.
pub const REDUCTION_BLOCKS: usize = 16;

/// Number of reduction blocks used by a team of `threads` threads: the
/// fixed [`REDUCTION_BLOCKS`], or one block per thread for larger teams.
pub fn reduction_block_count(threads: usize) -> usize {
    REDUCTION_BLOCKS.max(threads)
}

/// The contiguous run of reduction blocks owned by each thread: entry `t`
/// is the half-open block range `[first, end)` that thread `t` executes in
/// [`Runtime::parallel_reduce`]. This is the single source of truth for
/// reduction ownership — the runtime executes it and the static analyzer
/// (the `lint` crate) replays it — so the two can never disagree about
/// which thread runs which iterations.
pub fn reduction_block_ownership(threads: usize) -> Vec<(usize, usize)> {
    assert!(threads > 0);
    let blocks = reduction_block_count(threads);
    (0..threads)
        .map(|t| (t * blocks / threads, (t + 1) * blocks / threads))
        .collect()
}

/// Per-thread `(start, end)` iteration chunks for a reduction over `n`
/// iterations: [`Schedule::static_chunks`] over the fixed block partition,
/// regrouped by owning thread via [`reduction_block_ownership`].
///
/// # Panics
/// Panics on dynamic/guided schedules (reductions are static-only, as in
/// the NAS codes).
pub fn reduction_chunks(schedule: Schedule, n: usize, threads: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(
        !schedule.is_dynamic(),
        "reductions are supported on static schedules (as in the NAS codes)"
    );
    let parts = schedule.static_chunks(n, reduction_block_count(threads));
    reduction_block_ownership(threads)
        .into_iter()
        .map(|(b0, b1)| parts[b0..b1].iter().flatten().copied().collect())
        .collect()
}

/// The OpenMP-like runtime: a machine plus a thread team plus the kernel
/// migration engine hook.
pub struct Runtime {
    machine: Machine,
    kernel: KernelMigrationEngine,
    threads: usize,
    regions: u64,
    /// CPU executing each thread. Identity by default; the OS scheduler may
    /// remap it (multiprogramming disturbance, the scenario the paper
    /// defers to its companion work on multiprogrammed machines).
    cpu_of_thread: Vec<CpuId>,
    /// A rebinding staged by the scheduler while the program is running,
    /// applied at the next region-boundary yield point (see
    /// [`Runtime::request_rebind`]).
    pending_binding: Option<Vec<CpuId>>,
    /// Rebindings applied at yield points (deferred `request_rebind`s only;
    /// immediate `rebind_threads`/`resize_team` calls are not counted).
    rebinds_applied: u64,
    /// Phase fast path: memoized bulk replay of statically proven regions.
    /// `None` until a proof sequence is installed.
    fastpath: Option<FastpathState>,
}

/// Installed proof sequence plus the memo engine.
///
/// `proofs[k]` covers the `k`-th region executed since the last cursor reset
/// (the harness resets the cursor at every iteration boundary); `None`
/// entries mean "this region has no proof, run it exactly". The engine and
/// its memo pools survive re-installation so cold-start recordings seed the
/// timed iterations.
struct FastpathState {
    engine: FastpathEngine,
    proofs: Vec<Option<PhaseProof>>,
    cursor: usize,
}

/// What the fast path decided for the region in flight.
// One `FpMode` lives on the stack per region; boxing the token here would
// just re-box what `FastpathOutcome::Record` already handed over by value.
#[allow(clippy::large_enum_variant)]
enum FpMode {
    /// No proof, precondition failure, or fast path not installed.
    Off,
    /// Memo applied; the body runs with the machine suppressed.
    Replay,
    /// Recording; the token goes back to the engine before `end_region`.
    Record(RecordToken),
}

impl Runtime {
    /// A runtime using all CPUs of the machine, kernel migration off
    /// (the IRIX default).
    pub fn new(machine: Machine) -> Self {
        let threads = machine.cpus();
        Self::with_threads(machine, threads)
    }

    /// A runtime with an explicit team size (`OMP_NUM_THREADS`).
    pub fn with_threads(machine: Machine, threads: usize) -> Self {
        assert!(
            threads >= 1 && threads <= machine.cpus(),
            "team size {threads} out of range"
        );
        Self {
            machine,
            kernel: KernelMigrationEngine::disabled(),
            threads,
            regions: 0,
            cpu_of_thread: (0..threads).collect(),
            pending_binding: None,
            rebinds_applied: 0,
            fastpath: None,
        }
    }

    /// Install a proof sequence for the phase fast path: `proofs[k]` covers
    /// the `k`-th region from now (or from the next
    /// [`Runtime::fastpath_reset_cursor`]). An existing engine — and its
    /// recorded memos — is kept, so re-installing a different sequence (e.g.
    /// cold-start proofs, then per-iteration proofs) reuses recordings of
    /// phases with the same label.
    pub fn install_fastpath(&mut self, proofs: Vec<Option<PhaseProof>>) {
        match self.fastpath.as_mut() {
            Some(fp) => {
                fp.proofs = proofs;
                fp.cursor = 0;
            }
            None => {
                self.fastpath = Some(FastpathState {
                    engine: FastpathEngine::new(),
                    proofs,
                    cursor: 0,
                })
            }
        }
    }

    /// Remove the fast path entirely (memos included).
    pub fn uninstall_fastpath(&mut self) {
        self.fastpath = None;
    }

    /// Re-align the proof cursor with the next region (iteration boundary).
    pub fn fastpath_reset_cursor(&mut self) {
        if let Some(fp) = self.fastpath.as_mut() {
            fp.cursor = 0;
        }
    }

    /// Whether a proof sequence is installed.
    pub fn fastpath_installed(&self) -> bool {
        self.fastpath.is_some()
    }

    /// Fast-path engine counters, if installed.
    pub fn fastpath_stats(&self) -> Option<FastpathStats> {
        self.fastpath.as_ref().map(|fp| fp.engine.stats())
    }

    /// Consult the fast path for the region just opened. Advances the proof
    /// cursor for *every* region while a sequence is installed (even `None`
    /// proofs and rejected ones) so proofs stay position-aligned.
    fn fastpath_begin(&mut self, serial: bool) -> FpMode {
        let Some(fp) = self.fastpath.as_mut() else {
            return FpMode::Off;
        };
        let FastpathState {
            engine,
            proofs,
            cursor,
        } = fp;
        if *cursor >= proofs.len() {
            return FpMode::Off;
        }
        let idx = *cursor;
        *cursor += 1;
        let Some(proof) = proofs[idx].as_ref() else {
            return FpMode::Off;
        };
        let binding: &[CpuId] = if serial {
            &self.cpu_of_thread[..1]
        } else {
            &self.cpu_of_thread
        };
        match engine.begin_region_fastpath(&mut self.machine, proof, binding) {
            FastpathOutcome::Replay => {
                self.machine.set_fastpath_suppressed(true);
                FpMode::Replay
            }
            FastpathOutcome::Record(token) => {
                // Partial replay: the CPUs whose memos were applied sit the
                // region out; the rest run the exact path and re-record.
                for &cpu in token.replayed_cpus() {
                    self.machine.set_fastpath_suppressed_cpu(cpu, true);
                }
                FpMode::Record(token)
            }
            FastpathOutcome::Skip => FpMode::Off,
        }
    }

    /// Close out the fast path for the region in flight. Must run after the
    /// region body but *before* `end_region` (recording diffs the still-open
    /// region state).
    fn fastpath_end(&mut self, mode: FpMode) {
        match mode {
            FpMode::Off => {}
            FpMode::Replay => self.machine.set_fastpath_suppressed(false),
            FpMode::Record(token) => {
                for &cpu in token.replayed_cpus() {
                    self.machine.set_fastpath_suppressed_cpu(cpu, false);
                }
                let Some(fp) = self.fastpath.as_mut() else {
                    return;
                };
                let FastpathState {
                    engine,
                    proofs,
                    cursor,
                } = fp;
                let proof = proofs[*cursor - 1]
                    .as_ref()
                    .expect("Record mode implies a proof at cursor - 1");
                engine.finish_record(&mut self.machine, proof, token);
            }
        }
    }

    /// Panic unless `binding` is a set of distinct, valid CPUs.
    fn validate_binding(&self, binding: &[CpuId]) {
        let mut seen = vec![false; self.machine.cpus()];
        for &cpu in binding {
            assert!(cpu < self.machine.cpus(), "cpu {cpu} out of range");
            assert!(!seen[cpu], "cpu {cpu} bound twice");
            seen[cpu] = true;
        }
    }

    /// Rebind the team's threads to CPUs — what the OS scheduler does to a
    /// multiprogrammed job. `perm[t]` is the CPU that thread `t` runs on
    /// from now on; it must be a permutation of distinct valid CPUs.
    /// Page placements tuned to the old binding become wrong, which is the
    /// disturbance the paper's footnote 3 sets aside ("unless the operating
    /// system intervenes and preempts or migrates threads").
    pub fn rebind_threads(&mut self, perm: &[CpuId]) {
        assert_eq!(perm.len(), self.threads, "one CPU per thread");
        self.validate_binding(perm);
        self.cpu_of_thread = perm.to_vec();
    }

    /// Shrink or grow the team to `binding.len()` threads bound to the given
    /// CPUs — the space-sharing scheduler's dynamic-partitioning move.
    /// Worksharing in subsequent constructs divides iterations among the new
    /// team; pages first-touched by the old team keep their homes (that
    /// mismatch is exactly the disturbance the multiprogramming experiments
    /// measure). Must be called between parallel constructs.
    pub fn resize_team(&mut self, binding: &[CpuId]) {
        assert!(
            !self.machine.in_region(),
            "resize_team inside a parallel region"
        );
        assert!(
            !binding.is_empty() && binding.len() <= self.machine.cpus(),
            "team size {} out of range",
            binding.len()
        );
        self.validate_binding(binding);
        self.threads = binding.len();
        self.cpu_of_thread = binding.to_vec();
        // A pending rebinding for the old team shape no longer applies.
        self.pending_binding = None;
        // Installed proofs were derived for the old team size; drop them.
        self.fastpath = None;
    }

    /// Stage a rebinding to be applied at the next region-boundary yield
    /// point (the start of the next parallel construct or serial section).
    /// This is the scheduler's preemption hook: a quantum can expire while
    /// an iteration is in flight, and the thread migration then takes effect
    /// at the next boundary rather than mid-region — the granularity at
    /// which IRIX actually stops a gang. Validated immediately; replaces any
    /// previously staged rebinding.
    pub fn request_rebind(&mut self, perm: &[CpuId]) {
        assert_eq!(perm.len(), self.threads, "one CPU per thread");
        self.validate_binding(perm);
        self.pending_binding = Some(perm.to_vec());
    }

    /// Apply a staged rebinding, if any. Called at every region-boundary
    /// yield point; also usable directly by a scheduler that has descheduled
    /// the job and wants the staged binding to land before the next quantum.
    pub fn apply_pending_rebind(&mut self) -> bool {
        match self.pending_binding.take() {
            Some(binding) => {
                self.cpu_of_thread = binding;
                self.rebinds_applied += 1;
                true
            }
            None => false,
        }
    }

    /// Rebindings applied at yield points so far.
    pub fn rebinds_applied(&self) -> u64 {
        self.rebinds_applied
    }

    /// Current CPU binding of a thread.
    pub fn cpu_of_thread(&self, tid: usize) -> CpuId {
        self.cpu_of_thread[tid]
    }

    /// The team's full CPU binding, indexed by thread id.
    pub fn binding(&self) -> &[CpuId] {
        &self.cpu_of_thread
    }

    /// Enable/replace the kernel migration engine (`DSM_MIGRATION=ON`).
    pub fn set_kernel_migration(&mut self, engine: KernelMigrationEngine) {
        self.kernel = engine;
    }

    /// The kernel migration engine.
    pub fn kernel_migration(&self) -> &KernelMigrationEngine {
        &self.kernel
    }

    /// Team size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The machine (e.g. to read the clock or statistics).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access for code that runs *between* regions — page
    /// migration engines, array allocation, placement installation.
    pub fn machine_mut(&mut self) -> &mut Machine {
        assert!(
            !self.machine.in_region(),
            "machine_mut inside a parallel region"
        );
        &mut self.machine
    }

    /// Consume the runtime, returning the machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// Parallel constructs executed so far.
    pub fn regions(&self) -> u64 {
        self.regions
    }

    /// Current simulated time, seconds.
    pub fn now_secs(&self) -> f64 {
        self.machine.clock().now_secs()
    }

    /// `PARALLEL DO`: run `body(par, i)` for every `i in 0..n`, divided
    /// among the team by `schedule`.
    pub fn parallel_for(
        &mut self,
        n: usize,
        schedule: Schedule,
        mut body: impl FnMut(&mut Par, usize),
    ) -> RegionSummary {
        self.apply_pending_rebind();
        let cpus = self.cpu_of_thread.clone();
        self.run_region(|machine, threads| {
            if schedule.is_dynamic() {
                Self::run_dynamic(machine, threads, &cpus, n, schedule, &mut body);
            } else {
                let parts = schedule.static_chunks(n, threads);
                for (tid, chunks) in parts.iter().enumerate() {
                    let mut par = Par {
                        machine,
                        cpu: cpus[tid],
                        tid,
                        team: threads,
                    };
                    for &(start, end) in chunks {
                        for i in start..end {
                            body(&mut par, i);
                        }
                    }
                }
            }
        })
    }

    /// `PARALLEL DO` with a `REDUCTION` clause: threads fold their
    /// iterations into private block accumulators starting from
    /// `identity`; accumulators are combined with `combine` at the join.
    ///
    /// The reduction is *deterministic across team sizes*: iterations are
    /// partitioned into a fixed number of blocks
    /// ([`REDUCTION_BLOCKS`], or the team size if larger) and the block
    /// partials are combined in block order, so a team of 8 and a team of
    /// 16 produce bit-identical results — and a run whose team is resized
    /// mid-flight (the multiprogramming scheduler shrinks and grows
    /// teams) still matches its fixed-size reference. With a 16-thread
    /// team this degenerates to exactly one block per thread, i.e. the
    /// classic per-thread `REDUCTION` combine order.
    pub fn parallel_reduce<T: Clone>(
        &mut self,
        n: usize,
        schedule: Schedule,
        identity: T,
        mut body: impl FnMut(&mut Par, usize, T) -> T,
        mut combine: impl FnMut(T, T) -> T,
    ) -> (T, RegionSummary) {
        self.apply_pending_rebind();
        let blocks = REDUCTION_BLOCKS.max(self.threads);
        let mut partials: Vec<Option<T>> = vec![None; blocks];
        let cpus = self.cpu_of_thread.clone();
        let summary = self.run_region(|machine, threads| {
            assert!(
                !schedule.is_dynamic(),
                "reductions are supported on static schedules (as in the NAS codes)"
            );
            let parts = schedule.static_chunks(n, blocks);
            let ownership = reduction_block_ownership(threads);
            for (tid, &cpu) in cpus.iter().enumerate().take(threads) {
                // Thread `tid` owns a contiguous run of blocks, so its
                // iteration range (and memory traffic) is identical to the
                // plain per-thread static schedule.
                let (b0, b1) = ownership[tid];
                let mut par = Par {
                    machine,
                    cpu,
                    tid,
                    team: threads,
                };
                for (b, chunks) in parts.iter().enumerate().take(b1).skip(b0) {
                    let mut acc = identity.clone();
                    for &(start, end) in chunks {
                        for i in start..end {
                            acc = body(&mut par, i, acc);
                        }
                    }
                    partials[b] = Some(acc);
                }
            }
        });
        let mut result = identity;
        for p in partials.into_iter().flatten() {
            result = combine(result, p);
        }
        (result, summary)
    }

    /// `SECTIONS`: disjoint blocks of code assigned to threads round-robin.
    pub fn parallel_sections(
        &mut self,
        sections: &mut [&mut dyn FnMut(&mut Par)],
    ) -> RegionSummary {
        self.apply_pending_rebind();
        let cpus = self.cpu_of_thread.clone();
        self.run_region(|machine, threads| {
            for (s, section) in sections.iter_mut().enumerate() {
                let tid = s % threads;
                let mut par = Par {
                    machine,
                    cpu: cpus[tid],
                    tid,
                    team: threads,
                };
                section(&mut par);
            }
        })
    }

    /// Sequential program text between parallel constructs, executed by the
    /// master thread (CPU 0) with full simulation of its accesses.
    pub fn serial<R>(&mut self, body: impl FnOnce(&mut Par) -> R) -> R {
        let _hp = hostprof::span_hot("omp.serial");
        self.apply_pending_rebind();
        let before = self
            .machine
            .trace_mut()
            .is_active()
            .then(|| self.machine.aggregate_cpu_stats());
        self.machine.begin_region();
        let mode = self.fastpath_begin(true);
        let cpu = self.cpu_of_thread[0];
        let mut par = Par {
            machine: &mut self.machine,
            cpu,
            tid: 0,
            team: 1,
        };
        let r = body(&mut par);
        self.fastpath_end(mode);
        let timing = self.machine.end_region();
        if let Some(before) = before {
            let after = self.machine.aggregate_cpu_stats();
            self.emit_region_profile(&before, &after, timing.wall_ns);
        }
        self.regions += 1;
        r
    }

    /// Emit the [`obs::EventKind::RegionProfile`] record of the region that
    /// just closed (the machine's region counter has already advanced past
    /// it). Only called with tracing active.
    fn emit_region_profile(
        &mut self,
        before: &ccnuma::CpuStats,
        after: &ccnuma::CpuStats,
        wall_ns: f64,
    ) {
        let region = self.machine.stats().regions - 1;
        let local = after.mem_local - before.mem_local;
        let remote = after.mem_remote - before.mem_remote;
        let stall_ns = after.stall_ns - before.stall_ns;
        self.machine.trace_event(|| obs::EventKind::RegionProfile {
            region,
            wall_ns,
            local,
            remote,
            stall_ns,
        });
    }

    fn run_region(&mut self, work: impl FnOnce(&mut Machine, usize)) -> RegionSummary {
        let _hp = hostprof::span_hot("omp.region");
        // Snapshot only when tracing: the per-region remote-fraction
        // histogram needs a stats delta across the region.
        let before = self
            .machine
            .trace_mut()
            .is_active()
            .then(|| self.machine.aggregate_cpu_stats());
        self.machine.begin_region();
        let mode = self.fastpath_begin(false);
        work(&mut self.machine, self.threads);
        self.fastpath_end(mode);
        let timing = self.machine.end_region();
        if let Some(before) = before {
            let after = self.machine.aggregate_cpu_stats();
            let local = after.mem_local - before.mem_local;
            let remote = after.mem_remote - before.mem_remote;
            let total = local + remote;
            let fraction = if total == 0 {
                0.0
            } else {
                remote as f64 / total as f64
            };
            let trace = self.machine.trace_mut();
            trace.observe("region_remote_permille", (fraction * 1000.0) as u64);
            trace.observe("region_wall_ns", timing.wall_ns as u64);
            trace.set_gauge("last_region_remote_fraction", fraction);
            self.emit_region_profile(&before, &after, timing.wall_ns);
        }
        let migrations = self.kernel.scan(&mut self.machine);
        self.regions += 1;
        RegionSummary::from_timing(&timing, migrations)
    }

    /// Deterministic simulation of dynamic/guided dispatch: the next chunk
    /// always goes to the thread with the least accumulated virtual time.
    fn run_dynamic(
        machine: &mut Machine,
        threads: usize,
        cpus: &[CpuId],
        n: usize,
        schedule: Schedule,
        body: &mut impl FnMut(&mut Par, usize),
    ) {
        let mut next = 0usize;
        while next < n {
            let len = schedule.next_chunk_len(n - next, threads);
            // argmin over virtual times; ties break toward lower thread id.
            let tid = (0..threads)
                .min_by(|&a, &b| {
                    machine
                        .region_cpu_ns(cpus[a])
                        .partial_cmp(&machine.region_cpu_ns(cpus[b]))
                        .expect("virtual times are finite")
                        .then(a.cmp(&b))
                })
                .expect("team is non-empty");
            let mut par = Par {
                machine,
                cpu: cpus[tid],
                tid,
                team: threads,
            };
            for i in next..next + len {
                body(&mut par, i);
            }
            next += len;
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .field("regions", &self.regions)
            .field("kernel_migration", &self.kernel.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::MachineConfig;

    fn runtime() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::tiny_test()))
    }

    #[test]
    fn parallel_for_visits_every_iteration_once() {
        let mut rt = runtime();
        let mut seen = vec![0u32; 100];
        rt.parallel_for(100, Schedule::Static, |_, i| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn static_blocks_pin_iterations_to_threads() {
        let mut rt = runtime(); // 8 CPUs
        let mut owner = vec![usize::MAX; 80];
        rt.parallel_for(80, Schedule::Static, |par, i| owner[i] = par.tid);
        // Blocked: first 10 iterations on thread 0, etc.
        assert!(owner[..10].iter().all(|&t| t == 0));
        assert!(owner[70..].iter().all(|&t| t == 7));
    }

    #[test]
    fn first_touch_distribution_through_parallel_for() {
        let mut rt = runtime();
        let n_per_page = ccnuma::PAGE_SIZE as usize / 8;
        let n = 8 * n_per_page; // 8 pages over 8 threads
        let a = SimArray::new(rt.machine_mut(), "a", n, 0.0f64);
        rt.parallel_for(n, Schedule::Static, |par, i| {
            par.set(&a, i, i as f64);
        });
        // Thread t (= CPU t on tiny 4x2: node t/2) first touched page t.
        let (base, _) = a.vrange();
        for p in 0..8u64 {
            let vp = ccnuma::vpage_of(base) + p;
            let expect_node = (p as usize) / 2;
            assert_eq!(
                rt.machine().node_of_vpage(vp),
                Some(expect_node),
                "page {p}"
            );
        }
    }

    #[test]
    fn parallel_for_advances_clock() {
        let mut rt = runtime();
        let t0 = rt.machine().clock().now_ns();
        rt.parallel_for(10, Schedule::Static, |par, _| par.flops(100));
        assert!(rt.machine().clock().now_ns() > t0);
        assert_eq!(rt.regions(), 1);
    }

    #[test]
    fn wall_time_is_max_not_sum() {
        let mut rt = runtime();
        // 8 threads each compute 1000 flops (2 us): region wall should be
        // ~2 us, not ~16 us.
        let s = rt.parallel_for(8, Schedule::Static, |par, _| par.flops(1000));
        assert!(
            s.base_ns >= 2000.0 && s.base_ns < 4000.0,
            "base {}",
            s.base_ns
        );
    }

    #[test]
    fn dynamic_schedule_covers_and_balances() {
        let mut rt = runtime();
        let mut seen = vec![0u32; 64];
        let mut work_by_tid = vec![0u64; 8];
        rt.parallel_for(64, Schedule::Dynamic(1), |par, i| {
            seen[i] += 1;
            // Unbalanced work: iteration i costs (i+1) flops.
            par.flops((i as u64 + 1) * 100);
            work_by_tid[par.tid] += (i as u64 + 1) * 100;
        });
        assert!(seen.iter().all(|&c| c == 1));
        // Dynamic dispatch should involve every thread.
        assert!(work_by_tid.iter().all(|&w| w > 0), "{work_by_tid:?}");
        // And be much better balanced than worst-case (all on one thread).
        let max = *work_by_tid.iter().max().unwrap();
        let total: u64 = work_by_tid.iter().sum();
        assert!(max < total / 2, "max {max} total {total}");
    }

    #[test]
    fn guided_schedule_covers() {
        let mut rt = runtime();
        let mut seen = vec![0u32; 100];
        rt.parallel_for(100, Schedule::Guided(1), |_, i| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn reduction_sums_correctly() {
        let mut rt = runtime();
        let a = SimArray::from_fn(rt.machine_mut(), "a", 1000, |i| i as f64);
        let (sum, _) = rt.parallel_reduce(
            1000,
            Schedule::Static,
            0.0f64,
            |par, i, acc| acc + par.get(&a, i),
            |x, y| x + y,
        );
        assert_eq!(sum, (0..1000).sum::<usize>() as f64);
    }

    #[test]
    fn reduction_ownership_covers_blocks_once() {
        for threads in 1..=20 {
            let blocks = reduction_block_count(threads);
            let ranges = reduction_block_ownership(threads);
            assert_eq!(ranges.len(), threads);
            let mut next = 0;
            for &(b0, b1) in &ranges {
                assert_eq!(b0, next, "contiguous ownership");
                assert!(b1 >= b0);
                next = b1;
            }
            assert_eq!(next, blocks);
        }
    }

    #[test]
    fn reduction_chunks_match_executed_iterations() {
        let mut rt = runtime(); // 8 threads
        let n = 100;
        let mut owner = vec![usize::MAX; n];
        rt.parallel_reduce(
            n,
            Schedule::Static,
            (),
            |par, i, ()| owner[i] = par.tid,
            |(), ()| (),
        );
        let chunks = reduction_chunks(Schedule::Static, n, 8);
        for (tid, chunks) in chunks.iter().enumerate() {
            for &(start, end) in chunks {
                for (i, &t) in owner.iter().enumerate().take(end).skip(start) {
                    assert_eq!(t, tid, "iteration {i}");
                }
            }
        }
        assert!(owner.iter().all(|&t| t != usize::MAX));
    }

    #[test]
    fn sections_run_all_blocks() {
        let mut rt = runtime();
        let mut flags = [false; 3];
        {
            let (f0, rest) = flags.split_at_mut(1);
            let (f1, f2) = rest.split_at_mut(1);
            let mut s0 = |_: &mut Par<'_>| f0[0] = true;
            let mut s1 = |_: &mut Par<'_>| f1[0] = true;
            let mut s2 = |_: &mut Par<'_>| f2[0] = true;
            rt.parallel_sections(&mut [&mut s0, &mut s1, &mut s2]);
        }
        assert_eq!(flags, [true; 3]);
    }

    #[test]
    fn serial_runs_on_master() {
        let mut rt = runtime();
        let tid = rt.serial(|par| par.tid);
        assert_eq!(tid, 0);
        assert_eq!(rt.regions(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rt = runtime();
            let a = SimArray::from_fn(rt.machine_mut(), "a", 4096, |i| i as f64);
            rt.parallel_for(4096, Schedule::Static, |par, i| {
                let v = par.get(&a, i);
                par.set(&a, i, v * 2.0);
                par.flops(1);
            });
            rt.machine().clock().now_ns()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rebinding_moves_first_touch_targets() {
        let mut rt = runtime(); // tiny 4x2 machine, 8 CPUs
                                // Swap the two halves of the team.
        rt.rebind_threads(&[4, 5, 6, 7, 0, 1, 2, 3]);
        assert_eq!(rt.cpu_of_thread(0), 4);
        let n_per_page = ccnuma::PAGE_SIZE as usize / 8;
        let a = SimArray::new(rt.machine_mut(), "a", 8 * n_per_page, 0.0f64);
        rt.parallel_for(8 * n_per_page, Schedule::Static, |par, i| {
            par.set(&a, i, 1.0);
        });
        // Thread 0 (pages 0..) now runs on CPU 4 = node 2: first touch
        // follows the binding, not the thread id.
        let (base, _) = a.vrange();
        assert_eq!(rt.machine().node_of_vpage(ccnuma::vpage_of(base)), Some(2));
    }

    #[test]
    fn resize_team_shrinks_and_grows() {
        let mut rt = runtime(); // 8 CPUs
        rt.resize_team(&[0, 1, 2, 3]);
        assert_eq!(rt.threads(), 4);
        let mut owner = vec![usize::MAX; 40];
        rt.parallel_for(40, Schedule::Static, |par, i| owner[i] = par.tid);
        assert!(owner.iter().all(|&t| t < 4));
        rt.resize_team(&[4, 5, 6, 7, 0, 1]);
        assert_eq!(rt.threads(), 6);
        assert_eq!(rt.cpu_of_thread(0), 4);
        assert_eq!(rt.binding(), &[4, 5, 6, 7, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn resize_team_rejects_duplicates() {
        let mut rt = runtime();
        rt.resize_team(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "team size 0 out of range")]
    fn resize_team_rejects_empty() {
        let mut rt = runtime();
        rt.resize_team(&[]);
    }

    #[test]
    fn requested_rebind_applies_at_next_region_boundary() {
        let mut rt = runtime();
        rt.request_rebind(&[4, 5, 6, 7, 0, 1, 2, 3]);
        // Staged, not yet applied.
        assert_eq!(rt.cpu_of_thread(0), 0);
        assert_eq!(rt.rebinds_applied(), 0);
        let mut cpu_of_t0 = usize::MAX;
        rt.parallel_for(8, Schedule::Static, |par, _| {
            if par.tid == 0 {
                cpu_of_t0 = par.cpu;
            }
        });
        // The region itself already ran on the new binding.
        assert_eq!(cpu_of_t0, 4);
        assert_eq!(rt.cpu_of_thread(0), 4);
        assert_eq!(rt.rebinds_applied(), 1);
    }

    #[test]
    fn resize_team_clears_stale_pending_rebind() {
        let mut rt = runtime();
        rt.request_rebind(&[4, 5, 6, 7, 0, 1, 2, 3]);
        rt.resize_team(&[2, 3]);
        // The stale 8-thread rebinding must not land on the 2-thread team.
        rt.parallel_for(4, Schedule::Static, |_, _| {});
        assert_eq!(rt.binding(), &[2, 3]);
        assert_eq!(rt.rebinds_applied(), 0);
    }

    #[test]
    #[should_panic(expected = "one CPU per thread")]
    fn request_rebind_checks_arity() {
        let mut rt = runtime();
        rt.request_rebind(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_binding_panics() {
        let mut rt = runtime();
        rt.rebind_threads(&[0, 0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "one CPU per thread")]
    fn wrong_binding_arity_panics() {
        let mut rt = runtime();
        rt.rebind_threads(&[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "team size")]
    fn oversized_team_panics() {
        let m = Machine::new(MachineConfig::tiny_test());
        let _ = Runtime::with_threads(m, 9);
    }
}
