//! Worksharing schedules: how a `parallel_for` iteration space is divided
//! among the threads of a team, mirroring OpenMP's `SCHEDULE` clause.

/// An OpenMP `SCHEDULE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `SCHEDULE(STATIC)`: one contiguous block per thread (the default for
    /// the NAS codes, and what their first-touch tuning assumes).
    Static,
    /// `SCHEDULE(STATIC, chunk)`: fixed-size chunks dealt round-robin.
    StaticChunk(usize),
    /// `SCHEDULE(DYNAMIC, chunk)`: chunks handed to whichever thread is
    /// free next.
    Dynamic(usize),
    /// `SCHEDULE(GUIDED)`: exponentially shrinking chunks, handed to
    /// whichever thread is free next, never smaller than the given minimum.
    Guided(usize),
}

impl Schedule {
    /// Compute the static partition of `n` iterations over `threads`
    /// threads: for each thread, the list of `(start, end)` chunks it owns.
    /// Only valid for the static flavours; dynamic/guided assignment depends
    /// on execution timing and is done by the runtime's event loop.
    pub fn static_chunks(&self, n: usize, threads: usize) -> Vec<Vec<(usize, usize)>> {
        assert!(threads > 0);
        let mut per_thread = vec![Vec::new(); threads];
        match *self {
            Schedule::Static => {
                // Blocked: thread t gets [t*ceil .. min((t+1)*ceil, n)).
                let block = n.div_ceil(threads).max(1);
                for (t, chunks) in per_thread.iter_mut().enumerate() {
                    let start = (t * block).min(n);
                    let end = ((t + 1) * block).min(n);
                    if start < end {
                        chunks.push((start, end));
                    }
                }
            }
            Schedule::StaticChunk(chunk) => {
                let chunk = chunk.max(1);
                let mut start = 0;
                let mut t = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    per_thread[t].push((start, end));
                    start = end;
                    t = (t + 1) % threads;
                }
            }
            Schedule::Dynamic(_) | Schedule::Guided(_) => {
                panic!("dynamic/guided schedules are assigned by the runtime event loop")
            }
        }
        per_thread
    }

    /// Successive chunk sizes for the dynamic flavours: given `remaining`
    /// iterations and team size, how many iterations the next dispatch grabs.
    pub fn next_chunk_len(&self, remaining: usize, threads: usize) -> usize {
        match *self {
            Schedule::Dynamic(chunk) => chunk.max(1).min(remaining),
            Schedule::Guided(min_chunk) => (remaining.div_ceil(threads.max(1)))
                .max(min_chunk.max(1))
                .min(remaining),
            Schedule::Static | Schedule::StaticChunk(_) => {
                panic!("static schedules are precomputed, not dispatched")
            }
        }
    }

    /// Whether this schedule is dispatched dynamically.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Schedule::Dynamic(_) | Schedule::Guided(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten(parts: &[Vec<(usize, usize)>]) -> Vec<usize> {
        let mut all: Vec<usize> = parts
            .iter()
            .flat_map(|chunks| chunks.iter().flat_map(|&(s, e)| s..e))
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn static_covers_exactly_once() {
        for n in [0, 1, 7, 16, 17, 100] {
            for threads in [1, 2, 3, 16] {
                let parts = Schedule::Static.static_chunks(n, threads);
                assert_eq!(
                    flatten(&parts),
                    (0..n).collect::<Vec<_>>(),
                    "n={n} t={threads}"
                );
            }
        }
    }

    #[test]
    fn static_is_blocked_and_balanced() {
        let parts = Schedule::Static.static_chunks(16, 4);
        assert_eq!(parts[0], vec![(0, 4)]);
        assert_eq!(parts[3], vec![(12, 16)]);
    }

    #[test]
    fn static_chunk_round_robins() {
        let parts = Schedule::StaticChunk(2).static_chunks(10, 2);
        assert_eq!(parts[0], vec![(0, 2), (4, 6), (8, 10)]);
        assert_eq!(parts[1], vec![(2, 4), (6, 8)]);
        assert_eq!(flatten(&parts), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_chunk_len() {
        let s = Schedule::Dynamic(4);
        assert_eq!(s.next_chunk_len(100, 8), 4);
        assert_eq!(s.next_chunk_len(3, 8), 3);
    }

    #[test]
    fn guided_shrinks_but_respects_min() {
        let s = Schedule::Guided(2);
        assert_eq!(s.next_chunk_len(64, 8), 8);
        assert_eq!(s.next_chunk_len(8, 8), 2);
        assert_eq!(s.next_chunk_len(3, 8), 2);
        assert_eq!(s.next_chunk_len(1, 8), 1);
    }

    #[test]
    #[should_panic(expected = "event loop")]
    fn dynamic_static_chunks_panics() {
        Schedule::Dynamic(1).static_chunks(4, 2);
    }
}
