//! Ad-hoc probe: wall-time effect of the phase fast path per benchmark.
//! Usage: mgprobe [tiny|small|medium] [bench...]

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .and_then(|s| nas::Scale::parse(s))
        .unwrap_or(nas::Scale::Tiny);
    let benches: Vec<nas::BenchName> = if args.len() > 1 {
        args[1..]
            .iter()
            .filter_map(|s| xp::trace::parse_bench(s))
            .collect()
    } else {
        vec![nas::BenchName::Cg, nas::BenchName::Mg]
    };
    let cfg = xp::bench_gate::gate_config();
    for bench in benches {
        let t = Instant::now();
        let slow = xp::run_one_fastpath(bench, scale, &cfg, false);
        let w_off = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let (fast, stats) = run_with_stats(bench, scale, &cfg);
        let w_on = t.elapsed().as_secs_f64();
        let w_floor = run_floor(bench, scale, &cfg);
        let warm_off = run_warm(bench, scale, &cfg, false);
        let warm_on = run_warm(bench, scale, &cfg, true);
        println!(
            "{} {}: off {:.4}s on {:.4}s speedup {:.2}x floor {:.4}s sim {:.6} identical={} {:?}",
            bench.label(),
            scale.label(),
            w_off,
            w_on,
            w_off / w_on,
            w_floor,
            fast.total_secs,
            slow.to_cache_json().to_string() == fast.to_cache_json().to_string(),
            stats,
        );
        println!(
            "{} {}: warm_off {:.4}s warm_on {:.4}s warm_speedup {:.2}x",
            bench.label(),
            scale.label(),
            warm_off,
            warm_on,
            warm_off / warm_on,
        );
    }
}

/// Warm-iteration wall time: cold start plus the first step run untimed (for
/// the fast path that is where the memos get recorded), then the remaining
/// steps timed. Isolates the steady-state iteration cost from init and
/// first-sight recording.
fn run_warm(bench: nas::BenchName, scale: nas::Scale, cfg: &nas::RunConfig, fast: bool) -> f64 {
    let mut run = match bench {
        nas::BenchName::Bt => nas::BenchRun::new(|rt| nas::bt::Bt::new(rt, scale), cfg),
        nas::BenchName::Sp => nas::BenchRun::new(|rt| nas::sp::Sp::new(rt, scale), cfg),
        nas::BenchName::Cg => nas::BenchRun::new(|rt| nas::cg::Cg::new(rt, scale), cfg),
        nas::BenchName::Mg => nas::BenchRun::new(|rt| nas::mg::Mg::new(rt, scale), cfg),
        nas::BenchName::Ft => nas::BenchRun::new(|rt| nas::ft::Ft::new(rt, scale), cfg),
    };
    run.set_fastpath(fast);
    run.step();
    let t = Instant::now();
    while !run.is_done() {
        run.step();
    }
    t.elapsed().as_secs_f64()
}

#[allow(dead_code)]
fn run_floor(bench: nas::BenchName, scale: nas::Scale, cfg: &nas::RunConfig) -> f64 {
    // Data-plane floor: machine permanently suppressed — pure numerics plus
    // the per-access call overhead. Simulated results are meaningless.
    let mut run = match bench {
        nas::BenchName::Bt => nas::BenchRun::new(|rt| nas::bt::Bt::new(rt, scale), cfg),
        nas::BenchName::Sp => nas::BenchRun::new(|rt| nas::sp::Sp::new(rt, scale), cfg),
        nas::BenchName::Cg => nas::BenchRun::new(|rt| nas::cg::Cg::new(rt, scale), cfg),
        nas::BenchName::Mg => nas::BenchRun::new(|rt| nas::mg::Mg::new(rt, scale), cfg),
        nas::BenchName::Ft => nas::BenchRun::new(|rt| nas::ft::Ft::new(rt, scale), cfg),
    };
    run.set_fastpath(false);
    run.step(); // cold start + first iteration on the real machine
    let t = Instant::now();
    run.runtime_mut()
        .machine_mut()
        .set_fastpath_suppressed(true);
    while !run.is_done() {
        run.step();
    }
    t.elapsed().as_secs_f64()
}

fn run_with_stats(
    bench: nas::BenchName,
    scale: nas::Scale,
    cfg: &nas::RunConfig,
) -> (nas::RunResult, Option<ccnuma::FastpathStats>) {
    let mut run = match bench {
        nas::BenchName::Bt => nas::BenchRun::new(|rt| nas::bt::Bt::new(rt, scale), cfg),
        nas::BenchName::Sp => nas::BenchRun::new(|rt| nas::sp::Sp::new(rt, scale), cfg),
        nas::BenchName::Cg => nas::BenchRun::new(|rt| nas::cg::Cg::new(rt, scale), cfg),
        nas::BenchName::Mg => nas::BenchRun::new(|rt| nas::mg::Mg::new(rt, scale), cfg),
        nas::BenchName::Ft => nas::BenchRun::new(|rt| nas::ft::Ft::new(rt, scale), cfg),
    };
    run.set_fastpath(true);
    while !run.is_done() {
        run.step();
    }
    let stats = run.fastpath_stats();
    (run.finish(), stats)
}
