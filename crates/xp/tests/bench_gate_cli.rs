//! Exit-code contract of `xp bench` as CI consumes it: `--record` and a
//! clean `--check` exit 0, and a check against a baseline that makes HEAD
//! look slower than the threshold exits 1.

use std::path::{Path, PathBuf};
use std::process::Command;
use xp::bench_gate::GateRecord;

fn xp_cmd(history: &Path, out: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xp"))
        .arg("bench")
        .args(args)
        .args(["--bench", "cg", "--scale", "tiny"])
        .arg("--history")
        .arg(history)
        .arg("--out")
        .arg(out)
        .output()
        .expect("xp binary runs")
}

#[test]
fn bench_gate_exit_codes_follow_the_check_outcome() {
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bench_gate_cli");
    let _ = std::fs::remove_dir_all(&tmp);
    let history = tmp.join("history");
    let out = tmp.join("out");

    // Record a baseline: exit 0, both gate files exist.
    let recorded = xp_cmd(&history, &out, &["--record"]);
    assert!(
        recorded.status.success(),
        "record failed:\n{}",
        String::from_utf8_lossy(&recorded.stderr)
    );
    assert!(history.join("baseline.json").is_file());
    assert!(history.join("history.jsonl").is_file());

    // An immediate check against that baseline is clean: exit 0.
    let clean = xp_cmd(&history, &out, &["--check"]);
    assert!(
        clean.status.success(),
        "clean check failed:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    assert!(String::from_utf8_lossy(&clean.stdout).contains("| ok |"));

    // Shrink the recorded simulated seconds by 20% so HEAD appears ~25%
    // slower: the default 5% gate must trip and the process must exit 1.
    let baseline_path = history.join("baseline.json");
    let mut patched = GateRecord::load(&baseline_path).unwrap();
    patched.entries[0].sim_secs *= 0.8;
    patched.save(&baseline_path).unwrap();
    let tripped = xp_cmd(&history, &out, &["--check"]);
    assert_eq!(
        tripped.status.code(),
        Some(1),
        "regressed check must exit 1:\n{}",
        String::from_utf8_lossy(&tripped.stdout)
    );
    let stdout = String::from_utf8_lossy(&tripped.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    let _ = std::fs::remove_dir_all(&tmp);
}
