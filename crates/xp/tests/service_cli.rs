//! End-to-end contract of the result service as CI consumes it: the
//! offline cache (`--cache`) makes repeat runs byte-identical and all-hit
//! at any worker count, damaged entries are recomputed rather than
//! served, `xp serve` computes shared cells once for concurrent clients,
//! and client mode degrades to plain offline execution when no server
//! answers.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `xp fig5 --scale tiny` (8 cells) with extra args; returns stderr.
fn fig5(out: &Path, args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(["fig5", "--scale", "tiny"])
        .args(args)
        .arg("--out")
        .arg(out)
        .output()
        .expect("xp binary runs");
    assert!(
        output.status.success(),
        "xp fig5 {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Run `xp client fig5 --scale tiny --addr ADDR`; returns stderr.
fn client_fig5(out: &Path, addr: &str) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(["client", "fig5", "--scale", "tiny", "--addr", addr])
        .arg("--out")
        .arg(out)
        .output()
        .expect("xp binary runs");
    assert!(
        output.status.success(),
        "xp client fig5 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn fig5_json(out: &Path) -> Vec<u8> {
    std::fs::read(out.join("fig5.json")).expect("fig5.json saved")
}

#[test]
fn cache_hits_are_byte_identical_across_jobs_counts_and_restarts() {
    let dir = tmp("svc_cache_stability");
    let cache = dir.join("cache");
    let cache_flags = ["--cache", "--cache-dir", cache.to_str().unwrap()];

    let cold = fig5(
        &dir.join("cold"),
        &[&cache_flags[..], &["--jobs", "1"]].concat(),
    );
    assert!(
        cold.contains("8 misses, 8 stores"),
        "cold run stats: {cold}"
    );

    // A different process AND a different worker count: every cell must
    // come from the cache and the saved report must not differ by a byte.
    let warm = fig5(
        &dir.join("warm"),
        &[&cache_flags[..], &["--jobs", "4"]].concat(),
    );
    assert!(warm.contains("8 hits, 0 misses"), "warm run stats: {warm}");
    assert_eq!(fig5_json(&dir.join("cold")), fig5_json(&dir.join("warm")));
}

#[test]
fn a_corrupted_entry_is_recomputed_never_served() {
    let dir = tmp("svc_cache_corrupt");
    let cache = dir.join("cache");
    let cache_flags = ["--cache", "--cache-dir", cache.to_str().unwrap()];

    fig5(&dir.join("cold"), &cache_flags);

    // Damage one entry's payload on disk.
    let entry = walk_entries(&cache)
        .into_iter()
        .next()
        .expect("cache has entries");
    let text = std::fs::read_to_string(&entry).unwrap();
    std::fs::write(&entry, text.replace("total_secs", "total_sexs")).unwrap();

    let warm = fig5(&dir.join("warm"), &cache_flags);
    assert!(
        warm.contains("7 hits, 1 misses, 1 stores, 1 corrupt"),
        "corrupt entry must surface as miss + recompute: {warm}"
    );
    assert_eq!(fig5_json(&dir.join("cold")), fig5_json(&dir.join("warm")));

    // The recompute restored the entry: next run is all hits again.
    let healed = fig5(&dir.join("healed"), &cache_flags);
    assert!(healed.contains("8 hits, 0 misses"), "{healed}");
}

fn walk_entries(cache: &Path) -> Vec<PathBuf> {
    let mut entries = Vec::new();
    for shard in std::fs::read_dir(cache).unwrap() {
        let shard = shard.unwrap().path();
        if shard.is_dir() {
            for f in std::fs::read_dir(shard).unwrap() {
                entries.push(f.unwrap().path());
            }
        }
    }
    entries.sort();
    entries
}

struct Serve {
    child: Child,
    addr: String,
}

impl Serve {
    fn start(cache: &Path) -> Serve {
        Serve::start_with(cache, &[])
    }

    fn start_with(cache: &Path, extra: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xp"))
            .args(["serve", "--port", "0", "--jobs", "2", "--cache-dir"])
            .arg(cache)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("xp serve starts");
        // The server announces its bound (ephemeral) address on stdout.
        let stdout = child.stdout.take().unwrap();
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap();
        let addr = line
            .trim()
            .strip_prefix("[svc] listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string();
        Serve { child, addr }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn concurrent_clients_share_computation_and_get_complete_results() {
    let dir = tmp("svc_concurrent_clients");
    let server = Serve::start(&dir.join("srvcache"));

    // Two clients with fully overlapping specs, racing. Each must get a
    // complete result set; the shared cells must be computed once.
    let spawn = |out: PathBuf, addr: String| std::thread::spawn(move || client_fig5(&out, &addr));
    let a = spawn(dir.join("a"), server.addr.clone());
    let b = spawn(dir.join("b"), server.addr.clone());
    let err_a = a.join().unwrap();
    let err_b = b.join().unwrap();

    assert_eq!(fig5_json(&dir.join("a")), fig5_json(&dir.join("b")));
    let computed = count(&err_a, "computed") + count(&err_b, "computed");
    let joined = count(&err_a, "joined") + count(&err_b, "joined");
    let cached = count(&err_a, "cached") + count(&err_b, "cached");
    assert_eq!(
        computed, 8,
        "shared cells computed exactly once\n{err_a}\n{err_b}"
    );
    assert_eq!(computed + joined + cached, 16, "\n{err_a}\n{err_b}");

    // A third, fresh client is served entirely from the cache.
    let warm = client_fig5(&dir.join("c"), &server.addr);
    assert_eq!(count(&warm, "cached"), 8, "{warm}");
    assert_eq!(fig5_json(&dir.join("a")), fig5_json(&dir.join("c")));
}

/// Pull `N <what>` out of the `[svc] ADDR: T cells — H cached, C computed,
/// J joined` summary line.
fn count(stderr: &str, what: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("[svc]") && l.contains("cells —"))
        .unwrap_or_else(|| panic!("no [svc] summary line in:\n{stderr}"));
    line.split([',', '—'])
        .find_map(|part| {
            let part = part.trim();
            part.strip_suffix(what)
                .and_then(|n| n.trim().parse::<u64>().ok())
        })
        .unwrap_or_else(|| panic!("no '{what}' count in: {line}"))
}

/// Run the xp binary with args; panic on failure; return (stdout, stderr).
fn xp_run(args: &[&str]) -> (String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(args)
        .output()
        .expect("xp binary runs");
    assert!(
        output.status.success(),
        "xp {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// The whole telemetry surface over one live server: a cold + warm sweep
/// through the client, then the `metrics`/`log` ops, `xp top --once`,
/// `xp client stats --json`, and — after a graceful shutdown — the span
/// export with one reconstructible trace per request. Saved result JSON
/// must stay byte-identical to the uninstrumented offline run throughout.
#[test]
fn telemetry_sees_a_warm_sweep_and_spans_reconstruct_requests() {
    let dir = tmp("svc_telemetry");
    let spans = dir.join("spans");
    let server = Serve::start_with(&dir.join("srvcache"), &["--spans", spans.to_str().unwrap()]);

    // Offline reference first: instrumentation must not leak into results.
    fig5(&dir.join("offline"), &[]);
    let cold = client_fig5(&dir.join("cold"), &server.addr);
    assert_eq!(count(&cold, "computed"), 8, "{cold}");
    let warm = client_fig5(&dir.join("warm"), &server.addr);
    assert_eq!(count(&warm, "cached"), 8, "{warm}");
    assert_eq!(
        fig5_json(&dir.join("offline")),
        fig5_json(&dir.join("cold"))
    );
    assert_eq!(
        fig5_json(&dir.join("offline")),
        fig5_json(&dir.join("warm"))
    );

    // The metrics op: the cache-hit counter equals the warm sweep's cell
    // count, and both exposition formats carry the same numbers.
    let client = svc::Client::new(&server.addr, xp::spec::CODE_VERSION);
    let m = client.metrics(false).expect("metrics op answers");
    let counters = &m["counters"];
    assert_eq!(counters["svc.cache.hits"].as_u64(), Some(8), "{m}");
    assert_eq!(counters["svc.cells.hit"].as_u64(), Some(8));
    assert_eq!(counters["svc.cells.computed"].as_u64(), Some(8));
    assert_eq!(counters["svc.requests.run.ok"].as_u64(), Some(2));
    assert!(m["histograms"]["svc.compute_us"]["count"].as_u64() == Some(8));
    let p = client.metrics(true).expect("prometheus metrics answer");
    let text = p["text"].as_str().unwrap();
    assert!(text.contains("svc_cache_hits 8\n"), "{text}");
    assert!(text.contains("# TYPE svc_request_us histogram"), "{text}");

    // The log op: both run requests, each with a propagated trace id.
    let log = client.log_tail(50).expect("log op answers");
    let runs: Vec<&obs::json::Value> = log["records"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|r| r["op"].as_str() == Some("run"))
        .collect();
    assert_eq!(runs.len(), 2, "{log}");
    let trace_ids: Vec<String> = runs
        .iter()
        .map(|r| r["trace_id"].as_str().unwrap().to_string())
        .collect();
    assert!(trace_ids.iter().all(|t| t.len() == 16), "{trace_ids:?}");

    // The ops console and the stats surfaces read the same numbers.
    let (top, _) = xp_run(&["top", "--once", "--addr", &server.addr]);
    assert!(top.contains("request rate"), "{top}");
    assert!(top.contains("hit ratio"), "{top}");
    assert!(top.contains("p50≥"), "{top}");
    assert!(top.contains("w0 ["), "{top}");
    let (top_json, _) = xp_run(&["top", "--json", "--addr", &server.addr]);
    let doc = obs::json::Value::parse(top_json.trim()).unwrap();
    assert_eq!(
        doc["metrics"]["counters"]["svc.cache.hits"].as_u64(),
        Some(8)
    );
    let (stats_json, _) = xp_run(&["client", "stats", "--json", "--addr", &server.addr]);
    let stats = obs::json::Value::parse(stats_json.trim()).unwrap();
    assert_eq!(stats["runs_failed"].as_u64(), Some(0), "{stats}");
    assert_eq!(stats["cache"]["hits"].as_u64(), Some(8));
    let (stats_text, _) = xp_run(&["client", "stats", "--addr", &server.addr]);
    assert!(stats_text.contains("8 hits"), "{stats_text}");

    // Graceful shutdown flushes the span export; each traced run request
    // appears as an `svc.run:<id>` tree with its worker-side
    // `svc.compute:<id>` subtree under the same propagated id.
    let mut server = server;
    client.shutdown().expect("shutdown acknowledged");
    let status = server.child.wait().expect("server exits");
    assert!(status.success());
    let chrome =
        std::fs::read_to_string(spans.join("svc-spans.chrome.json")).expect("chrome trace written");
    let jsonl = std::fs::read_to_string(spans.join("svc-spans.jsonl")).expect("span jsonl written");
    assert!(!jsonl.trim().is_empty());
    for id in &trace_ids {
        assert!(
            chrome.contains(&format!("svc.run:{id}")),
            "run span for {id}"
        );
    }
    // Only the cold request computed cells, so only its trace id reaches
    // the worker threads; the warm request's tree is lookups only.
    assert!(
        chrome.contains(&format!("svc.compute:{}", trace_ids[0])),
        "worker subtree carries the cold request's trace id"
    );
    assert!(
        !chrome.contains(&format!("svc.compute:{}", trace_ids[1])),
        "the all-hit request computes nothing"
    );
    assert!(chrome.contains("svc.cache_lookup"), "lookup spans present");
    // The export is valid JSON all the way down.
    obs::json::Value::parse(chrome.trim()).expect("chrome trace parses");
}

#[test]
fn history_reports_the_committed_log_in_both_renderings() {
    let history = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/history");
    let (json, _) = xp_run(&["history", "--json", "--history", history]);
    let v = obs::json::Value::parse(json.trim()).unwrap();
    assert_eq!(v["schema"].as_str(), Some("ddnomp-history v1"));
    assert!(v["runs"].as_u64().unwrap() >= 1);
    assert!(!v["series"].as_array().unwrap().is_empty());
    let (md, _) = xp_run(&["history", "--history", history]);
    assert!(md.contains("Perf history trends"), "{md}");
    assert!(md.contains("| Scale | Bench |"), "{md}");
}

#[test]
fn client_mode_without_a_server_falls_back_to_offline_results() {
    let dir = tmp("svc_client_fallback");
    fig5(&dir.join("offline"), &[]);
    // Port 1 never listens; the client must fall back and still succeed.
    let err = client_fig5(&dir.join("fallback"), "127.0.0.1:1");
    assert!(
        err.contains("falling back to local execution"),
        "fallback must be announced: {err}"
    );
    assert_eq!(
        fig5_json(&dir.join("offline")),
        fig5_json(&dir.join("fallback"))
    );
}
