//! Figure 6: the synthetic phase-scaling experiment on BT.
//!
//! The paper lengthens every phase 4x ("we enclosed each function that
//! comprises the main body ... in a sequential loop with 4 iterations")
//! without changing the access pattern, so the record–replay mechanism can
//! amortize its migration overhead over more computation. Paper shape: with
//! the scaled phases, ft-recrep beats ft-upmlib by ~5%.
//!
//! On the simulated machine the crossover needs more scaling than the
//! paper's 4x: a replayed migration's latency saving is divided across the
//! 16 CPUs that share the phase, while its cost (page copy + machine-wide
//! TLB shootdown) is serial on the critical path, and the scaled-down grids
//! carry less per-page traffic per phase than Class A. The experiment
//! therefore reports a phase-scale *sweep*, showing the monotone approach
//! to (and crossing of) break-even; EXPERIMENTS.md discusses the scale
//! analysis.

use crate::cells::CellPlan;
use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_bt_custom};
use nas::bt::BtConfig;
use nas::{EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// The phase-scale sweep points.
pub const PHASE_SCALES: [usize; 3] = [1, 4, 16];

/// Run BT at a given phase scale under one engine mode.
pub fn run_bt_at(scale: Scale, phase_scale: usize, engine: EngineMode) -> RunResult {
    let cfg = RunConfig {
        placement: PlacementScheme::FirstTouch,
        engine,
        ..RunConfig::paper_default()
    };
    let bt_cfg = BtConfig {
        phase_scale,
        ..BtConfig::for_scale(scale)
    };
    run_bt_custom(bt_cfg, &cfg)
}

/// Run Figure 6: the paper's 4x experiment plus a wider sweep.
pub fn run(scale: Scale) -> Report {
    let (_, upm_opts) = default_engine_configs();
    let mut report = Report::new(
        "fig6",
        "Record-replay on BT with synthetically lengthened phases (paper: 4x)",
        &[
            "Phase scale",
            "upmlib (s)",
            "recrep (s)",
            "recrep overhead (s)",
            "recrep vs upmlib",
        ],
    );
    let mut plan = CellPlan::new();
    for phase_scale in PHASE_SCALES {
        for engine in [EngineMode::Upmlib(upm_opts), EngineMode::RecRep(upm_opts)] {
            let cfg = RunConfig {
                placement: PlacementScheme::FirstTouch,
                engine: engine.clone(),
                ..RunConfig::paper_default()
            };
            let spec = crate::spec::bt_phase_scaled(scale, phase_scale, &cfg);
            plan.add_cached(spec, move || run_bt_at(scale, phase_scale, engine));
        }
    }
    let outputs = plan.execute();
    let mut ratios = Vec::new();
    for (phase_scale, pair) in PHASE_SCALES.into_iter().zip(outputs.chunks(2)) {
        let (upm, rec) = match (&pair[0].value, &pair[1].value) {
            (Ok(upm), Ok(rec)) => (upm, rec),
            (upm, rec) => {
                for (cell, value) in pair.iter().zip([upm, rec]) {
                    if let Err(p) = value {
                        report.failed_row(&cell.id, &p.message);
                    }
                }
                continue;
            }
        };
        assert!(
            upm.verification.passed && rec.verification.passed,
            "fig6 runs must verify"
        );
        let ratio = rec.total_secs / upm.total_secs;
        ratios.push(ratio);
        report.row(vec![
            format!("{phase_scale}x"),
            secs(upm.total_secs),
            secs(rec.total_secs),
            secs(rec.recrep_overhead_secs),
            pct(ratio),
        ]);
    }
    if ratios.len() == PHASE_SCALES.len() {
        report.note(format!(
            "recrep's position improves monotonically with phase length ({} -> {} -> {}); the paper \
             crosses break-even at 4x on Class A, where per-page phase traffic is ~30x larger \
             relative to the serial migration cost (see EXPERIMENTS.md)",
            pct(ratios[0]),
            pct(ratios[1]),
            pct(ratios[2]),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmlib::UpmOptions;

    #[test]
    fn scaling_phases_improves_recreps_relative_position() {
        let opts = UpmOptions::default();
        let ratio_at = |ps: usize| {
            let upm = run_bt_at(Scale::Tiny, ps, EngineMode::Upmlib(opts));
            let rec = run_bt_at(Scale::Tiny, ps, EngineMode::RecRep(opts));
            rec.total_secs / upm.total_secs
        };
        let normal = ratio_at(1);
        let scaled = ratio_at(4);
        assert!(
            scaled < normal,
            "scaling phases must shrink recrep's relative cost: {scaled} vs {normal}"
        );
    }
}
