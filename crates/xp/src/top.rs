//! `xp top` and `xp client stats`: the live ops console over a resident
//! server's `metrics` and `log` protocol ops.
//!
//! `xp top --addr HOST:PORT` polls the server and renders one screen per
//! interval: request rate (from counter deltas between polls), cache hit
//! ratio, end-to-end latency percentiles (client-side, from the log2
//! histogram buckets the `metrics` op ships), per-worker utilization
//! bars, and the newest request-log lines. `--once` prints a single
//! plain snapshot (what CI asserts against); `--json` dumps the raw
//! metrics + log documents for dashboards.
//!
//! The rendering helpers are pure (`Value` in, string out) and shared:
//! `xp client stats` renders the `stats` op through [`render_stats`],
//! and `xp cache stats --json` builds its document with
//! [`cache_scan_json`] — one renderer per surface, no drift between the
//! human and machine views of the same numbers.

use obs::json::Value;
use std::time::{Duration, Instant};
use svc::Client;

/// A quantile over the `metrics` op's histogram-bucket JSON
/// (`[{"ge": floor, "count": n}, ...]`, floors ascending): the floor of
/// the first bucket at or past the `q`-th sample — the same
/// bucket-resolution answer `Histogram::quantile_floor` gives
/// server-side.
pub fn quantile_from_buckets(hist: &Value, q: f64) -> u64 {
    let count = hist["count"].as_u64().unwrap_or(0);
    if count == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    let mut seen = 0u64;
    if let Some(buckets) = hist["buckets"].as_array() {
        for b in buckets {
            seen += b["count"].as_u64().unwrap_or(0);
            if seen >= target {
                return b["ge"].as_u64().unwrap_or(0);
            }
        }
    }
    hist["max"].as_u64().unwrap_or(0)
}

/// Total requests across every `svc.requests.*` counter.
pub fn total_requests(metrics: &Value) -> u64 {
    match metrics.get("counters") {
        Some(Value::Object(pairs)) => pairs
            .iter()
            .filter(|(k, _)| k.starts_with("svc.requests."))
            .filter_map(|(_, v)| v.as_u64())
            .sum(),
        _ => 0,
    }
}

/// Error requests across the `svc.requests.*.error` counters.
pub fn error_requests(metrics: &Value) -> u64 {
    match metrics.get("counters") {
        Some(Value::Object(pairs)) => pairs
            .iter()
            .filter(|(k, _)| k.starts_with("svc.requests.") && k.ends_with(".error"))
            .filter_map(|(_, v)| v.as_u64())
            .sum(),
        _ => 0,
    }
}

/// Cache hit ratio (hits over lookups), `None` before any lookup.
pub fn hit_ratio(metrics: &Value) -> Option<f64> {
    let hits = metrics["counters"]["svc.cache.hits"].as_u64().unwrap_or(0);
    let misses = metrics["counters"]["svc.cache.misses"]
        .as_u64()
        .unwrap_or(0);
    if hits + misses == 0 {
        None
    } else {
        Some(hits as f64 / (hits + misses) as f64)
    }
}

/// A 10-cell utilization bar: `[####......]` at 40%.
fn bar(fraction: f64) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * 10.0).round() as usize;
    format!("[{}{}]", "#".repeat(filled), ".".repeat(10 - filled))
}

/// Render one console screen from a `metrics` snapshot, the matching
/// `log` tail, and the request rate computed from the previous poll
/// (`None` on the first).
pub fn render_top(addr: &str, metrics: &Value, log: &Value, rate: Option<f64>) -> String {
    let mut out = String::new();
    let uptime = metrics["uptime_secs"].as_f64().unwrap_or(0.0);
    out.push_str(&format!("xp top — {addr} (uptime {uptime:.1}s)\n"));

    let total = total_requests(metrics);
    let errors = error_requests(metrics);
    let rate = match rate {
        Some(r) => format!("{r:.1}/s"),
        None => "-/s".to_string(),
    };
    out.push_str(&format!(
        "requests: {total} total, {rate} request rate, {errors} errors\n"
    ));

    let ratio = match hit_ratio(metrics) {
        Some(r) => format!("{:.1}% hit ratio", r * 100.0),
        None => "no lookups yet".to_string(),
    };
    out.push_str(&format!(
        "cache:    {} hits / {} misses ({ratio}); {} entries, {} bytes\n",
        metrics["counters"]["svc.cache.hits"].as_u64().unwrap_or(0),
        metrics["counters"]["svc.cache.misses"]
            .as_u64()
            .unwrap_or(0),
        metrics["gauges"]["svc.cache.entries"]
            .as_f64()
            .unwrap_or(0.0) as u64,
        metrics["gauges"]["svc.cache.bytes"].as_f64().unwrap_or(0.0) as u64,
    ));
    out.push_str(&format!(
        "cells:    {} hit, {} computed, {} joined, {} failed; runs_failed {}\n",
        metrics["counters"]["svc.cells.hit"].as_u64().unwrap_or(0),
        metrics["counters"]["svc.cells.computed"]
            .as_u64()
            .unwrap_or(0),
        metrics["counters"]["svc.flight.joins"]
            .as_u64()
            .unwrap_or(0),
        metrics["counters"]["svc.cells.failed"]
            .as_u64()
            .unwrap_or(0),
        metrics["counters"]["svc.runs_failed"].as_u64().unwrap_or(0),
    ));

    let lat = &metrics["histograms"]["svc.request_us"];
    out.push_str(&format!(
        "latency:  request µs p50≥{} p90≥{} p99≥{} (n={})\n",
        quantile_from_buckets(lat, 0.50),
        quantile_from_buckets(lat, 0.90),
        quantile_from_buckets(lat, 0.99),
        lat["count"].as_u64().unwrap_or(0),
    ));

    let busy = metrics["gauges"]["svc.workers_busy"]
        .as_f64()
        .unwrap_or(0.0) as u64;
    let queue = metrics["gauges"]["svc.queue_depth"].as_f64().unwrap_or(0.0) as u64;
    let inflight = metrics["gauges"]["svc.inflight_cells"]
        .as_f64()
        .unwrap_or(0.0) as u64;
    let workers = log_none(metrics["workers"].as_array());
    out.push_str(&format!(
        "workers:  {busy}/{} busy, queue {queue}, {inflight} cells in flight\n",
        workers.len()
    ));
    for (i, w) in workers.iter().enumerate() {
        let fraction = w["busy_fraction"].as_f64().unwrap_or(0.0);
        out.push_str(&format!(
            "  w{i} {} {:5.1}% busy, {} jobs{}\n",
            bar(fraction),
            fraction * 100.0,
            w["jobs"].as_u64().unwrap_or(0),
            if w["busy"].as_bool() == Some(true) {
                " (busy now)"
            } else {
                ""
            },
        ));
    }

    let records = log_none(log["records"].as_array());
    if !records.is_empty() {
        out.push_str("recent requests (oldest first):\n");
        for r in records {
            let detail = r["detail"].as_str().unwrap_or("");
            out.push_str(&format!(
                "  {} {:8} {:5} {:8.1}ms{}{}\n",
                r["trace_id"].as_str().unwrap_or("?"),
                r["op"].as_str().unwrap_or("?"),
                if r["ok"].as_bool() == Some(true) {
                    "ok"
                } else {
                    "ERROR"
                },
                r["wall_secs"].as_f64().unwrap_or(0.0) * 1e3,
                if detail.is_empty() { "" } else { " — " },
                detail,
            ));
        }
    }
    out
}

fn log_none(v: Option<&Vec<Value>>) -> &[Value] {
    v.map(Vec::as_slice).unwrap_or(&[])
}

/// Render the `stats` op for humans (`xp client stats`).
pub fn render_stats(addr: &str, stats: &Value) -> String {
    format!(
        "server {addr}: up {:.1}s, {} worker(s)\n\
         cache: {} hits, {} misses, {} stores, {} corrupt\n\
         pool:  {} jobs done, {} failed, {} batches\n\
         runs_failed {}, {} cells in flight\n",
        stats["uptime_secs"].as_f64().unwrap_or(0.0),
        stats["pool"]["workers"].as_u64().unwrap_or(0),
        stats["cache"]["hits"].as_u64().unwrap_or(0),
        stats["cache"]["misses"].as_u64().unwrap_or(0),
        stats["cache"]["stores"].as_u64().unwrap_or(0),
        stats["cache"]["corrupt"].as_u64().unwrap_or(0),
        stats["pool"]["jobs_done"].as_u64().unwrap_or(0),
        stats["pool"]["jobs_failed"].as_u64().unwrap_or(0),
        stats["pool"]["batches"].as_u64().unwrap_or(0),
        stats["runs_failed"].as_u64().unwrap_or(0),
        stats["inflight"].as_u64().unwrap_or(0),
    )
}

/// `xp cache stats --json`: one scan as a machine-readable document.
pub fn cache_scan_json(root: &std::path::Path, scan: &svc::ScanReport) -> Value {
    Value::object(vec![
        ("root", root.display().to_string().as_str().into()),
        ("entries", scan.entries.into()),
        ("bytes", scan.bytes.into()),
        (
            "oldest_unix",
            scan.oldest_unix.map(Value::from).unwrap_or(Value::Null),
        ),
        (
            "newest_unix",
            scan.newest_unix.map(Value::from).unwrap_or(Value::Null),
        ),
    ])
}

/// `xp client stats [--json]`: one `stats` round trip, rendered.
pub fn client_stats(addr: &str, json: bool) -> Result<String, String> {
    let client = Client::new(addr, crate::spec::CODE_VERSION);
    let stats = client.stats()?;
    Ok(if json {
        format!("{}\n", stats.to_string_pretty())
    } else {
        render_stats(addr, &stats)
    })
}

/// `xp top`: poll the server and render. `once` prints one snapshot and
/// returns; `json` dumps the raw metrics + log documents instead of the
/// console rendering (single-shot as well). The live loop clears the
/// screen per poll and runs until the server goes away or the process is
/// interrupted.
pub fn run(addr: &str, interval: Duration, once: bool, json: bool) -> Result<(), String> {
    let client = Client::new(addr, crate::spec::CODE_VERSION);
    let mut prev: Option<(u64, Instant)> = None;
    loop {
        let metrics = client.metrics(false)?;
        let log = client.log_tail(10)?;
        if json {
            let doc = Value::object(vec![("metrics", metrics), ("log", log)]);
            println!("{}", doc.to_string_pretty());
            return Ok(());
        }
        let now = Instant::now();
        let total = total_requests(&metrics);
        let rate = prev.map(|(last_total, at)| {
            let dt = now.duration_since(at).as_secs_f64().max(1e-9);
            (total.saturating_sub(last_total)) as f64 / dt
        });
        prev = Some((total, now));
        if once {
            print!("{}", render_top(addr, &metrics, &log, rate));
            return Ok(());
        }
        // ANSI clear + home, like `watch`: one screen per poll.
        print!("\x1b[2J\x1b[H{}", render_top(addr, &metrics, &log, rate));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Value {
        Value::parse(
            r#"{
            "event":"metrics","schema":"ddnomp-metrics v1","uptime_secs":12.5,
            "workers":[
                {"busy":true,"busy_fraction":0.42,"busy_secs":5.2,"jobs":7},
                {"busy":false,"busy_fraction":0.10,"busy_secs":1.2,"jobs":3}
            ],
            "counters":{
                "svc.requests.run.ok":4,"svc.requests.ping.ok":2,
                "svc.requests.run.error":1,
                "svc.cache.hits":6,"svc.cache.misses":2,
                "svc.cells.hit":6,"svc.cells.computed":2,
                "svc.flight.joins":1,"svc.cells.failed":0,"svc.runs_failed":0
            },
            "gauges":{
                "svc.cache.entries":2,"svc.cache.bytes":4096,
                "svc.queue_depth":1,"svc.workers_busy":1,"svc.inflight_cells":3
            },
            "histograms":{
                "svc.request_us":{"count":10,"sum":1000,"min":8,"max":512,"mean":100,
                    "buckets":[{"ge":8,"count":5},{"ge":64,"count":4},{"ge":512,"count":1}]}
            }
        }"#,
        )
        .unwrap()
    }

    fn sample_log() -> Value {
        Value::parse(
            r#"{"event":"log","count":1,"records":[
                {"seq":0,"trace_id":"deadbeefdeadbeef","op":"run","ok":true,
                 "detail":"4 cells — 4 cached, 0 computed, 0 joined, 0 errors",
                 "wall_secs":0.012}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = &sample_metrics()["histograms"]["svc.request_us"];
        assert_eq!(quantile_from_buckets(h, 0.5), 8); // 5 of 10 in the first
        assert_eq!(quantile_from_buckets(h, 0.9), 64); // 9 of 10 by the second
        assert_eq!(quantile_from_buckets(h, 0.99), 512);
        assert_eq!(quantile_from_buckets(&Value::object(vec![]), 0.5), 0);
    }

    #[test]
    fn request_totals_and_hit_ratio_sum_the_counters() {
        let m = sample_metrics();
        assert_eq!(total_requests(&m), 7);
        assert_eq!(error_requests(&m), 1);
        assert_eq!(hit_ratio(&m), Some(0.75));
        assert_eq!(hit_ratio(&Value::object(vec![])), None);
    }

    #[test]
    fn the_console_shows_rate_ratio_percentiles_and_workers() {
        let text = render_top("127.0.0.1:1", &sample_metrics(), &sample_log(), Some(3.25));
        assert!(
            text.contains("7 total, 3.2/s request rate, 1 errors"),
            "{text}"
        );
        assert!(text.contains("75.0% hit ratio"), "{text}");
        assert!(text.contains("p50≥8 p90≥64 p99≥512"), "{text}");
        assert!(
            text.contains("1/2 busy, queue 1, 3 cells in flight"),
            "{text}"
        );
        assert!(
            text.contains("w0 [####......]  42.0% busy, 7 jobs (busy now)"),
            "{text}"
        );
        assert!(text.contains("deadbeefdeadbeef run"), "{text}");
        // First poll has no delta to rate from.
        let text = render_top("127.0.0.1:1", &sample_metrics(), &sample_log(), None);
        assert!(text.contains("-/s request rate"), "{text}");
    }

    #[test]
    fn stats_renderer_reads_the_stats_event() {
        let stats = Value::parse(
            r#"{"event":"stats",
                "cache":{"hits":3,"misses":1,"stores":1,"corrupt":0},
                "pool":{"workers":2,"jobs_done":4,"jobs_failed":0,"batches":2},
                "inflight":0,"runs_failed":1,"uptime_secs":2.0}"#,
        )
        .unwrap();
        let text = render_stats("127.0.0.1:1", &stats);
        assert!(text.contains("2 worker(s)"), "{text}");
        assert!(text.contains("3 hits, 1 misses"), "{text}");
        assert!(text.contains("runs_failed 1"), "{text}");
    }

    #[test]
    fn cache_scan_json_carries_the_scan() {
        let scan = svc::ScanReport {
            entries: 2,
            bytes: 4096,
            oldest_unix: Some(100),
            newest_unix: Some(200),
        };
        let v = cache_scan_json(std::path::Path::new("/tmp/c"), &scan);
        assert_eq!(v["entries"].as_u64(), Some(2));
        assert_eq!(v["bytes"].as_u64(), Some(4096));
        assert_eq!(v["oldest_unix"].as_u64(), Some(100));
        let no_times = svc::ScanReport {
            entries: 0,
            bytes: 0,
            oldest_unix: None,
            newest_unix: None,
        };
        let v = cache_scan_json(std::path::Path::new("/tmp/c"), &no_times);
        assert!(matches!(v["oldest_unix"], Value::Null));
    }
}
