//! The sweep session: one long-lived worker pool shared by every plan of
//! a multi-experiment run.
//!
//! Without a session, each [`crate::cells::CellPlan`] execution spins up
//! and joins its own scoped [`exec::Pool`] — eight spawn/join cycles and
//! eight separate dashboards across an `xp all` sweep, with workers going
//! idle at every plan boundary. The `xp` binary opens a session around
//! multi-experiment runs; plans then submit their cells as batches to one
//! shared [`exec::ResidentPool`] whose workers live for the whole sweep,
//! and one progress line spans the sweep instead of one per plan.
//!
//! The pool is type-erased (`Box<dyn Any + Send>` results) because
//! different plans carry different cell types; [`crate::cells`] downcasts
//! on the way out. Determinism is untouched: batches still merge in plan
//! order, so outputs and replayed side effects are byte-identical to the
//! scoped-pool path.

use exec::{BatchHandle, ResidentJob, ResidentPool, ResidentStats};
use std::any::Any;
use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A type-erased cell result travelling through the shared pool.
pub(crate) type ErasedResult = Box<dyn Any + Send>;

/// One sweep-wide execution session.
pub struct Session {
    pool: ResidentPool<ErasedResult>,
    queued: AtomicU64,
    stop_ticker: AtomicBool,
}

impl Session {
    /// Submit one plan's jobs as a batch on the shared pool.
    pub(crate) fn submit(&self, jobs: Vec<ResidentJob<ErasedResult>>) -> BatchHandle<ErasedResult> {
        self.queued.fetch_add(jobs.len() as u64, Relaxed);
        self.pool.submit(jobs)
    }

    /// Configured worker count.
    pub(crate) fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResidentStats {
        self.pool.stats()
    }
}

static ACTIVE: Mutex<Option<Arc<Session>>> = Mutex::new(None);

/// Open a session with [`crate::jobs::get`] workers and install it as the
/// process-wide executor for subsequent plans. Returns the session (also
/// reachable via [`active`]).
pub fn begin() -> Arc<Session> {
    let session = Arc::new(Session {
        pool: ResidentPool::new(crate::jobs::get()),
        queued: AtomicU64::new(0),
        stop_ticker: AtomicBool::new(false),
    });
    if std::io::stderr().is_terminal() && std::env::var("XP_DASH").unwrap_or_default() != "0" {
        spawn_ticker(Arc::clone(&session));
    }
    *ACTIVE.lock().unwrap() = Some(Arc::clone(&session));
    session
}

/// The active session, if one is open.
pub(crate) fn active() -> Option<Arc<Session>> {
    ACTIVE.lock().unwrap().clone()
}

/// Close the active session: stop its progress ticker, print the sweep
/// summary line, and drop the shared pool (workers drain and join).
pub fn end() {
    let Some(session) = ACTIVE.lock().unwrap().take() else {
        return;
    };
    session.stop_ticker.store(true, Relaxed);
    let stats = session.stats();
    eprintln!(
        "[session] shared pool: {} cells over {} plan(s) on {} worker(s){}",
        stats.jobs_done,
        stats.batches,
        session.workers(),
        if stats.jobs_failed > 0 {
            format!(", {} failed", stats.jobs_failed)
        } else {
            String::new()
        }
    );
    // The last Arc drops here (plans only hold the session while
    // executing), shutting the resident workers down.
    drop(session);
}

/// Sweep-wide progress line on stderr, repainted in place.
fn spawn_ticker(session: Arc<Session>) {
    let _ = std::thread::Builder::new()
        .name("xp-session-dash".into())
        .spawn(move || {
            let mut painted = false;
            loop {
                std::thread::sleep(Duration::from_millis(250));
                if session.stop_ticker.load(Relaxed) {
                    break;
                }
                let stats = session.stats();
                let queued = session.queued.load(Relaxed);
                if queued == 0 {
                    continue;
                }
                eprint!(
                    "\r\x1b[2K[session] {}/{} cells, {} plan(s){}",
                    stats.jobs_done,
                    queued,
                    stats.batches,
                    if stats.jobs_failed > 0 {
                        format!(", {} failed", stats.jobs_failed)
                    } else {
                        String::new()
                    }
                );
                let _ = std::io::stderr().flush();
                painted = true;
            }
            if painted {
                eprint!("\r\x1b[2K");
                let _ = std::io::stderr().flush();
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_pools_are_shared_across_plans_and_end_is_idempotent() {
        // Serialize against other tests that might open sessions: the
        // ACTIVE slot is process-global.
        let session = begin();
        let jobs: Vec<ResidentJob<ErasedResult>> = (0..5usize)
            .map(|i| Box::new(move || Box::new(i) as ErasedResult) as ResidentJob<ErasedResult>)
            .collect();
        let handle = active().expect("session installed").submit(jobs);
        let out = handle.wait_all();
        let values: Vec<usize> = out
            .into_iter()
            .map(|t| *t.result.unwrap().downcast::<usize>().unwrap())
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        assert_eq!(session.stats().batches, 1);
        drop(session);
        end();
        assert!(active().is_none());
        end(); // second end is a no-op
    }
}
