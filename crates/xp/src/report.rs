//! Structured experiment output: markdown rendering plus JSON persistence.

use obs::json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One rendered experiment: a title, a markdown table, optional bar charts
/// (the paper's figures are bar charts), notes, and the raw rows for JSON
/// output.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig1`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Bar charts: `(chart title, bars)`.
    pub charts: Vec<(String, Vec<Bar>)>,
    /// Free-form notes (shape checks against the paper).
    pub notes: Vec<String>,
}

/// One bar of a rendered chart.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Bar label (e.g. `rr-IRIXmig`).
    pub label: String,
    /// Bar value (simulated seconds).
    pub value: f64,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            charts: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Append the row for an experiment cell that panicked instead of
    /// producing a result: the cell id in the first column, `PANIC:` plus
    /// the (truncated) payload in the last, `-` in between. The executor's
    /// panic isolation turns a dead cell into this row, not a dead run.
    pub fn failed_row(&mut self, id: &str, message: &str) {
        let mut msg: String = message.chars().take(60).collect();
        if msg.len() < message.len() {
            msg.push('…');
        }
        let mut cells = vec!["-".to_string(); self.headers.len()];
        if let Some(first) = cells.first_mut() {
            *first = id.to_string();
        }
        if self.headers.len() > 1 {
            if let Some(last) = cells.last_mut() {
                *last = format!("PANIC: {msg}");
            }
        }
        self.rows.push(cells);
    }

    /// Append a bar chart (rendered under the table, in the style of the
    /// paper's figures).
    pub fn chart(&mut self, title: &str, bars: Vec<Bar>) {
        self.charts.push((title.to_string(), bars));
    }

    /// Render as a markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for (title, bars) in &self.charts {
            out.push_str(&format!("\n```text\n{title}\n"));
            let max = bars
                .iter()
                .map(|b| b.value)
                .fold(0.0f64, f64::max)
                .max(1e-300);
            let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
            for bar in bars {
                let width = ((bar.value / max) * 50.0).round() as usize;
                out.push_str(&format!(
                    "{:<label_w$}  {:7.4} |{}\n",
                    bar.label,
                    bar.value,
                    "#".repeat(width.max(1)),
                ));
            }
            out.push_str("```\n");
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("* {n}\n"));
            }
        }
        out.push('\n');
        out
    }

    /// The JSON form of the report.
    pub fn to_json(&self) -> Value {
        let rows = Value::Array(
            self.rows
                .iter()
                .map(|row| Value::Array(row.iter().map(|c| c.as_str().into()).collect()))
                .collect(),
        );
        let charts = Value::Array(
            self.charts
                .iter()
                .map(|(title, bars)| {
                    let bars = Value::Array(
                        bars.iter()
                            .map(|b| {
                                Value::object(vec![
                                    ("label", b.label.as_str().into()),
                                    ("value", b.value.into()),
                                ])
                            })
                            .collect(),
                    );
                    Value::object(vec![("title", title.as_str().into()), ("bars", bars)])
                })
                .collect(),
        );
        Value::object(vec![
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("headers", self.headers.clone().into()),
            ("rows", rows),
            ("charts", charts),
            ("notes", self.notes.clone().into()),
        ])
    }

    /// Write the JSON form under `dir/<id>.json`. Returns the path.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().to_string_pretty().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

/// Format a simulated-seconds value for tables.
pub fn secs(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a ratio as a signed percentage (slowdown vs a baseline).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut r = Report::new("figX", "demo", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.note("hello");
        let md = r.to_markdown();
        assert!(md.contains("## figX"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("* hello"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut r = Report::new("x", "t", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(1.25), "+25.0%");
        assert_eq!(pct(0.9), "-10.0%");
        assert_eq!(secs(1.23456), "1.2346");
    }

    #[test]
    fn save_json_roundtrips() {
        let mut r = Report::new("unit-test-report", "t", &["a"]);
        r.row(vec!["v".into()]);
        let dir = std::env::temp_dir().join("ddnomp-report-test");
        let path = r.save_json(&dir).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("unit-test-report"));
    }
}
