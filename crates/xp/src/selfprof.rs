//! `xp selfprof`: host-side self-profiling of the simulator itself.
//!
//! Where `xp prof` analyses the *simulated* machine on simulated time,
//! `selfprof` answers the engineering question "where does the **host**
//! CPU time of a run actually go?". It opens a [`hostprof`] session
//! around one benchmark cell, runs it under the `xp bench` reference
//! configuration, and reports the inclusive/exclusive host-time span
//! tree (`cell:… → omp.region → ccnuma.touch → …`) with per-component
//! totals.
//!
//! Three artifacts per benchmark land in the output directory, mirroring
//! `xp prof`:
//!
//! * `selfprof-<bench>.md` — the span tree as markdown;
//! * `selfprof-<bench>.jsonl` — schema-versioned aggregates;
//! * `selfprof-<bench>.chrome.json` — a Perfetto trace on host time.
//!
//! The report's reconciliation note cross-checks the instrumentation:
//! the profiled root's inclusive time must match the pool-measured cell
//! wall time (they are the same interval measured by two independent
//! clocks), so a large delta means spans are being lost or double
//! counted.
//!
//! Host time is noisy, so unlike every other `xp` command this report is
//! **not** byte-identical across runs; it is diagnostics, not a golden
//! fixture.

use crate::report::Report;
use crate::{CellOutput, CellPlan};
use hostprof::HostReport;
use nas::{BenchName, RunResult, Scale};
use std::path::Path;

/// Profile one benchmark cell under a hostprof session: the host-time
/// report plus the cell output it profiled. Sessions are process-wide, so
/// calls serialize on [`hostprof`]'s session lock.
pub fn profile_one(bench: BenchName, scale: Scale) -> (HostReport, CellOutput<RunResult>) {
    let session = hostprof::start();
    let mut plan: CellPlan<RunResult> = CellPlan::new();
    plan.add(cell_id(bench), move || {
        crate::run_one(bench, scale, &crate::bench_gate::gate_config())
    });
    let mut outputs = plan.execute();
    let host = session.finish();
    (host, outputs.remove(0))
}

/// The plan id `selfprof` gives its single cell (the profiled root span
/// is `cell:` + this).
pub fn cell_id(bench: BenchName) -> String {
    format!("selfprof:{}", bench.label().to_ascii_lowercase())
}

/// The span-tree report for one profiled benchmark. `cell_wall_secs` is
/// the pool's independent measurement of the same cell, for the
/// reconciliation note.
pub fn report_for(
    host: &HostReport,
    bench: BenchName,
    scale: Scale,
    cell_wall_secs: f64,
) -> Report {
    let label = bench.label().to_ascii_lowercase();
    let mut report = Report::new(
        &format!("selfprof_{label}_{}", scale.label()),
        &format!(
            "Host self-profile of NAS {} ({}): where the simulator's host time goes",
            bench.label(),
            scale.label()
        ),
        &["Span", "Calls", "Incl (ms)", "Excl (ms)", "Incl %"],
    );
    let merged = host.merged();
    let total_ns = host.total_span_ns().max(1);
    fn walk(report: &mut Report, nodes: &[hostprof::SpanNode], depth: usize, total_ns: u64) {
        for node in nodes {
            report.row(vec![
                format!("{}{}", "· ".repeat(depth), node.name),
                node.calls.to_string(),
                format!("{:.3}", node.incl_ns as f64 * 1e-6),
                format!("{:.3}", node.excl_ns() as f64 * 1e-6),
                format!("{:.1}%", node.incl_ns as f64 * 100.0 / total_ns as f64),
            ]);
            walk(report, &node.children, depth + 1, total_ns);
        }
    }
    walk(&mut report, &merged, 0, total_ns);

    let root_name = format!("cell:{}", cell_id(bench));
    match host.root(&root_name) {
        Some(root) if cell_wall_secs > 0.0 => {
            let delta = (root.incl_secs() - cell_wall_secs).abs() / cell_wall_secs;
            report.note(format!(
                "reconciliation: root {root_name} inclusive {:.4}s vs pool cell wall {:.4}s \
                 (delta {:.2}%)",
                root.incl_secs(),
                cell_wall_secs,
                delta * 100.0
            ));
        }
        Some(_) => report.note("reconciliation skipped: cell wall time is zero".to_string()),
        None => report.note(format!("reconciliation failed: no {root_name} root span")),
    }
    let breakdown: Vec<String> = hostprof::component_breakdown(&merged)
        .into_iter()
        .map(|(component, secs)| {
            format!("{component} {:.1}%", secs * 1e9 * 100.0 / total_ns as f64)
        })
        .collect();
    report.note(format!(
        "exclusive time by component: {}",
        breakdown.join(", ")
    ));
    report.note(format!(
        "session wall {:.3}s, {} thread(s), {} span event(s) dropped",
        host.wall_secs,
        host.threads.len(),
        host.dropped_events()
    ));
    report
}

/// Write `selfprof-<bench>.{md,jsonl,chrome.json}` under `dir`.
fn write_artifacts(dir: &Path, stem: &str, host: &HostReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join(format!("{stem}.md")),
        hostprof::export::to_markdown(host, stem),
    )?;
    std::fs::write(
        dir.join(format!("{stem}.jsonl")),
        hostprof::export::to_jsonl(host),
    )?;
    std::fs::write(
        dir.join(format!("{stem}.chrome.json")),
        format!(
            "{}\n",
            hostprof::export::chrome_trace(host, stem).to_string_pretty()
        ),
    )?;
    Ok(())
}

/// The `xp selfprof` command: profile each requested benchmark in its own
/// session (sessions are process-wide, so benchmarks run sequentially)
/// and write the artifacts.
pub fn run(benches: &[BenchName], scale: Scale, out_dir: &Path) -> Vec<Report> {
    let mut reports = Vec::new();
    for &bench in benches {
        let label = bench.label().to_ascii_lowercase();
        let (host, output) = profile_one(bench, scale);
        match output.value {
            Ok(result) => {
                let mut report = report_for(&host, bench, scale, output.wall_secs);
                report.note(format!(
                    "verification: {}",
                    if result.verification.passed {
                        "PASSED"
                    } else {
                        "FAILED"
                    }
                ));
                let stem = format!("selfprof-{label}");
                match write_artifacts(out_dir, &stem, &host) {
                    Ok(()) => report.note(format!(
                        "artifacts: {stem}.md, {stem}.jsonl, {stem}.chrome.json"
                    )),
                    Err(e) => report.note(format!("could not write artifacts: {e}")),
                }
                reports.push(report);
            }
            Err(panic) => {
                let mut report = Report::new(
                    &format!("selfprof_{label}_{}", scale.label()),
                    "Host self-profile (failed cell)",
                    &["Cell", "Status"],
                );
                report.failed_row(&output.id, &panic.message);
                reports.push(report);
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance criterion: the profiled root's inclusive
    /// host time and the pool's independent cell wall measurement are the
    /// same interval, so they must agree within 2%.
    #[test]
    fn root_span_reconciles_with_the_pool_cell_wall() {
        let (host, output) = profile_one(BenchName::Cg, Scale::Tiny);
        let result = output.value.as_ref().expect("cg cell runs");
        assert!(result.verification.passed);
        let root = host
            .root(&format!("cell:{}", cell_id(BenchName::Cg)))
            .expect("profiled root span exists");
        assert_eq!(root.calls, 1);
        let delta = (root.incl_secs() - output.wall_secs).abs() / output.wall_secs;
        assert!(
            delta <= 0.02,
            "root {:.6}s vs cell wall {:.6}s: delta {:.2}% exceeds 2%",
            root.incl_secs(),
            output.wall_secs,
            delta * 100.0
        );
        // The simulator's hot paths actually show up under the root.
        let components: Vec<String> = hostprof::component_breakdown(&host.merged())
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        assert!(components.iter().any(|c| c == "ccnuma"), "{components:?}");
        assert!(components.iter().any(|c| c == "omp"), "{components:?}");
    }

    #[test]
    fn report_carries_reconciliation_and_breakdown_notes() {
        let (host, output) = profile_one(BenchName::Cg, Scale::Tiny);
        let report = report_for(&host, BenchName::Cg, Scale::Tiny, output.wall_secs);
        assert_eq!(report.id, "selfprof_cg_tiny");
        assert!(!report.rows.is_empty());
        assert!(report
            .notes
            .iter()
            .any(|n| n.starts_with("reconciliation:")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.starts_with("exclusive time by component:")));
        // Spot-check the tree rows render with the indent convention.
        assert!(report.rows.iter().any(|r| r[0].starts_with("cell:")));
        assert!(report.rows.iter().any(|r| r[0].starts_with("· ")));
    }
}
