//! The host worker count (the binary's `--jobs N` flag).
//!
//! Like [`crate::seed`], this is a process-global knob installed once at
//! startup: every [`crate::cells::CellPlan`] execution draws its pool size
//! from here. `0` means "not set" and resolves to the host's available
//! parallelism, so `xp` saturates the machine by default while tests can
//! pin an explicit count.

use std::sync::atomic::{AtomicUsize, Ordering};

static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Install the worker count (the binary calls this before dispatching).
/// `set(0)` restores the default (available parallelism).
pub fn set(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The effective worker count: the installed value, or the host's
/// available parallelism when none was installed.
pub fn get() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => exec::Pool::available(),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_then_set_then_reset() {
        // Single test so no other jobs test races this one.
        assert!(get() >= 1);
        set(3);
        assert_eq!(get(), 3);
        set(0);
        assert!(get() >= 1);
    }
}
