//! Building and reconstructing [`svc::CellSpec`]s for the experiment
//! grids — the domain binding between `xp`'s run configurations and the
//! domain-agnostic `svc` service/cache layer.
//!
//! Three builders cover the cacheable cell shapes:
//!
//! * [`plain`] — the paper-default grids (Figures 1/4/5, Table 2): one
//!   benchmark under one placement and engine, everything else
//!   [`RunConfig::paper_default`]. Variant token empty.
//! * [`bt_phase_scaled`] — Figure 6's lengthened-phase BT runs; variant
//!   `"{N}x"`.
//! * [`custom`] — ablation sweep points with bespoke machines or engine
//!   tunables. The variant token documents the deviation (`-thr2`,
//!   `-ratio5.0`, `-32cpu`); the config fingerprint carries the truth. A
//!   server cannot reconstruct these, so it refuses them (fingerprint or
//!   variant check) and the client computes them locally — they still
//!   cache *offline*, keyed by the fingerprint.
//!
//! [`run_spec`] is the inverse: reconstruct the full run configuration
//! from a spec, **recompute the fingerprint from the reconstruction and
//! refuse on mismatch**, then execute. The fingerprint check is what makes
//! the reconstruction trustworthy: a spec whose configuration this binary
//! cannot reproduce exactly can never be served a wrong result.
//!
//! [`CODE_VERSION`] folds the simulator's code generation into every
//! spec. Bump it whenever a change alters any simulated number (machine
//! model, engine behaviour, benchmark kernels, iteration counts) — see
//! DESIGN.md §15 for the policy. Stale cache entries then miss by key and
//! age out via `xp cache gc`; stale servers are refused at the handshake.

use crate::run_one::{default_engine_configs, run_bt_custom, run_one};
use nas::bt::BtConfig;
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use svc::CellSpec;
use vmm::PlacementScheme;

/// The simulator code generation baked into every spec this binary
/// builds. Bump on any change that alters simulated results.
pub const CODE_VERSION: &str = "ddnomp-2026.08-1";

/// 64-bit hex fingerprint of a full run configuration plus any extra
/// configuration facts (problem configs that live outside [`RunConfig`]).
/// The `Debug` representation covers every field of the config — machine
/// geometry, latency model, engine tunables — so any deviation from the
/// paper default changes the fingerprint.
pub fn config_fp(cfg: &RunConfig, extras: &[String]) -> String {
    let mut text = format!("{cfg:?}");
    for extra in extras {
        text.push(';');
        text.push_str(extra);
    }
    svc::hash::digest64(text.as_bytes())
}

/// The seed a spec records: the placement's seed when the placement is
/// seeded, 0 otherwise — so seed sweeps share their seed-independent
/// cells instead of recomputing them per seed.
fn spec_seed(placement: &PlacementScheme) -> u64 {
    match placement {
        PlacementScheme::Random { seed } => *seed,
        _ => 0,
    }
}

/// The placement-map fingerprint a spec records: the synthesized map's
/// content hash for `static` cells, empty for the closed-form schemes.
fn placement_fp(placement: &PlacementScheme) -> String {
    match placement {
        PlacementScheme::Static { map } => map.fingerprint().to_string(),
        _ => String::new(),
    }
}

fn build(
    bench_label: String,
    scale: Scale,
    cfg: &RunConfig,
    variant: String,
    extras: &[String],
) -> CellSpec {
    CellSpec {
        bench: bench_label,
        placement: cfg.placement.label().to_string(),
        placement_fp: placement_fp(&cfg.placement),
        engine: cfg.engine.label().to_string(),
        scale: scale.label().to_string(),
        seed: spec_seed(&cfg.placement),
        variant,
        config_fp: config_fp(cfg, extras),
        code_version: CODE_VERSION.to_string(),
    }
}

/// Spec for a paper-default grid cell: `bench` at `scale` under `cfg`,
/// where `cfg` deviates from [`RunConfig::paper_default`] only in
/// placement and engine.
pub fn plain(bench: BenchName, scale: Scale, cfg: &RunConfig) -> CellSpec {
    build(
        bench.label().to_ascii_lowercase(),
        scale,
        cfg,
        String::new(),
        &[],
    )
}

/// Spec for a Figure 6 cell: BT with `phase_scale`-lengthened phases.
pub fn bt_phase_scaled(scale: Scale, phase_scale: usize, cfg: &RunConfig) -> CellSpec {
    build(
        "bt".to_string(),
        scale,
        cfg,
        format!("{phase_scale}x"),
        &[format!("phase_scale={phase_scale}")],
    )
}

/// Spec for an ablation sweep point with a bespoke configuration.
/// `variant` names the deviation in the cell id (it is spliced directly
/// after the benchmark label, so start it with `-`); `extras` feed any
/// configuration facts outside `cfg` (e.g. a custom problem config's
/// `Debug` form) into the fingerprint. Servers refuse these specs; they
/// cache offline only.
pub fn custom(
    bench: BenchName,
    scale: Scale,
    cfg: &RunConfig,
    variant: &str,
    extras: &[String],
) -> CellSpec {
    build(
        bench.label().to_ascii_lowercase(),
        scale,
        cfg,
        variant.to_string(),
        extras,
    )
}

/// Reconstruct the placement scheme from its spec label, re-seeding the
/// random scheme from the spec's seed field.
fn placement_of(spec: &CellSpec) -> Result<PlacementScheme, String> {
    match spec.placement.as_str() {
        "ft" => Ok(PlacementScheme::FirstTouch),
        "rr" => Ok(PlacementScheme::RoundRobin),
        "rand" => Ok(PlacementScheme::Random { seed: spec.seed }),
        "wc" => Ok(PlacementScheme::WorstCase { node: 0 }),
        "static" => {
            // Re-synthesize the placement map from the benchmark's access
            // model — the map is a pure function of (bench, scale) under
            // the paper-default lint configuration — then verify the spec's
            // recorded fingerprint against the reconstruction, exactly like
            // `check_fp` does for the run configuration.
            let bench = BenchName::parse(&spec.bench)
                .ok_or_else(|| format!("unknown benchmark '{}'", spec.bench))?;
            let scale = Scale::parse(&spec.scale)
                .ok_or_else(|| format!("unknown scale '{}'", spec.scale))?;
            let scheme = crate::lint::static_scheme(bench, scale);
            let fp = placement_fp(&scheme);
            if fp != spec.placement_fp {
                return Err(format!(
                    "placement map fingerprint mismatch for {spec}: spec {}, \
                     reconstruction {fp} — this binary synthesizes a different map",
                    spec.placement_fp
                ));
            }
            Ok(scheme)
        }
        other => Err(format!("unknown placement '{other}'")),
    }
}

/// Reconstruct the engine mode from its spec label with the shared
/// default tunables ([`default_engine_configs`]).
fn engine_of(spec: &CellSpec) -> Result<EngineMode, String> {
    let (kcfg, upm_opts) = default_engine_configs();
    match spec.engine.as_str() {
        "IRIX" => Ok(EngineMode::None),
        "IRIXmig" => Ok(EngineMode::IrixMig(kcfg)),
        "upmlib" => Ok(EngineMode::Upmlib(upm_opts)),
        "recrep" => Ok(EngineMode::RecRep(upm_opts)),
        other => Err(format!("unknown engine '{other}'")),
    }
}

/// Check the reconstructed configuration's fingerprint against the spec's.
fn check_fp(spec: &CellSpec, cfg: &RunConfig, extras: &[String]) -> Result<(), String> {
    let fp = config_fp(cfg, extras);
    if fp != spec.config_fp {
        return Err(format!(
            "config fingerprint mismatch for {spec}: spec {}, reconstruction {fp} — this \
             binary cannot reproduce the cell's exact configuration",
            spec.config_fp
        ));
    }
    Ok(())
}

/// Reconstruct and execute the cell a spec names. Refuses (with a clear
/// error, never a wrong result) when the spec's code version, variant or
/// configuration fingerprint does not match what this binary would build.
pub fn run_spec(spec: &CellSpec) -> Result<RunResult, String> {
    if spec.code_version != CODE_VERSION {
        return Err(format!(
            "code version mismatch: spec {}, binary {CODE_VERSION}",
            spec.code_version
        ));
    }
    let bench = BenchName::parse(&spec.bench)
        .ok_or_else(|| format!("unknown benchmark '{}'", spec.bench))?;
    let scale =
        Scale::parse(&spec.scale).ok_or_else(|| format!("unknown scale '{}'", spec.scale))?;
    let cfg = RunConfig {
        placement: placement_of(spec)?,
        engine: engine_of(spec)?,
        ..RunConfig::paper_default()
    };
    if spec.variant.is_empty() {
        check_fp(spec, &cfg, &[])?;
        return Ok(run_one(bench, scale, &cfg));
    }
    if let Some(n) = spec.variant.strip_suffix('x').and_then(|n| n.parse().ok()) {
        if bench != BenchName::Bt {
            return Err(format!(
                "phase-scaled variant '{}' is only defined for BT",
                spec.variant
            ));
        }
        let phase_scale: usize = n;
        check_fp(spec, &cfg, &[format!("phase_scale={phase_scale}")])?;
        let bt_cfg = BtConfig {
            phase_scale,
            ..BtConfig::for_scale(scale)
        };
        return Ok(run_bt_custom(bt_cfg, &cfg));
    }
    Err(format!(
        "variant '{}' is not reconstructible by a server (ablation cells cache offline only)",
        spec.variant
    ))
}

/// The server-side compute binding: reconstruct, verify, run, encode.
pub fn compute() -> svc::Compute {
    std::sync::Arc::new(|spec: &CellSpec| run_spec(spec).map(|r| r.to_cache_json()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_spec_matches_plan_ids_and_round_trips() {
        let cfg = RunConfig {
            placement: PlacementScheme::WorstCase { node: 0 },
            engine: EngineMode::Upmlib(default_engine_configs().1),
            ..RunConfig::paper_default()
        };
        let spec = plain(BenchName::Cg, Scale::Tiny, &cfg);
        assert_eq!(spec.cell_id(), "cg:wc-upmlib");
        assert_eq!(spec.seed, 0, "unseeded placements normalize to seed 0");
        // The reconstruction reproduces the exact result, byte for byte
        // through the cache encoding.
        let reconstructed = run_spec(&spec).unwrap();
        let direct = run_one(BenchName::Cg, Scale::Tiny, &cfg);
        assert_eq!(
            reconstructed.to_cache_json().to_string(),
            direct.to_cache_json().to_string()
        );
    }

    #[test]
    fn random_placement_seed_feeds_the_spec_and_the_reconstruction() {
        let cfg = RunConfig {
            placement: PlacementScheme::Random { seed: 777 },
            ..RunConfig::paper_default()
        };
        let spec = plain(BenchName::Mg, Scale::Tiny, &cfg);
        assert_eq!(spec.seed, 777);
        let r = run_spec(&spec).unwrap();
        assert_eq!(r.placement, "rand");
        // A different seed is a different cell.
        let other = plain(
            BenchName::Mg,
            Scale::Tiny,
            &RunConfig {
                placement: PlacementScheme::Random { seed: 778 },
                ..RunConfig::paper_default()
            },
        );
        assert_ne!(spec.key(), other.key());
    }

    #[test]
    fn phase_scaled_spec_reconstructs_bt_only() {
        let cfg = RunConfig {
            engine: EngineMode::RecRep(default_engine_configs().1),
            ..RunConfig::paper_default()
        };
        let spec = bt_phase_scaled(Scale::Tiny, 4, &cfg);
        assert_eq!(spec.cell_id(), "bt4x:ft-recrep");
        let r = run_spec(&spec).unwrap();
        assert!(r.verification.passed);
        let mut wrong = spec.clone();
        wrong.bench = "sp".into();
        let err = run_spec(&wrong).unwrap_err();
        assert!(err.contains("only defined for BT"), "{err}");
    }

    #[test]
    fn static_placement_spec_round_trips_and_pins_the_map() {
        let cfg = RunConfig {
            placement: crate::lint::static_scheme(BenchName::Mg, Scale::Tiny),
            ..RunConfig::paper_default()
        };
        let spec = plain(BenchName::Mg, Scale::Tiny, &cfg);
        assert_eq!(spec.cell_id(), "mg:static-IRIX");
        assert_eq!(spec.placement_fp.len(), 16, "map fingerprint recorded");
        // The reconstruction re-synthesizes the same map and reproduces the
        // exact result through the cache encoding.
        let reconstructed = run_spec(&spec).unwrap();
        let direct = run_one(BenchName::Mg, Scale::Tiny, &cfg);
        assert_eq!(
            reconstructed.to_cache_json().to_string(),
            direct.to_cache_json().to_string()
        );
        // A tampered map fingerprint is refused, not silently re-mapped.
        let mut wrong = spec.clone();
        wrong.placement_fp = "0000000000000000".into();
        let err = run_spec(&wrong).unwrap_err();
        assert!(err.contains("placement map fingerprint mismatch"), "{err}");
    }

    #[test]
    fn tampered_fingerprint_is_refused() {
        let cfg = RunConfig::paper_default();
        let mut spec = plain(BenchName::Cg, Scale::Tiny, &cfg);
        spec.config_fp = "0000000000000000".into();
        let err = run_spec(&spec).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn custom_variants_and_stale_code_versions_are_refused() {
        let cfg = RunConfig::paper_default();
        let spec = custom(BenchName::Cg, Scale::Tiny, &cfg, "-thr2", &[]);
        assert_eq!(spec.cell_id(), "cg-thr2:ft-IRIX");
        let err = run_spec(&spec).unwrap_err();
        assert!(err.contains("not reconstructible"), "{err}");
        let mut stale = plain(BenchName::Cg, Scale::Tiny, &cfg);
        stale.code_version = "older".into();
        let err = run_spec(&stale).unwrap_err();
        assert!(err.contains("code version mismatch"), "{err}");
    }
}
