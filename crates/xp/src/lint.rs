//! `xp lint`: drive the static NUMA/race analyzer over the benchmarks.
//!
//! Builds each benchmark's [`nas::KernelModel`] on the paper's machine
//! (same allocation sequence as a real run, so virtual addresses match the
//! simulator bit-for-bit), analyzes it with [`::lint::analyze`], and
//! renders one report row per finding. Findings whose stable keys appear in
//! the allowlist are marked `allowed`; findings whose code is in the deny
//! set and not allowlisted are marked `denied` and make the command exit
//! non-zero — that is the CI gate.

use ::lint::{Allowlist, Analysis, Code, Finding, LintConfig, PlacementMap};
use ccnuma::{Machine, MachineConfig};
use nas::{bt::Bt, cg::Cg, ft::Ft, mg::Mg, sp::Sp};
use nas::{BenchName, NasBenchmark, Scale};
use omp::Runtime;
use std::collections::BTreeSet;
use std::sync::Arc;
use vmm::PlacementScheme;

use crate::Report;

/// Outcome of one `xp lint` invocation.
pub struct LintRun {
    /// The renderable report (one row per finding, plus summary notes).
    pub report: Report,
    /// Findings hit by the deny set and not waived by the allowlist.
    pub denied: Vec<Finding>,
}

/// Build `bench`'s access model exactly as a dynamic run would allocate it:
/// fresh machine, 16-thread runtime, then the benchmark constructor. The
/// machine hands out virtual ranges sequentially, so the model's addresses
/// equal those of a [`nas::BenchRun`] over the same scale.
pub fn model_for(bench: BenchName, scale: Scale) -> nas::KernelModel {
    let machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    let mut rt = Runtime::with_threads(machine, 16);
    let bench: Box<dyn NasBenchmark> = match bench {
        BenchName::Bt => Box::new(Bt::new(&mut rt, scale)),
        BenchName::Sp => Box::new(Sp::new(&mut rt, scale)),
        BenchName::Cg => Box::new(Cg::new(&mut rt, scale)),
        BenchName::Mg => Box::new(Mg::new(&mut rt, scale)),
        BenchName::Ft => Box::new(Ft::new(&mut rt, scale)),
    };
    bench
        .access_model()
        .expect("all five benchmarks expose access models")
}

/// Analyze one benchmark with the paper-default lint configuration.
pub fn analyze_bench(bench: BenchName, scale: Scale) -> Analysis {
    ::lint::analyze(&model_for(bench, scale), &LintConfig::paper_default())
}

/// Synthesize `bench`'s static placement prescription with the paper-default
/// lint configuration. Deterministic: a pure function of (bench, scale).
pub fn placement_map(bench: BenchName, scale: Scale) -> PlacementMap {
    ::lint::synthesize(&model_for(bench, scale), &LintConfig::paper_default())
}

/// The installable `static` placement scheme for `bench` at `scale`.
pub fn static_scheme(bench: BenchName, scale: Scale) -> PlacementScheme {
    PlacementScheme::Static {
        map: Arc::new(placement_map(bench, scale).to_static()),
    }
}

/// Run the analyzer over `benches` and assemble the `xp` report.
pub fn run(
    benches: &[BenchName],
    scale: Scale,
    deny: &BTreeSet<Code>,
    allow: &Allowlist,
) -> LintRun {
    let scale_label = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    };
    let mut report = Report::new(
        &format!("lint_{scale_label}"),
        &format!("Static NUMA/race lint ({scale_label}, 16 threads, paper machine)"),
        &[
            "code", "severity", "bench", "site", "subject", "count", "status", "message",
        ],
    );
    let mut denied = Vec::new();
    let mut total = 0usize;
    let mut waived = 0usize;
    for &bench in benches {
        let analysis = analyze_bench(bench, scale);
        // Synthesis warnings (L009: pages with no phase-invariant home) ride
        // the same report, deny gate and allowlist as the analyzer findings.
        let synth = placement_map(bench, scale).findings();
        for f in analysis.findings.into_iter().chain(synth) {
            total += 1;
            let allowed = allow.allows(&f);
            let status = if allowed {
                waived += 1;
                "allowed"
            } else if deny.contains(&f.code) {
                "denied"
            } else {
                "reported"
            };
            report.row(vec![
                f.code.as_str().to_string(),
                f.severity().as_str().to_string(),
                f.bench.clone(),
                f.site.clone(),
                f.subject.clone(),
                f.count.to_string(),
                status.to_string(),
                f.message.clone(),
            ]);
            if status == "denied" {
                denied.push(f);
            }
        }
    }
    report.note(format!(
        "{} findings over {} benchmarks; {} allowlisted, {} denied",
        total,
        benches.len(),
        waived,
        denied.len()
    ));
    if !deny.is_empty() {
        let codes: Vec<&str> = deny.iter().map(|c| c.as_str()).collect();
        report.note(format!("deny set: {}", codes.join(",")));
    }
    LintRun { report, denied }
}

/// `xp lint --emit-placement`: write each benchmark's synthesized
/// [`PlacementMap`] as deterministic JSON (`placement-{bench}-{scale}.json`
/// under `out`). Returns the paths written, in bench order.
pub fn emit_placement(
    benches: &[BenchName],
    scale: Scale,
    out: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(out)?;
    let mut paths = Vec::new();
    for &bench in benches {
        let map = placement_map(bench, scale);
        let path = out.join(format!(
            "placement-{}-{}.json",
            bench.label().to_ascii_lowercase(),
            scale.label()
        ));
        std::fs::write(&path, map.to_json().to_string_pretty())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-audited expectation for the kernels at Tiny: no races
    /// anywhere, and false sharing only where BT/SP's z-sweep writes
    /// 320-byte y-rows of `rhs` against 128-byte lines.
    #[test]
    fn tiny_findings_match_the_audit() {
        let run = run(
            &BenchName::all(),
            Scale::Tiny,
            &BTreeSet::new(),
            &Allowlist::empty(),
        );
        assert!(run.denied.is_empty());
        let keys: Vec<String> = BenchName::all()
            .iter()
            .flat_map(|&b| analyze_bench(b, Scale::Tiny).findings)
            .map(|f| f.key())
            .collect();
        assert!(
            keys.iter()
                .all(|k| !k.starts_with("L001") && !k.starts_with("L002")),
            "no races expected, got {keys:?}"
        );
        let fs: Vec<&String> = keys.iter().filter(|k| k.starts_with("L003")).collect();
        assert_eq!(
            fs,
            vec!["L003 BT z_solve bt.rhs", "L003 SP z_solve sp.rhs"],
            "false sharing exactly in the z-sweeps' rhs rows"
        );
        assert!(
            keys.iter().all(|k| !k.starts_with("L004")),
            "no predicted frozen pages at Tiny: {keys:?}"
        );
    }

    #[test]
    fn deny_gate_respects_allowlist() {
        let deny = ::lint::parse_deny("races,false-sharing").unwrap();
        let bare = run(&[BenchName::Bt], Scale::Tiny, &deny, &Allowlist::empty());
        assert_eq!(bare.denied.len(), 1, "BT's z_solve false sharing is denied");
        let allow = Allowlist::from_text("L003 BT z_solve bt.rhs\n");
        let waived = run(&[BenchName::Bt], Scale::Tiny, &deny, &allow);
        assert!(waived.denied.is_empty());
    }
}
