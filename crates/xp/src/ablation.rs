//! Ablation studies backing the paper's qualitative claims.
//!
//! * [`latency_ratio`] — §6: "the impact of page placement would be more
//!   significant on ccNUMA architectures with higher remote memory access
//!   latencies". We sweep the remote:local ratio and re-measure the
//!   worst-case-placement slowdown.
//! * [`threshold_sweep`] — the competitive criterion's `thr` knob: too low
//!   migrates noise, too high leaves remote-dominated pages in place.
//! * [`freeze_toggle`] — the ping-pong freezing defense (§3.2): with
//!   freezing disabled, page-level false sharing keeps the engine migrating
//!   forever and burning migration cost.
//!
//! The sweeps are [`CellPlan`]s (each sweep point an independent machine);
//! [`scheduler_disruption`] is a single evolving timeline and stays
//! serial.

use crate::cells::CellPlan;
use crate::report::{pct, secs, Report};
use crate::run_one::run_one;
use ccnuma::{LatencyModel, MachineConfig};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use upmlib::{UpmOptions, UpmStats};
use vmm::PlacementScheme;

/// Balanced-placement slowdown as a function of the remote:local latency
/// ratio — the paper's §6 claim: "the impact of page placement would be
/// more significant on ccNUMA architectures with higher remote memory
/// access latencies". Random placement is used because its penalty is pure
/// remote latency (worst-case placement is contention-dominated, and
/// stretching the run with slower remote accesses actually *lowers* module
/// utilization).
pub fn latency_ratio(scale: Scale) -> Report {
    let mut report = Report::new(
        "ablation-latency-ratio",
        "Random-placement slowdown vs the machine's remote:local latency ratio (CG)",
        &[
            "Remote:local ratio",
            "ft time (s)",
            "rand time (s)",
            "rand slowdown",
        ],
    );
    const RATIOS: [f64; 4] = [1.7, 3.0, 5.0, 8.0];
    let mut plan = CellPlan::new();
    for ratio in RATIOS {
        let mut machine = MachineConfig::origin2000_16p_scaled();
        machine.latency = if ratio <= 1.75 {
            LatencyModel::origin2000()
        } else {
            LatencyModel::with_remote_ratio(ratio)
        };
        for placement in [
            PlacementScheme::FirstTouch,
            PlacementScheme::Random {
                seed: crate::seed::get(),
            },
        ] {
            let cfg = RunConfig {
                placement,
                engine: EngineMode::None,
                threads: 16,
                machine: machine.clone(),
                trace: false,
            };
            // Bespoke machine: a server cannot reconstruct this cell, but
            // the fingerprint still keys it in the offline cache.
            let spec = crate::spec::custom(
                BenchName::Cg,
                scale,
                &cfg,
                &format!("-ratio{ratio:.1}"),
                &[],
            );
            plan.add_cached(spec, move || run_one(BenchName::Cg, scale, &cfg));
        }
    }
    let outputs = plan.execute();
    for (ratio, pair) in RATIOS.into_iter().zip(outputs.chunks(2)) {
        match (&pair[0].value, &pair[1].value) {
            (Ok(ft), Ok(rand)) => report.row(vec![
                format!("{ratio:.1}:1"),
                secs(ft.total_secs),
                secs(rand.total_secs),
                pct(rand.total_secs / ft.total_secs),
            ]),
            (ft, rand) => {
                for (cell, value) in pair.iter().zip([ft, rand]) {
                    if let Err(p) = value {
                        report.failed_row(&cell.id, &p.message);
                    }
                }
            }
        }
    }
    report.note(
        "the slowdown grows with the ratio — the paper's argument that the Origin2000's \
         aggressive latency optimization is what makes balanced placement schemes viable",
    );
    report
}

/// UPMlib competitive-threshold sweep under random placement. CG is the
/// interesting subject: its gathered vector pages are only weakly dominated
/// by their owners, so they sit right at the criterion's decision boundary.
pub fn threshold_sweep(scale: Scale) -> Report {
    let mut report = Report::new(
        "ablation-threshold",
        "UPMlib competitive threshold `thr` sweep (CG, random placement)",
        &[
            "thr",
            "Time (s)",
            "Settled time/iter (s)",
            "Total migrations",
        ],
    );
    const THRS: [f64; 4] = [1.2, 2.0, 8.0, 32.0];
    let mut plan = CellPlan::new();
    for thr in THRS {
        let opts = UpmOptions {
            thr,
            ..Default::default()
        };
        let cfg = RunConfig {
            placement: PlacementScheme::Random {
                seed: crate::seed::get(),
            },
            engine: EngineMode::Upmlib(opts),
            ..RunConfig::paper_default()
        };
        let spec = crate::spec::custom(BenchName::Cg, scale, &cfg, &format!("-thr{thr}"), &[]);
        plan.add_cached(spec, move || run_one(BenchName::Cg, scale, &cfg));
    }
    for (thr, cell) in THRS.into_iter().zip(plan.execute()) {
        let r = match &cell.value {
            Ok(r) => r,
            Err(p) => {
                report.failed_row(&cell.id, &p.message);
                continue;
            }
        };
        let stats = r.upm.as_ref().expect("upmlib stats");
        report.row(vec![
            format!("{thr}"),
            secs(r.total_secs),
            secs(*r.per_iter_secs.last().expect("iterations ran")),
            stats.total_distribution_migrations().to_string(),
        ]);
    }
    report.note("higher thresholds migrate fewer pages and leave more remote traffic in place");
    report
}

/// Page-freezing on/off on a kernel with page-level false sharing: two
/// halves of the team alternately dominate the same pages (the pattern the
/// paper observed in BT/SP, where "some page-level false sharing forced
/// page migrations after the second and third iterations").
pub fn freeze_toggle(_scale: Scale) -> Report {
    use ccnuma::{Machine, SimArray};
    use omp::{Runtime, Schedule};
    use upmlib::UpmEngine;

    let mut report = Report::new(
        "ablation-freeze",
        "Ping-pong freezing on/off (alternating-dominance kernel, first-touch placement)",
        &[
            "Freezing",
            "Time (s)",
            "Total migrations",
            "Invocations",
            "Frozen pages",
        ],
    );
    let run = |freeze: bool| -> (f64, UpmStats) {
        let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
        vmm::install_placement(&mut machine, PlacementScheme::FirstTouch);
        let mut rt = Runtime::new(machine);
        let len = 32 * (ccnuma::PAGE_SIZE as usize / 8);
        let shared = SimArray::new(rt.machine_mut(), "shared", len, 0.0f64);
        let mut upm = UpmEngine::new(
            rt.machine(),
            UpmOptions {
                freeze_ping_pong: freeze,
                ..Default::default()
            },
        );
        upm.memrefcnt(&shared);
        // Odd iterations reverse the index mapping, so every page's
        // dominant node flips each iteration — page-grain false sharing.
        let sweep = |rt: &mut Runtime, flip: bool| {
            rt.parallel_for(len, Schedule::Static, |par, i| {
                let j = if flip { len - 1 - i } else { i };
                par.update(&shared, j, |v| v + 1.0);
                par.flops(1);
            });
        };
        sweep(&mut rt, false); // cold start
        upm.reset_counters(rt.machine());
        let t0 = rt.machine().clock().now_secs();
        for step in 0..10 {
            // Start flipped, so the first observation window already shows
            // the alternating dominance.
            sweep(&mut rt, step % 2 == 0);
            if upm.is_active() {
                upm.migrate_memory(rt.machine_mut());
            }
        }
        (rt.machine().clock().now_secs() - t0, upm.stats().clone())
    };
    let mut plan = CellPlan::new();
    for freeze in [true, false] {
        plan.add(
            format!("freeze-{}", if freeze { "on" } else { "off" }),
            move || run(freeze),
        );
    }
    for (freeze, cell) in [true, false].into_iter().zip(plan.execute()) {
        let (elapsed, stats) = match &cell.value {
            Ok(v) => v,
            Err(p) => {
                report.failed_row(&cell.id, &p.message);
                continue;
            }
        };
        report.row(vec![
            if freeze { "on".into() } else { "off".into() },
            secs(*elapsed),
            stats.total_distribution_migrations().to_string(),
            stats.migrations_per_invocation.len().to_string(),
            stats.frozen_pages.to_string(),
        ]);
    }
    report.note(
        "without freezing, pages whose dominance flips every iteration keep bouncing and the \
         engine keeps paying migration cost instead of deactivating",
    );
    report
}

/// Read-only replication (the paper's §1.2 sketch): a broadcast-pattern
/// kernel — every thread reads a shared coefficient table every iteration
/// while updating its own partition — run with UPMlib migration alone vs
/// migration + read-only replication.
///
/// Migration cannot help the table (it has no dominant accessor; moving it
/// just moves the hot spot); replication puts a copy on every consuming
/// node and removes both the remote latency and the contention.
pub fn replication(_scale: Scale) -> Report {
    use ccnuma::{Machine, SimArray};
    use omp::{Runtime, Schedule};
    use upmlib::UpmEngine;

    let mut report = Report::new(
        "ablation-replication",
        "Read-only page replication on a broadcast-pattern kernel (worst-case placement)",
        &["Config", "Time (s)", "Replicas", "Migrations"],
    );
    let run = |replicate: bool| -> (f64, u64, u64) {
        let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
        vmm::install_placement(&mut machine, PlacementScheme::WorstCase { node: 0 });
        let mut rt = Runtime::new(machine);
        // A shared read-only table (16 pages) and a large private-partition
        // working array (64 pages).
        let table_len = 16 * (ccnuma::PAGE_SIZE as usize / 8);
        let work_len = 64 * (ccnuma::PAGE_SIZE as usize / 8);
        let table = SimArray::from_fn(rt.machine_mut(), "table", table_len, |i| {
            1.0 + (i % 97) as f64
        });
        let work = SimArray::new(rt.machine_mut(), "work", work_len, 0.0f64);
        let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
        upm.memrefcnt(&table);
        upm.memrefcnt(&work);
        let sweep = |rt: &mut Runtime| {
            rt.parallel_for(work_len, Schedule::Static, |par, i| {
                // A scrambled index spreads every thread's reads over the
                // whole table (the broadcast pattern).
                let coeff = par.get(&table, (i.wrapping_mul(7919)) % table_len);
                par.update(&work, i, |v| v + coeff);
                par.flops(2);
            });
        };
        sweep(&mut rt); // cold start
        upm.reset_counters(rt.machine());
        let t0 = rt.machine().clock().now_secs();
        for _ in 0..12 {
            sweep(&mut rt);
            if upm.is_active() {
                upm.migrate_memory(rt.machine_mut());
            }
            if replicate {
                upm.replicate_readonly(rt.machine_mut());
            }
        }
        let elapsed = rt.machine().clock().now_secs() - t0;
        let stats = upm.stats();
        (
            elapsed,
            stats.replications,
            stats.total_distribution_migrations(),
        )
    };
    const CONFIGS: [(&str, bool); 2] =
        [("migration only", false), ("migration + replication", true)];
    let mut plan = CellPlan::new();
    for (label, replicate) in CONFIGS {
        plan.add(label, move || run(replicate));
    }
    for ((label, _), cell) in CONFIGS.into_iter().zip(plan.execute()) {
        let (elapsed, replicas, migrations) = match &cell.value {
            Ok(v) => v,
            Err(p) => {
                report.failed_row(&cell.id, &p.message);
                continue;
            }
        };
        report.row(vec![
            label.into(),
            secs(*elapsed),
            replicas.to_string(),
            migrations.to_string(),
        ]);
    }
    report.note(
        "the shared table has no dominant accessor, so the competitive migration criterion          leaves it on the hot node; replication is the only mechanism that serves it",
    );
    report
}

/// Machine-size scale-out — the experiment the paper could not run (§2.2:
/// "The impact of page placement ... would be also more significant on truly
/// large-scale Origin2000 systems ... Unfortunately, access to a system of
/// that scale was impossible for our experiments"). The simulator has no
/// such constraint: sweep the machine from 8 to 64 processors (the hypercube
/// deepens, so worst-case hop counts grow past Table 1's three) and measure
/// the placement sensitivity of CG at each size.
pub fn machine_size(_scale: Scale) -> Report {
    use nas::cg::CgConfig;
    let mut report = Report::new(
        "ablation-machine-size",
        "Placement sensitivity vs machine size (CG weak-scaled: 500 rows/CPU; 2 CPUs per node)",
        &["CPUs", "Max hops", "ft (s)", "rand slowdown", "wc slowdown"],
    );
    const NODES: [usize; 4] = [4, 8, 16, 32];
    let mut plan = CellPlan::new();
    for nodes in NODES {
        let machine = MachineConfig::origin2000_scaled_nodes(nodes);
        // Weak scaling: constant per-processor working set, as the paper's
        // §2.2 extrapolation presumes ("reasonable scaling of the problem
        // size").
        let cg_cfg = CgConfig {
            n: nodes * 2 * 500,
            nz_per_row: 9,
            outer: 4,
            cg_iters: 10,
            shift: 20.0,
            seed: 271828,
        };
        for placement in [
            PlacementScheme::FirstTouch,
            PlacementScheme::Random {
                seed: crate::seed::get(),
            },
            PlacementScheme::WorstCase { node: 0 },
        ] {
            let cfg = RunConfig {
                placement,
                engine: EngineMode::None,
                threads: nodes * 2,
                machine: machine.clone(),
                trace: false,
            };
            // The problem size comes entirely from cg_cfg (fed to the
            // fingerprint via extras); the spec's scale field is pinned so
            // the cache key does not vary with the ignored --scale flag.
            let spec = crate::spec::custom(
                BenchName::Cg,
                Scale::Tiny,
                &cfg,
                &format!("-{}cpu", nodes * 2),
                &[format!("{cg_cfg:?}")],
            );
            plan.add_cached(spec, move || crate::run_one::run_cg_custom(cg_cfg, &cfg));
        }
    }
    let outputs = plan.execute();
    for (nodes, chunk) in NODES.into_iter().zip(outputs.chunks(3)) {
        let diameter = MachineConfig::origin2000_scaled_nodes(nodes)
            .topology
            .diameter();
        let ok: Vec<Option<&RunResult>> = chunk.iter().map(|c| c.ok()).collect();
        match (ok[0], ok[1], ok[2]) {
            (Some(ft), Some(rand), Some(wc)) => report.row(vec![
                format!("{}", nodes * 2),
                format!("{diameter}"),
                secs(ft.total_secs),
                pct(rand.total_secs / ft.total_secs),
                pct(wc.total_secs / ft.total_secs),
            ]),
            _ => {
                for cell in chunk {
                    if let Err(p) = &cell.value {
                        report.failed_row(&cell.id, &p.message);
                    }
                }
            }
        }
    }
    report.note(
        "both balanced-scheme and worst-case penalties grow with machine size: more remote          hops per access and, for worst-case, more processors contending for one memory          module — the paper's §2.2 extrapolation, verified",
    );
    report
}

/// Scheduler disruption — the multiprogramming scenario the paper's
/// footnote 3 sets aside ("unless the operating system intervenes and
/// preempts or migrates threads", deferring to the authors' companion
/// work). After UPMlib settles, the OS rebinds every thread to a different
/// node's CPU; the tuned placement is suddenly wrong. Re-arming the engine
/// (`reactivate`) lets it re-learn the new binding within an iteration.
///
/// One machine evolving through a timeline — inherently serial, so no
/// cell plan here.
pub fn scheduler_disruption(_scale: Scale) -> Report {
    use ccnuma::{Machine, SimArray};
    use omp::{Runtime, Schedule};
    use upmlib::UpmEngine;

    let mut report = Report::new(
        "ablation-scheduler",
        "Thread rebinding after UPMlib settles (iteration timeline, simulated ms)",
        &["Iteration", "Event", "Time (ms)"],
    );
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    vmm::install_placement(&mut machine, PlacementScheme::RoundRobin);
    let mut rt = Runtime::new(machine);
    let len = 128 * (ccnuma::PAGE_SIZE as usize / 8);
    let data = SimArray::new(rt.machine_mut(), "data", len, 0.0f64);
    let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
    upm.memrefcnt(&data);
    let sweep = |rt: &mut Runtime| {
        rt.parallel_for(len, Schedule::Static, |par, i| {
            par.update(&data, i, |v| v + 1.0);
            par.flops(1);
        });
    };
    sweep(&mut rt); // cold start
    upm.reset_counters(rt.machine());
    for step in 0..12 {
        if step == 6 {
            // The OS migrates every thread to the "opposite" CPU: thread t
            // now runs on CPU (t + 8) % 16, i.e. a different node.
            let perm: Vec<usize> = (0..16).map(|t| (t + 8) % 16).collect();
            rt.rebind_threads(&perm);
            upm.reactivate(rt.machine());
        }
        let t0 = rt.machine().clock().now_secs();
        sweep(&mut rt);
        if upm.is_active() {
            upm.migrate_memory(rt.machine_mut());
        }
        let event = match step {
            0 => "engine settling",
            6 => "threads rebound + engine re-armed",
            7 => "re-learned placement",
            _ => "",
        };
        report.row(vec![
            format!("{}", step + 1),
            event.into(),
            format!("{:.3}", (rt.machine().clock().now_secs() - t0) * 1e3),
        ]);
    }
    report.note(
        "the rebinding makes the settled placement wrong for one iteration; the re-armed \
         engine restores steady state in the next — the behaviour the paper's companion \
         work on multiprogrammed machines builds on",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_latency_ratio_hurts_balanced_placement_more() {
        // Compare rand slowdown at the Origin ratio vs a 5x machine.
        let slow = |ratio: f64| {
            let mut machine = MachineConfig::origin2000_16p_scaled();
            if ratio > 1.75 {
                machine.latency = LatencyModel::with_remote_ratio(ratio);
            }
            let run = |placement| {
                run_one(
                    BenchName::Cg,
                    Scale::Small,
                    &RunConfig {
                        placement,
                        engine: EngineMode::None,
                        threads: 16,
                        machine: machine.clone(),
                        trace: false,
                    },
                )
                .total_secs
            };
            run(PlacementScheme::Random { seed: 20000 }) / run(PlacementScheme::FirstTouch)
        };
        let at_origin = slow(1.7);
        let at_5x = slow(5.0);
        assert!(
            at_5x > at_origin,
            "5x ratio slowdown {at_5x} <= origin {at_origin}"
        );
    }
}
