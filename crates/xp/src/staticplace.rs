//! `xp staticplace`: the four-way head-to-head the paper could not run —
//! static data distribution versus first-touch, each with and without the
//! UPMlib engine.
//!
//! The paper argues data distribution directives are unnecessary in OpenMP
//! because first-touch plus dynamic page migration recovers the gap. The
//! counterfactual it could not test (no distribution tool existed for
//! OpenMP) is a *static* placement synthesized offline. `lint::synth`
//! provides exactly that, so this experiment asks the paper's question
//! from the other side: with a perfect offline prescription in hand, does
//! the dynamic engine still earn its keep?
//!
//! Per benchmark, four configurations:
//!
//! * `ft-IRIX`      — first-touch, no engine (the paper's baseline)
//! * `static-IRIX`  — synthesized placement, no engine (pure offline)
//! * `ft-upmlib`    — first-touch + UPMlib (the paper's answer)
//! * `static-upmlib`— hybrid: offline prescription + dynamic engine
//!
//! All four cells share cache keys with the fig1/fig4 grids (same specs),
//! so a warm sweep recomputes nothing. The notes quantify the synthesis
//! itself: pages mapped, flip pages (no phase-invariant home), predicted
//! residual migrations, and the migrations the hybrid actually performed.

use crate::cells::{CellOutput, CellPlan};
use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// Cells [`plan_for`] appends per benchmark: {ft, static} x {IRIX, upmlib}.
pub const CELLS_PER_BENCH: usize = 4;

/// Append one benchmark's four head-to-head cells to `plan`, in the
/// canonical order: ft-IRIX, static-IRIX, ft-upmlib, static-upmlib.
pub fn plan_for(plan: &mut CellPlan<RunResult>, bench: BenchName, scale: Scale) {
    let (_, upm_opts) = default_engine_configs();
    let static_placement = crate::lint::static_scheme(bench, scale);
    let configs = [
        (PlacementScheme::FirstTouch, EngineMode::None),
        (static_placement.clone(), EngineMode::None),
        (PlacementScheme::FirstTouch, EngineMode::Upmlib(upm_opts)),
        (static_placement, EngineMode::Upmlib(upm_opts)),
    ];
    for (placement, engine) in configs {
        let cfg = RunConfig {
            placement,
            engine,
            ..RunConfig::paper_default()
        };
        let spec = crate::spec::plain(bench, scale, &cfg);
        plan.add_cached(spec, move || run_one(bench, scale, &cfg));
    }
}

/// Run the four-way grid for one benchmark (host-parallel; panics on a
/// failed cell).
pub fn four_way(bench: BenchName, scale: Scale) -> Vec<RunResult> {
    let mut plan = CellPlan::new();
    plan_for(&mut plan, bench, scale);
    plan.execute()
        .into_iter()
        .map(CellOutput::expect_ok)
        .collect()
}

/// Run the four-way head-to-head for all five benchmarks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "staticplace",
        "Static data distribution vs first-touch, with and without UPMlib (the four-way head-to-head)",
        &[
            "Benchmark",
            "Config",
            "Time (s)",
            "vs ft-IRIX",
            "Last-75% vs ft",
            "UPM migrations",
            "Verified",
        ],
    );
    let mut plan = CellPlan::new();
    for bench in BenchName::all() {
        plan_for(&mut plan, bench, scale);
    }
    let outputs = plan.execute();
    let mut static_vs_ft: Vec<f64> = Vec::new();
    let mut hybrid_vs_upm: Vec<f64> = Vec::new();
    for (bench, chunk) in BenchName::all()
        .into_iter()
        .zip(outputs.chunks(CELLS_PER_BENCH))
    {
        let ok: Vec<&RunResult> = chunk.iter().filter_map(CellOutput::ok).collect();
        let find = |placement: &str, engine: &str| {
            ok.iter()
                .find(|r| r.placement == placement && r.engine == engine)
                .copied()
        };
        let base = find("ft", "IRIX");
        report.chart(
            &format!(
                "NAS {} four-way (execution time, simulated seconds)",
                bench.label()
            ),
            ok.iter()
                .map(|r| crate::report::Bar {
                    label: r.label(),
                    value: r.total_secs,
                })
                .collect(),
        );
        for cell in chunk {
            let r = match &cell.value {
                Ok(r) => r,
                Err(p) => {
                    report.failed_row(&cell.id, &p.message);
                    continue;
                }
            };
            let ratio = base.map(|b| r.total_secs / b.total_secs);
            let last75 = base.map(|b| r.last75_mean_secs() / b.last75_mean_secs());
            let migrations = r
                .upm
                .as_ref()
                .map(|s| s.total_distribution_migrations().to_string())
                .unwrap_or_else(|| "-".into());
            report.row(vec![
                bench.label().into(),
                r.label(),
                secs(r.total_secs),
                ratio.map(pct).unwrap_or_else(|| "-".into()),
                last75.map(pct).unwrap_or_else(|| "-".into()),
                migrations,
                if r.verification.passed {
                    "ok".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
        // Synthesis accounting: what did the offline pass prescribe, and
        // how much dynamic work was left for the hybrid?
        let map = crate::lint::placement_map(bench, scale);
        let hybrid_migrations = find("static", "upmlib")
            .and_then(|r| r.upm.as_ref())
            .map(|s| s.total_distribution_migrations())
            .unwrap_or(0);
        report.note(format!(
            "{}: synthesized {} pages ({} flip), predicted residual {} migrations; static+upmlib performed {}",
            bench.label(),
            map.pages().len(),
            map.flip_pages().len(),
            map.residual_migrations(),
            hybrid_migrations
        ));
        if let (Some(base), Some(st)) = (base, find("static", "IRIX")) {
            static_vs_ft.push(st.total_secs / base.total_secs);
        }
        if let (Some(ft_upm), Some(hy)) = (find("ft", "upmlib"), find("static", "upmlib")) {
            hybrid_vs_upm.push(hy.total_secs / ft_upm.total_secs);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    if !static_vs_ft.is_empty() {
        report.note(format!(
            "average static-IRIX vs ft-IRIX: {} — the offline prescription alone, no runtime engine",
            pct(avg(&static_vs_ft))
        ));
    }
    if !hybrid_vs_upm.is_empty() {
        report.note(format!(
            "average static-upmlib vs ft-upmlib: {} — what the engine adds once placement starts converged",
            pct(avg(&hybrid_vs_upm))
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_placement_matches_or_beats_first_touch() {
        // The synthesized map reproduces UPMlib's converged placement, so
        // running it cold (no engine) must not lose to plain first-touch
        // by more than noise, and the hybrid must not add migrations over
        // what ft+upmlib performs (it starts where the engine would end).
        let results = four_way(BenchName::Mg, Scale::Tiny);
        assert_eq!(results.len(), CELLS_PER_BENCH);
        let find = |label: &str| {
            results
                .iter()
                .find(|r| r.label() == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let ft = find("ft-IRIX");
        let st = find("static-IRIX");
        assert!(
            st.total_secs <= ft.total_secs * 1.05,
            "static-IRIX ({}) should not lose to ft-IRIX ({})",
            st.total_secs,
            ft.total_secs
        );
        let ft_upm = find("ft-upmlib");
        let hy = find("static-upmlib");
        let m = |r: &RunResult| {
            r.upm
                .as_ref()
                .map(|s| s.total_distribution_migrations())
                .unwrap_or(0)
        };
        assert!(
            m(hy) <= m(ft_upm),
            "hybrid migrations ({}) should not exceed ft+upmlib ({})",
            m(hy),
            m(ft_upm)
        );
        assert!(results.iter().all(|r| r.verification.passed));
    }
}
