//! The global experiment seed (the binary's `--seed N` flag).
//!
//! One seed feeds every seeded component of a run — today the random page
//! placement scheme — so experiments stay deterministic for a given seed
//! but are sweepable across seeds. The default, [`DEFAULT_SEED`], is the
//! value every published table in EXPERIMENTS.md was generated with.

use std::sync::atomic::{AtomicU64, Ordering};

/// The seed used when `--seed` is not given (documented in EXPERIMENTS.md).
pub const DEFAULT_SEED: u64 = 20000;

static SEED: AtomicU64 = AtomicU64::new(DEFAULT_SEED);

/// Install the experiment seed (the binary calls this before dispatching).
pub fn set(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
}

/// The current experiment seed.
pub fn get() -> u64 {
    SEED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_then_set_then_read() {
        // Single test so no other seed test races this one.
        assert_eq!(get(), DEFAULT_SEED);
        set(777);
        assert_eq!(get(), 777);
        set(DEFAULT_SEED);
        assert_eq!(get(), DEFAULT_SEED);
    }
}
