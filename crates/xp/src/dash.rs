//! Live TTY dashboard for multi-cell sweeps.
//!
//! While a [`crate::cells::CellPlan`] runs, a background thread polls the
//! pool's [`exec::PoolMonitor`] and paints one status line on stderr:
//! cells done/running/failed, a per-worker utilization bar, simulated
//! throughput (sim-secs per host second) and a naive ETA. The line is
//! redrawn in place with `\r` on a TTY; on a plain pipe (CI logs) it
//! degrades to a full log line every couple of seconds, and short runs
//! print nothing at all.
//!
//! Everything goes to **stderr** and never into a saved report, so the
//! `--jobs 1` vs `--jobs 4` result trees stay byte-identical. Set
//! `XP_DASH=0` to silence it entirely, `XP_DASH=tty` to force the TTY
//! renderer (useful for eyeballing the escape codes through a pipe).

use exec::PoolMonitor;
use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Utilization glyphs, roughly 0%..100% busy.
const BARS: &[u8] = b" .:-=+*#%@";

/// How often the TTY renderer repaints.
const TTY_PERIOD: Duration = Duration::from_millis(100);

/// How often the plain-log fallback emits a line (and the minimum run
/// length before it says anything).
const PLAIN_PERIOD: Duration = Duration::from_secs(2);

/// Handle to a running dashboard thread; [`Dash::finish`] stops it.
pub(crate) struct Dash {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Dash {
    /// Stop polling, join the thread, and (on a TTY) clear the status
    /// line so subsequent report output starts on a clean row.
    pub(crate) fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Spawn the dashboard for a plan of `total` cells, or `None` when a
/// dashboard would be noise (single-cell plans, `XP_DASH=0`).
pub(crate) fn spawn(
    monitor: PoolMonitor,
    total: usize,
    sim_done_us: Arc<AtomicU64>,
) -> Option<Dash> {
    let mode = std::env::var("XP_DASH").unwrap_or_default();
    if total < 2 || mode == "0" {
        return None;
    }
    let tty = mode == "tty" || std::io::stderr().is_terminal();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("xp-dash".into())
        .spawn(move || run(monitor, total, sim_done_us, stop_flag, tty))
        .ok()?;
    Some(Dash { stop, handle })
}

fn run(
    monitor: PoolMonitor,
    total: usize,
    sim_done_us: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    tty: bool,
) {
    let t0 = Instant::now();
    let period = if tty { TTY_PERIOD } else { PLAIN_PERIOD };
    let mut next = t0 + period;
    let mut painted = false;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if Instant::now() >= next {
            next += period;
            if let Some(line) = render(&monitor, total, &sim_done_us, t0) {
                if tty {
                    eprint!("\r\x1b[2K{line}");
                    let _ = std::io::stderr().flush();
                    painted = true;
                } else {
                    eprintln!("{line}");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if tty && painted {
        eprint!("\r\x1b[2K");
        let _ = std::io::stderr().flush();
    }
}

/// One status line, or `None` when the monitor has no active run.
fn render(
    monitor: &PoolMonitor,
    total: usize,
    sim_done_us: &AtomicU64,
    t0: Instant,
) -> Option<String> {
    let status = monitor.status()?;
    let running = status
        .started
        .saturating_sub(status.finished + status.failed);
    let done = status.finished + status.failed;
    let bars: String = status
        .workers
        .iter()
        .map(|w| {
            let i = (w.busy_fraction * (BARS.len() - 1) as f64).round() as usize;
            BARS[i.min(BARS.len() - 1)] as char
        })
        .collect();
    let busy: f64 = if status.workers.is_empty() {
        0.0
    } else {
        status.workers.iter().map(|w| w.busy_fraction).sum::<f64>() / status.workers.len() as f64
    };
    let elapsed = t0.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 {
        sim_done_us.load(Ordering::Relaxed) as f64 / 1e6 / elapsed
    } else {
        0.0
    };
    let eta = if done > 0 && done < total {
        let per_cell = elapsed / done as f64;
        fmt_secs(per_cell * (total - done) as f64)
    } else {
        "--".to_string()
    };
    let mut line = format!(
        "[xp] {done}/{total} cells ({running} running, {failed} failed) | workers [{bars}] {busy:3.0}% | {rate:.2} sim-s/s | ETA {eta}",
        failed = status.failed,
        busy = busy * 100.0,
    );
    if line.len() > 120 {
        line.truncate(120);
    }
    Some(line)
}

fn fmt_secs(s: f64) -> String {
    if s >= 90.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_plans_get_no_dashboard() {
        assert!(spawn(PoolMonitor::new(), 1, Arc::new(AtomicU64::new(0))).is_none());
    }

    #[test]
    fn render_without_an_active_run_is_silent() {
        let monitor = PoolMonitor::new();
        assert!(render(&monitor, 4, &AtomicU64::new(0), Instant::now()).is_none());
    }

    #[test]
    fn eta_formatting_covers_both_branches() {
        assert_eq!(fmt_secs(42.0), "42s");
        assert_eq!(fmt_secs(150.0), "2m30s");
    }
}
