//! Table 2: statistics of the UPMlib engine under the three non-optimal
//! placement schemes — the residual slowdown in the last 75% of the
//! iterations (is the memory performance stable once the engine settles?)
//! and the fraction of page migrations performed after the first iteration
//! (is the migration cost concentrated at the start?).
//!
//! Paper values: residual slowdown always < 2.7%; first-iteration migration
//! share 100% for CG/FT/MG and >= 78% for BT/SP.

use crate::report::{pct, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// Per-benchmark, per-scheme Table 2 entries.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark.
    pub bench: BenchName,
    /// Placement label.
    pub placement: String,
    /// Mean per-iteration time over the last 75% of iterations, relative to
    /// the ft-IRIX run's same statistic.
    pub last75_slowdown: f64,
    /// Fraction of distribution migrations in the engine's first
    /// invocation.
    pub first_iter_fraction: f64,
}

/// Compute Table 2 rows for one benchmark.
pub fn rows_for(bench: BenchName, scale: Scale) -> Vec<Table2Row> {
    let (_, upm_opts) = default_engine_configs();
    let ft = run_one(
        bench,
        scale,
        &RunConfig {
            placement: PlacementScheme::FirstTouch,
            ..RunConfig::paper_default()
        },
    );
    let ft_last75 = ft.last75_mean_secs();
    let schemes = [
        PlacementScheme::RoundRobin,
        PlacementScheme::Random {
            seed: crate::seed::get(),
        },
        PlacementScheme::WorstCase { node: 0 },
    ];
    schemes
        .iter()
        .map(|&placement| {
            let r: RunResult = run_one(
                bench,
                scale,
                &RunConfig {
                    placement,
                    engine: EngineMode::Upmlib(upm_opts),
                    ..RunConfig::paper_default()
                },
            );
            let stats = r.upm.as_ref().expect("upmlib runs carry stats");
            Table2Row {
                bench,
                placement: placement.label().to_string(),
                last75_slowdown: r.last75_mean_secs() / ft_last75,
                first_iter_fraction: stats.first_invocation_fraction(),
            }
        })
        .collect()
}

/// Run Table 2 for all five benchmarks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "table2",
        "UPMlib statistics: residual slowdown in the last 75% of iterations; share of migrations in the first iteration",
        &[
            "Benchmark",
            "Scheme",
            "Slowdown, last 75% (vs ft)",
            "Migrations in first invocation",
        ],
    );
    let mut worst_res = 0.0f64;
    let mut best_frac = 1.0f64;
    for bench in BenchName::all() {
        for row in rows_for(bench, scale) {
            worst_res = worst_res.max(row.last75_slowdown);
            best_frac = best_frac.min(row.first_iter_fraction);
            report.row(vec![
                bench.label().into(),
                row.placement,
                pct(row.last75_slowdown),
                format!("{:.0}%", row.first_iter_fraction * 100.0),
            ]);
        }
    }
    report.note(format!(
        "worst residual slowdown {} (paper: always < 2.7%); lowest first-invocation share {:.0}% (paper: >= 78%)",
        pct(worst_res),
        best_frac * 100.0
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_slowdown_is_small_once_settled() {
        // MG Tiny under round-robin + upmlib: after the engine settles, the
        // steady-state iterations should be close to first-touch speed.
        let rows = rows_for(BenchName::Mg, Scale::Tiny);
        let rr = rows.iter().find(|r| r.placement == "rr").unwrap();
        assert!(
            rr.last75_slowdown < 1.35,
            "residual slowdown too large: {}",
            rr.last75_slowdown
        );
        assert!(rr.first_iter_fraction > 0.0);
    }
}
