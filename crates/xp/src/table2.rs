//! Table 2: statistics of the UPMlib engine under the three non-optimal
//! placement schemes plus the lint-synthesized static placement — the
//! residual slowdown in the last 75% of the
//! iterations (is the memory performance stable once the engine settles?)
//! and the fraction of page migrations performed after the first iteration
//! (is the migration cost concentrated at the start?).
//!
//! Paper values: residual slowdown always < 2.7%; first-iteration migration
//! share 100% for CG/FT/MG and >= 78% for BT/SP.

use crate::cells::{CellOutput, CellPlan};
use crate::report::{pct, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// Per-benchmark, per-scheme Table 2 entries.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark.
    pub bench: BenchName,
    /// Placement label.
    pub placement: String,
    /// Mean per-iteration time over the last 75% of iterations, relative to
    /// the ft-IRIX run's same statistic.
    pub last75_slowdown: f64,
    /// Fraction of distribution migrations in the engine's first
    /// invocation.
    pub first_iter_fraction: f64,
}

/// Cells [`plan_for`] appends per benchmark: the ft-IRIX reference run
/// plus the three non-optimal schemes and the synthesized static placement
/// under UPMlib.
pub const CELLS_PER_BENCH: usize = 5;

/// Append one benchmark's Table 2 cells to `plan`: first the ft-IRIX
/// reference, then rr/rand/wc/static under UPMlib.
pub fn plan_for(plan: &mut CellPlan<RunResult>, bench: BenchName, scale: Scale) {
    let (_, upm_opts) = default_engine_configs();
    let ft_cfg = RunConfig {
        placement: PlacementScheme::FirstTouch,
        ..RunConfig::paper_default()
    };
    let ft_spec = crate::spec::plain(bench, scale, &ft_cfg);
    plan.add_cached(ft_spec, move || run_one(bench, scale, &ft_cfg));
    let schemes = vec![
        PlacementScheme::RoundRobin,
        PlacementScheme::Random {
            seed: crate::seed::get(),
        },
        PlacementScheme::WorstCase { node: 0 },
        // static+UPMlib: how much work is left for the engine when the
        // initial placement is already the synthesized prescription?
        crate::lint::static_scheme(bench, scale),
    ];
    for placement in schemes {
        let cfg = RunConfig {
            placement,
            engine: EngineMode::Upmlib(upm_opts),
            ..RunConfig::paper_default()
        };
        let spec = crate::spec::plain(bench, scale, &cfg);
        plan.add_cached(spec, move || run_one(bench, scale, &cfg));
    }
}

/// Build one benchmark's rows from its executed cells (ft first).
fn merge_rows(bench: BenchName, ft: &RunResult, schemes: &[&RunResult]) -> Vec<Table2Row> {
    let ft_last75 = ft.last75_mean_secs();
    schemes
        .iter()
        .map(|r| {
            let stats = r.upm.as_ref().expect("upmlib runs carry stats");
            Table2Row {
                bench,
                placement: r.placement.clone(),
                last75_slowdown: r.last75_mean_secs() / ft_last75,
                first_iter_fraction: stats.first_invocation_fraction(),
            }
        })
        .collect()
}

/// Compute Table 2 rows for one benchmark (host-parallel; panics on a
/// failed cell — `run` consumes the plan with per-cell failure isolation).
pub fn rows_for(bench: BenchName, scale: Scale) -> Vec<Table2Row> {
    let mut plan = CellPlan::new();
    plan_for(&mut plan, bench, scale);
    let results: Vec<RunResult> = plan
        .execute()
        .into_iter()
        .map(CellOutput::expect_ok)
        .collect();
    merge_rows(bench, &results[0], &results[1..].iter().collect::<Vec<_>>())
}

/// Run Table 2 for all five benchmarks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "table2",
        "UPMlib statistics: residual slowdown in the last 75% of iterations; share of migrations in the first iteration",
        &[
            "Benchmark",
            "Scheme",
            "Slowdown, last 75% (vs ft)",
            "Migrations in first invocation",
        ],
    );
    let mut plan = CellPlan::new();
    for bench in BenchName::all() {
        plan_for(&mut plan, bench, scale);
    }
    let outputs = plan.execute();
    let mut worst_res = 0.0f64;
    let mut best_frac = 1.0f64;
    for (bench, chunk) in BenchName::all()
        .into_iter()
        .zip(outputs.chunks(CELLS_PER_BENCH))
    {
        let ft = match &chunk[0].value {
            Ok(r) => r,
            Err(p) => {
                // Without the reference run no slowdown is computable:
                // every row of this benchmark degrades to a failure note.
                for cell in chunk {
                    report.failed_row(&cell.id, &p.message);
                }
                continue;
            }
        };
        for cell in &chunk[1..] {
            let r = match &cell.value {
                Ok(r) => r,
                Err(p) => {
                    report.failed_row(&cell.id, &p.message);
                    continue;
                }
            };
            let rows = merge_rows(bench, ft, &[r]);
            let row = &rows[0];
            worst_res = worst_res.max(row.last75_slowdown);
            best_frac = best_frac.min(row.first_iter_fraction);
            report.row(vec![
                bench.label().into(),
                row.placement.clone(),
                pct(row.last75_slowdown),
                format!("{:.0}%", row.first_iter_fraction * 100.0),
            ]);
        }
    }
    report.note(format!(
        "worst residual slowdown {} (paper: always < 2.7%); lowest first-invocation share {:.0}% (paper: >= 78%)",
        pct(worst_res),
        best_frac * 100.0
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_slowdown_is_small_once_settled() {
        // MG Tiny under round-robin + upmlib: after the engine settles, the
        // steady-state iterations should be close to first-touch speed.
        let rows = rows_for(BenchName::Mg, Scale::Tiny);
        let rr = rows.iter().find(|r| r.placement == "rr").unwrap();
        assert!(
            rr.last75_slowdown < 1.35,
            "residual slowdown too large: {}",
            rr.last75_slowdown
        );
        assert!(rr.first_iter_fraction > 0.0);
    }
}
