//! The multiprogramming experiment (`xp multiprog`): job mixes under the
//! kernel scheduler, each policy x engine variant, reporting per-job
//! slowdown vs dedicated execution and remote-access fraction.
//!
//! This is the paper's closing argument made concrete: static first-touch
//! placement is tuned for whatever CPUs the threads first ran on, so a
//! time-sharing scheduler that migrates threads strands every page on the
//! wrong node — while a scheduler-aware UPMlib (re-armed after each rebind,
//! or replaying the tuned placement under the new binding) keeps pulling
//! pages back to the threads. Gang scheduling and space sharing bracket the
//! comparison from the locality-friendly side.

use crate::cells::CellPlan;
use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, Scale};
use sched::{
    Gang, JobSpec, Policy, SchedConfig, SchedOutcome, Scheduler, SpaceSharing, TimeSharing,
    UpmResponse,
};
use std::collections::BTreeMap;

/// One job mix.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Mix label used in the table.
    pub name: &'static str,
    /// The jobs, in submission order; all arrive at time zero.
    pub benches: &'static [BenchName],
}

/// The experiment's job mixes: a homogeneous pair, a heterogeneous pair,
/// and a four-job mix.
pub fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "2xCG",
            benches: &[BenchName::Cg, BenchName::Cg],
        },
        Mix {
            name: "CG+MG",
            benches: &[BenchName::Cg, BenchName::Mg],
        },
        Mix {
            name: "2xCG+2xMG",
            benches: &[BenchName::Cg, BenchName::Mg, BenchName::Cg, BenchName::Mg],
        },
    ]
}

/// Scheduling policy selector (fresh policy instance per schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    Gang,
    SpaceSharing,
    TimeSharing,
}

impl PolicyKind {
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::Gang,
            PolicyKind::SpaceSharing,
            PolicyKind::TimeSharing,
        ]
    }

    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Gang => "gang",
            PolicyKind::SpaceSharing => "space",
            PolicyKind::TimeSharing => "timeshare",
        }
    }

    /// Build the policy for one schedule at `scale`.
    pub fn make(&self, scale: Scale) -> Box<dyn Policy> {
        match self {
            PolicyKind::Gang => Box::new(Gang),
            PolicyKind::SpaceSharing => Box::new(SpaceSharing),
            PolicyKind::TimeSharing => Box::new(TimeSharing {
                stride: rotation_stride(scale),
                period: rotation_period(scale),
            }),
        }
    }
}

/// Time-sharing rotation period (quanta between rotations) by scale.
///
/// The binding should survive long enough that a migration engine can
/// pay for moving the hot pages after the threads out of one rotation
/// period's CPU grant. Tiny jobs run ~2 ms against a ~60 us/page
/// migration cost, so whole-hot-set moves cannot pay off there at any
/// period that still rotates within a job — the tiny table shows the
/// machinery thrashing, the larger scales show it recovering.
pub fn rotation_period(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 24,
        Scale::Small => 16,
        Scale::Medium => 24,
    }
}

/// Time-sharing rotation stride (CPUs the partition shifts per rotation)
/// by scale. Always a multiple of the Origin2000's 2 CPUs per node, so
/// node populations land on nodes. At medium the shift is two nodes: a
/// load balancer that has been running a while places threads wherever
/// CPUs are free, not next door — and a two-node shift leaves the stranded
/// pages of a migration-less job at distance 2 in the hypercube, which is
/// what static first-touch placement actually costs under time sharing.
pub fn rotation_stride(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2,
        Scale::Small => 2,
        Scale::Medium => 4,
    }
}

/// One migration-machinery variant: the per-job engine plus the
/// scheduler-aware UPMlib response mode.
#[derive(Debug, Clone)]
pub struct EngineVariant {
    /// Column label.
    pub label: &'static str,
    /// Per-job engine mode.
    pub engine: EngineMode,
    /// UPMlib response to scheduler rebinds.
    pub response: UpmResponse,
    /// Install the lint-synthesized static placement instead of first
    /// touch. Static maps are node-anchored, not thread-anchored, so a
    /// rebinding scheduler strands them exactly like first touch — the
    /// multiprogramming stress test the offline tool cannot answer.
    pub static_placement: bool,
}

/// The experiment's engine variants: no migration, the IRIX kernel engine,
/// UPMlib with each scheduler-aware response mode, and the synthesized
/// static placement with no engine.
pub fn engine_variants() -> Vec<EngineVariant> {
    let (kcfg, upm_opts) = default_engine_configs();
    vec![
        EngineVariant {
            label: "IRIX",
            engine: EngineMode::None,
            response: UpmResponse::None,
            static_placement: false,
        },
        EngineVariant {
            label: "IRIXmig",
            engine: EngineMode::IrixMig(kcfg),
            response: UpmResponse::None,
            static_placement: false,
        },
        EngineVariant {
            label: "upmlib-relearn",
            engine: EngineMode::Upmlib(upm_opts),
            response: UpmResponse::ForgetRelearn,
            static_placement: false,
        },
        EngineVariant {
            label: "upmlib-follow",
            engine: EngineMode::Upmlib(upm_opts),
            response: UpmResponse::FollowThreads,
            static_placement: false,
        },
        EngineVariant {
            label: "static",
            engine: EngineMode::None,
            response: UpmResponse::None,
            static_placement: true,
        },
    ]
}

/// Quantum length by scale, sized so each job spans tens of quanta — and
/// therefore several time-sharing rotations (one per
/// [`sched::TimeSharing::period`] quanta) — with a few iterations between
/// rotations for a migration engine to react to.
pub fn quantum_ns(scale: Scale) -> f64 {
    match scale {
        Scale::Tiny => 0.05e6,
        Scale::Small => 0.5e6,
        Scale::Medium => 5.0e6,
    }
}

/// The per-job run configuration for one engine mode (first-touch
/// placement, the dedicated-baseline shape).
pub fn job_config(engine: &EngineMode) -> RunConfig {
    RunConfig {
        engine: engine.clone(),
        ..RunConfig::paper_default()
    }
}

/// The per-job run configuration for one engine variant: `job_config`,
/// with the synthesized static placement for `static_placement` variants
/// (a function of the job's benchmark and scale).
pub fn variant_config(variant: &EngineVariant, bench: BenchName, scale: Scale) -> RunConfig {
    let mut cfg = job_config(&variant.engine);
    if variant.static_placement {
        cfg.placement = crate::lint::static_scheme(bench, scale);
    }
    cfg
}

/// Run one mix under one policy and engine variant.
pub fn run_schedule(
    mix: &Mix,
    kind: PolicyKind,
    variant: &EngineVariant,
    scale: Scale,
) -> SchedOutcome {
    let mut s = Scheduler::new(
        kind.make(scale),
        SchedConfig {
            quantum_ns: quantum_ns(scale),
            ..SchedConfig::default()
        },
    );
    for &bench in mix.benches {
        s.submit(
            JobSpec::new(bench, scale, variant_config(variant, bench, scale))
                .with_response(variant.response),
        );
    }
    let outcome = s.run_to_completion();
    crate::summary::add_sim_secs(outcome.makespan_secs);
    outcome
}

/// The `xp multiprog` experiment.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "multiprog",
        "Multiprogrammed job mixes under the kernel scheduler: per-job slowdown vs dedicated execution",
        &[
            "Mix",
            "Policy",
            "Engine",
            "Job",
            "Turnaround (s)",
            "Slowdown",
            "Remote frac",
            "Thread migs",
        ],
    );
    // Dedicated baselines: one per benchmark — the first-touch run with no
    // engine on the whole machine. A single common reference makes the
    // engine variants directly comparable: slowdown answers "what does
    // multiprogramming cost this strategy?", not "how far is it from its
    // own (engine-tuned) dedicated run", which would penalize UPMlib for
    // being faster than first-touch when dedicated.
    // Phase 1: the dedicated baselines, one cell per distinct benchmark.
    // A missing baseline makes every slowdown of that benchmark
    // uncomputable, so a baseline failure is fatal (`expect_ok`), unlike
    // the per-schedule cells below.
    let mut bench_order: Vec<BenchName> = Vec::new();
    for mix in mixes() {
        for &bench in mix.benches {
            if !bench_order.contains(&bench) {
                bench_order.push(bench);
            }
        }
    }
    let mut base_plan = CellPlan::new();
    for &bench in &bench_order {
        base_plan.add(
            format!("dedicated:{}", bench.label().to_ascii_lowercase()),
            move || run_one(bench, scale, &job_config(&EngineMode::None)).total_secs,
        );
    }
    let mut dedicated: BTreeMap<String, f64> = BTreeMap::new();
    for (bench, cell) in bench_order.iter().zip(base_plan.execute()) {
        dedicated.insert(bench.label().to_string(), cell.expect_ok());
    }
    // Phase 2: one cell per (mix, policy, engine variant) schedule.
    let variants = engine_variants();
    let mut plan = CellPlan::new();
    for mix in mixes() {
        for kind in PolicyKind::all() {
            for variant in variants.clone() {
                plan.add(
                    format!("{}:{}-{}", mix.name, kind.label(), variant.label),
                    move || run_schedule(&mix, kind, &variant, scale),
                );
            }
        }
    }
    let mut outputs = plan.execute().into_iter();
    // (mix, policy, engine) -> mean slowdown, for the qualitative notes.
    let mut mean_slowdown: BTreeMap<(String, &'static str, &'static str), f64> = BTreeMap::new();
    for mix in mixes() {
        for kind in PolicyKind::all() {
            for variant in &variants {
                let cell = outputs.next().expect("one cell per (mix, policy, variant)");
                let outcome = match &cell.value {
                    Ok(o) => o,
                    Err(p) => {
                        report.failed_row(&cell.id, &p.message);
                        continue;
                    }
                };
                let mut slowdowns = Vec::new();
                for j in &outcome.jobs {
                    let base = dedicated[j.bench.label()];
                    let slowdown = j.turnaround_secs / base;
                    slowdowns.push(slowdown);
                    report.row(vec![
                        mix.name.into(),
                        kind.label().into(),
                        variant.label.into(),
                        format!("{}#{}", j.bench.label(), j.job),
                        secs(j.turnaround_secs),
                        format!("{slowdown:.2}x"),
                        format!("{:.3}", j.result.remote_fraction),
                        j.thread_migrations.to_string(),
                    ]);
                    assert!(
                        j.result.verification.passed,
                        "{} job {} failed verification under {}/{}/{}: value {:e} vs reference {:e}",
                        j.bench.label(),
                        j.job,
                        mix.name,
                        kind.label(),
                        variant.label,
                        j.result.verification.value,
                        j.result.verification.reference,
                    );
                }
                mean_slowdown.insert(
                    (mix.name.to_string(), kind.label(), variant.label),
                    slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
                );
            }
        }
    }
    for mix in mixes() {
        let get = |engine: &'static str| {
            mean_slowdown
                .get(&(mix.name.to_string(), "timeshare", engine))
                .copied()
        };
        if let (Some(none), Some(stat)) = (get("IRIX"), get("static")) {
            report.note(format!(
                "{}: time-sharing mean slowdown {} (static placement) vs {} (first touch) — \
                 both are node-anchored, so the offline prescription cannot follow rebound threads",
                mix.name,
                pct(stat),
                pct(none),
            ));
        }
        if let (Some(none), Some(relearn), Some(follow)) =
            (get("IRIX"), get("upmlib-relearn"), get("upmlib-follow"))
        {
            report.note(format!(
                "{}: time-sharing mean slowdown {} (no migration) vs {} (upmlib re-arm) vs {} (upmlib follow) — {}",
                mix.name,
                pct(none),
                pct(relearn),
                pct(follow),
                if none > relearn {
                    "static first-touch degrades more; scheduler-aware migration recovers"
                } else {
                    "migration does not pay off here (jobs too short for the rotation period)"
                }
            ));
        }
    }
    report.note(format!(
        "quantum {:.2} ms on the simulated clock; seed {}; slowdown = turnaround / dedicated first-touch run of the benchmark (no engine, whole machine)",
        quantum_ns(scale) * 1e-6,
        crate::seed::get(),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeshare_schedule_runs_and_migrates() {
        // The four-job mix runs long enough at tiny scale to span a
        // rotation (the two-job mixes finish before the first one).
        let mix = Mix {
            name: "2xCG+2xMG",
            benches: &[BenchName::Cg, BenchName::Mg, BenchName::Cg, BenchName::Mg],
        };
        let variant = &engine_variants()[0];
        let out = run_schedule(&mix, PolicyKind::TimeSharing, variant, Scale::Tiny);
        assert_eq!(out.jobs.len(), 4);
        assert!(out.thread_migrations > 0);
        for j in &out.jobs {
            assert!(j.result.verification.passed);
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        let mix = Mix {
            name: "CG+MG",
            benches: &[BenchName::Cg, BenchName::Mg],
        };
        let variants = engine_variants();
        let relearn = &variants[2];
        let run = || {
            let out = run_schedule(&mix, PolicyKind::TimeSharing, relearn, Scale::Tiny);
            (
                out.quanta,
                out.thread_migrations,
                out.makespan_secs.to_bits(),
                out.jobs
                    .iter()
                    .map(|j| j.turnaround_secs.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
