//! Figure 4: the Figure 1 grid extended with the UPMlib iterative page
//! migration engine (`*-upmlib` bars).
//!
//! The paper's shape: with UPMlib enabled, the slowdown of non-optimal
//! placements versus first-touch collapses — on average ~5% (rr), ~6%
//! (rand), ~14% (wc) — and under first-touch UPMlib even *gains* 6–22% on
//! most codes by fixing the pages first-touch put in the wrong place.

use crate::cells::{CellOutput, CellPlan};
use crate::fig1::{grid_width, plan_grid};
use crate::report::{pct, secs, Report};
use nas::{BenchName, RunResult, Scale};

/// Run Figure 4 for all five benchmarks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig4",
        "Performance of the UPMlib page migration engine under the five placement schemes",
        &[
            "Benchmark",
            "Config",
            "Time (s)",
            "vs ft-IRIX",
            "UPM migrations",
            "Verified",
        ],
    );
    let mut plan = CellPlan::new();
    for bench in BenchName::all() {
        plan_grid(&mut plan, bench, scale, true);
    }
    let outputs = plan.execute();
    let mut upm_slow: Vec<(String, f64)> = Vec::new();
    for (bench, chunk) in BenchName::all()
        .into_iter()
        .zip(outputs.chunks(grid_width(true)))
    {
        let ok: Vec<&RunResult> = chunk.iter().filter_map(CellOutput::ok).collect();
        let base = ok
            .iter()
            .find(|r| r.placement == "ft" && r.engine == "IRIX")
            .map(|r| r.total_secs);
        report.chart(
            &format!(
                "NAS {} with UPMlib (execution time, simulated seconds)",
                bench.label()
            ),
            ok.iter()
                .map(|r| crate::report::Bar {
                    label: r.label(),
                    value: r.total_secs,
                })
                .collect(),
        );
        for cell in chunk {
            let r = match &cell.value {
                Ok(r) => r,
                Err(p) => {
                    report.failed_row(&cell.id, &p.message);
                    continue;
                }
            };
            let ratio = base.map(|b| r.total_secs / b);
            if let Some(ratio) = ratio {
                if r.engine == "upmlib" && r.placement != "ft" {
                    upm_slow.push((r.placement.clone(), ratio));
                }
            }
            let migrations = r
                .upm
                .as_ref()
                .map(|s| s.total_distribution_migrations().to_string())
                .unwrap_or_else(|| "-".into());
            report.row(vec![
                bench.label().into(),
                r.label(),
                secs(r.total_secs),
                ratio.map(pct).unwrap_or_else(|| "-".into()),
                migrations,
                if r.verification.passed {
                    "ok".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
    }
    for scheme in ["rr", "rand", "wc", "static"] {
        let v: Vec<f64> = upm_slow
            .iter()
            .filter(|(s, _)| s == scheme)
            .map(|&(_, r)| r)
            .collect();
        if !v.is_empty() {
            let avg = v.iter().sum::<f64>() / v.len() as f64;
            let paper = match scheme {
                "rr" => "~5%",
                "rand" => "~6%",
                "wc" => "~14%",
                // The paper had no static-placement tool; this column is
                // the question it left open (see `xp staticplace`).
                _ => "not run",
            };
            report.note(format!(
                "average {scheme}-upmlib slowdown vs ft-IRIX: {} (paper: {paper})",
                pct(avg)
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use crate::fig1;
    use nas::{BenchName, Scale};

    #[test]
    fn upmlib_recovers_worst_case() {
        // The paper's headline: wc-upmlib is dramatically better than
        // wc-IRIX and lands near ft-IRIX.
        let results = fig1::grid(BenchName::Cg, Scale::Small, true);
        let base = fig1::baseline_secs(&results);
        let find = |label: &str| results.iter().find(|r| r.label() == label).unwrap();
        let wc_plain = find("wc-IRIX");
        let wc_upm = find("wc-upmlib");
        assert!(
            wc_upm.total_secs < wc_plain.total_secs,
            "upmlib ({}) must improve on plain worst-case ({})",
            wc_upm.total_secs,
            wc_plain.total_secs
        );
        // Once the engine settles (the paper's Table 2 view), per-iteration
        // time approaches the first-touch baseline; the total still carries
        // the slow pre-migration first iteration.
        let ft = find("ft-IRIX");
        assert!(
            wc_upm.last75_mean_secs() < ft.last75_mean_secs() * 1.3,
            "settled wc-upmlib ({}) should approach settled ft-IRIX ({})",
            wc_upm.last75_mean_secs(),
            ft.last75_mean_secs()
        );
        let _ = base;
    }
}
