//! The `CellPlan → execute → Report` pipeline every experiment runs on.
//!
//! An experiment is a grid of independent **cells** — `(benchmark,
//! placement, engine, scale, seed)` points, each of which builds its own
//! simulated machine. A [`CellPlan`] is the ordered list of those cells;
//! [`CellPlan::execute`] fans them out over the [`exec`] work-stealing
//! pool (`--jobs N` workers, see [`crate::jobs`]) and hands back one
//! [`CellOutput`] per cell **in plan order**, so the report a caller
//! builds from the outputs is byte-identical whatever the worker count.
//!
//! The pipeline preserves the two process-global side channels that used
//! to be updated mid-run, by making them cell-local and re-playing them
//! at merge time in plan order:
//!
//! * **Simulated seconds** ([`crate::summary`]): `add_sim_secs` calls made
//!   while a cell runs are credited to that cell's context and added to
//!   the global accumulator at merge, so the final sum is a fixed-order
//!   float reduction — bit-identical across worker counts.
//! * **Trace dumps** ([`crate::trace`]): `--trace DIR` dumps are buffered
//!   per cell and written at merge, so trace file sequence numbers follow
//!   plan order, not scheduling order.
//!
//! Each cell additionally runs under `catch_unwind`: a panicking cell
//! surfaces as an `Err` output (a failed *row* in the report), never a
//! dead run, and never poisons sibling cells.

use exec::{Job, JobPanic, Pool, PoolMonitor};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-cell context, installed on the worker thread for the duration of
/// one cell: collects what the cell's runs credit to the process-globals.
#[derive(Default)]
struct CellCtx {
    sim_secs: f64,
    traces: Vec<crate::trace::PendingTrace>,
}

thread_local! {
    static CTX: RefCell<Option<CellCtx>> = const { RefCell::new(None) };
}

/// Credit simulated seconds to the active cell, if any. Returns `false`
/// when no cell is active (caller falls back to the process-global).
pub(crate) fn credit_sim_secs(secs: f64) -> bool {
    CTX.with(|ctx| match ctx.borrow_mut().as_mut() {
        Some(c) => {
            c.sim_secs += secs;
            true
        }
        None => false,
    })
}

/// Defer a trace dump to the active cell's buffer, if any. Returns the
/// trace back when no cell is active (caller writes it immediately).
pub(crate) fn defer_trace(trace: crate::trace::PendingTrace) -> Option<crate::trace::PendingTrace> {
    CTX.with(|ctx| match ctx.borrow_mut().as_mut() {
        Some(c) => {
            c.traces.push(trace);
            None
        }
        None => Some(trace),
    })
}

/// What one executed cell produced, before the merge replays its side
/// effects. The cell's wall time is **not** here: the pool measures it
/// around the whole job ([`exec::TimedResult`]), so it exists even when
/// the wrapper itself dies.
struct CellRun<T> {
    value: Result<T, String>,
    sim_secs: f64,
    traces: Vec<crate::trace::PendingTrace>,
}

/// One merged cell result, in plan order.
#[derive(Debug)]
pub struct CellOutput<T> {
    /// The cell's plan id (e.g. `cg:wc-upmlib`).
    pub id: String,
    /// The cell's value, or the panic that killed it.
    pub value: Result<T, JobPanic>,
    /// Host wall-clock seconds the cell took on its worker.
    pub wall_secs: f64,
}

impl<T> CellOutput<T> {
    /// The value, panicking with the cell's id on a failed cell — for
    /// callers (tests, helper APIs) that require a complete grid.
    pub fn expect_ok(self) -> T {
        match self.value {
            Ok(v) => v,
            Err(p) => panic!("cell {} failed: {}", self.id, p.message),
        }
    }

    /// The value as `Option`, dropping the panic.
    pub fn ok(&self) -> Option<&T> {
        self.value.as_ref().ok()
    }
}

/// An ordered list of independent experiment cells.
pub struct CellPlan<'a, T> {
    cells: Vec<(String, Job<'a, T>)>,
}

impl<'a, T: Send + 'a> Default for CellPlan<'a, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, T: Send + 'a> CellPlan<'a, T> {
    /// An empty plan.
    pub fn new() -> Self {
        CellPlan { cells: Vec::new() }
    }

    /// Append a cell. `id` names the cell in failed rows and diagnostics;
    /// the position in the plan is the cell's canonical merge position.
    pub fn add(&mut self, id: impl Into<String>, job: impl FnOnce() -> T + Send + 'a) {
        self.cells.push((id.into(), Box::new(job)));
    }

    /// Number of cells planned.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Execute on a pool sized by [`crate::jobs::get`].
    pub fn execute(self) -> Vec<CellOutput<T>> {
        self.execute_on(&Pool::new(crate::jobs::get()))
    }

    /// Execute every cell on `pool` and merge: outputs come back in plan
    /// order, each cell's deferred sim-seconds and trace dumps are
    /// replayed in plan order, and the plan's wall-clock statistics are
    /// credited to [`crate::summary`].
    pub fn execute_on(self, pool: &Pool) -> Vec<CellOutput<T>> {
        let total = self.cells.len();
        let (ids, jobs): (Vec<String>, Vec<Job<'a, T>>) = self.cells.into_iter().unzip();
        // Completed simulated microseconds, fed live to the dashboard's
        // sim-secs/s throughput readout.
        let sim_done_us = Arc::new(AtomicU64::new(0));
        let wrapped: Vec<Job<'a, CellRun<T>>> = ids
            .iter()
            .cloned()
            .zip(jobs)
            .map(|(id, job)| {
                let sim_done_us = Arc::clone(&sim_done_us);
                Box::new(move || {
                    // Host-profiling root for this cell: every span the cell
                    // opens (ccnuma/vmm/omp/upmlib) nests under `cell:<id>`
                    // on this worker's stack, and the root's inclusive time
                    // reconciles with the pool-measured cell wall time.
                    let _hp = hostprof::span_named(|| format!("cell:{id}"));
                    CTX.with(|ctx| *ctx.borrow_mut() = Some(CellCtx::default()));
                    let value =
                        catch_unwind(AssertUnwindSafe(job)).map_err(|p| panic_message(p.as_ref()));
                    let ctx = CTX
                        .with(|ctx| ctx.borrow_mut().take())
                        .expect("cell context installed above");
                    sim_done_us.fetch_add((ctx.sim_secs * 1e6) as u64, Ordering::Relaxed);
                    CellRun {
                        value,
                        sim_secs: ctx.sim_secs,
                        traces: ctx.traces,
                    }
                }) as Job<'a, CellRun<T>>
            })
            .collect();
        let monitor = PoolMonitor::new();
        let dash = crate::dash::spawn(monitor.clone(), total, Arc::clone(&sim_done_us));
        let (runs, telemetry) = pool.run_timed(wrapped, Some(&monitor));
        if let Some(dash) = dash {
            dash.finish();
        }
        crate::summary::add_pool_wall(telemetry.wall_secs);
        let cell_walls: Vec<f64> = runs.iter().map(|t| t.wall_secs).collect();
        crate::telemetry::record_plan(&telemetry, &cell_walls);
        runs.into_iter()
            .zip(ids)
            .enumerate()
            .map(|(index, (timed, id))| {
                // The pool measured the wall time around the whole job, so a
                // panicking cell — even a dead *wrapper* — still reports how
                // long it ran before dying.
                let wall_secs = timed.wall_secs;
                // The wrapper catches the cell's panic itself, so a pool-level
                // Err means the wrapper died — re-surface it as a message.
                let run = timed.result.unwrap_or_else(|p| CellRun {
                    value: Err(p.message),
                    sim_secs: 0.0,
                    traces: Vec::new(),
                });
                crate::summary::add_sim_secs(run.sim_secs);
                crate::summary::add_cell_wall(wall_secs);
                for trace in run.traces {
                    crate::trace::write_pending(trace);
                }
                CellOutput {
                    id,
                    value: run.value.map_err(|message| JobPanic { index, message }),
                    wall_secs,
                }
            })
            .collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_follow_plan_order_for_any_worker_count() {
        for workers in [1usize, 2, 7] {
            let mut plan = CellPlan::new();
            for i in 0..13usize {
                plan.add(format!("cell-{i}"), move || i * i);
            }
            let out = plan.execute_on(&Pool::new(workers));
            let values: Vec<usize> = out.into_iter().map(|c| c.expect_ok()).collect();
            assert_eq!(values, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sim_secs_are_replayed_in_plan_order() {
        // Whatever order cells finish in, the merged accumulator sees the
        // same fixed-order float sum.
        let total = |workers: usize| {
            crate::summary::take_sim_secs();
            let mut plan = CellPlan::new();
            for i in 0..20usize {
                plan.add(format!("c{i}"), move || {
                    crate::summary::add_sim_secs(0.1 + (i as f64) * 1e-13);
                });
            }
            plan.execute_on(&Pool::new(workers));
            crate::summary::take_sim_secs().to_bits()
        };
        assert_eq!(total(1), total(5));
    }

    #[test]
    fn a_failed_cell_is_an_err_output_not_a_dead_plan() {
        let mut plan = CellPlan::new();
        plan.add("good-1", || 1usize);
        plan.add("bad", || panic!("boom"));
        plan.add("good-2", || 2usize);
        let out = plan.execute_on(&Pool::new(2));
        assert_eq!(out[0].ok(), Some(&1));
        let err = out[1].value.as_ref().unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.message.contains("boom"));
        assert_eq!(out[2].ok(), Some(&2));
    }
}
