//! The `CellPlan → execute → Report` pipeline every experiment runs on.
//!
//! An experiment is a grid of independent **cells** — `(benchmark,
//! placement, engine, scale, seed)` points, each of which builds its own
//! simulated machine. A [`CellPlan`] is the ordered list of those cells;
//! [`CellPlan::execute`] fans them out over the [`exec`] work-stealing
//! pool (`--jobs N` workers, see [`crate::jobs`]) and hands back one
//! [`CellOutput`] per cell **in plan order**, so the report a caller
//! builds from the outputs is byte-identical whatever the worker count.
//!
//! The pipeline preserves the two process-global side channels that used
//! to be updated mid-run, by making them cell-local and re-playing them
//! at merge time in plan order:
//!
//! * **Simulated seconds** ([`crate::summary`]): `add_sim_secs` calls made
//!   while a cell runs are credited to that cell's context and added to
//!   the global accumulator at merge, so the final sum is a fixed-order
//!   float reduction — bit-identical across worker counts.
//! * **Trace dumps** ([`crate::trace`]): `--trace DIR` dumps are buffered
//!   per cell and written at merge, so trace file sequence numbers follow
//!   plan order, not scheduling order.
//!
//! Each cell additionally runs under `catch_unwind`: a panicking cell
//! surfaces as an `Err` output (a failed *row* in the report), never a
//! dead run, and never poisons sibling cells.
//!
//! Cells added via [`CellPlan::add_cached`] carry a [`svc::CellSpec`] and
//! participate in the result service on top of the local pipeline.
//! Before anything is dispatched to a worker pool, `execute` resolves
//! spec-carrying cells against the installed result cache
//! ([`crate::cache`]) and, in client mode, offers the remainder to the
//! resident server as one batch ([`crate::remote`]); only the cells
//! neither source can satisfy are computed here. Resolved cells replay
//! their side effects at their canonical merge position, so a fully
//! cached run produces byte-identical artifacts to a cold one. When a
//! sweep session is open ([`crate::session`]), the residual computation
//! runs as a batch on the session's shared resident pool instead of a
//! plan-scoped pool.

use crate::cache::CellCodec;
use exec::{Job, JobPanic, Pool, PoolMonitor, PoolTelemetry, TimedResult, WorkerTelemetry};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-cell context, installed on the worker thread for the duration of
/// one cell: collects what the cell's runs credit to the process-globals.
#[derive(Default)]
struct CellCtx {
    sim_secs: f64,
    traces: Vec<crate::trace::PendingTrace>,
}

thread_local! {
    static CTX: RefCell<Option<CellCtx>> = const { RefCell::new(None) };
}

/// Credit simulated seconds to the active cell, if any. Returns `false`
/// when no cell is active (caller falls back to the process-global).
pub(crate) fn credit_sim_secs(secs: f64) -> bool {
    CTX.with(|ctx| match ctx.borrow_mut().as_mut() {
        Some(c) => {
            c.sim_secs += secs;
            true
        }
        None => false,
    })
}

/// Defer a trace dump to the active cell's buffer, if any. Returns the
/// trace back when no cell is active (caller writes it immediately).
pub(crate) fn defer_trace(trace: crate::trace::PendingTrace) -> Option<crate::trace::PendingTrace> {
    CTX.with(|ctx| match ctx.borrow_mut().as_mut() {
        Some(c) => {
            c.traces.push(trace);
            None
        }
        None => Some(trace),
    })
}

/// What one executed cell produced, before the merge replays its side
/// effects. The cell's wall time is **not** here: the pool measures it
/// around the whole job ([`exec::TimedResult`]), so it exists even when
/// the wrapper itself dies.
struct CellRun<T> {
    value: Result<T, String>,
    sim_secs: f64,
    traces: Vec<crate::trace::PendingTrace>,
}

/// One merged cell result, in plan order.
#[derive(Debug)]
pub struct CellOutput<T> {
    /// The cell's plan id (e.g. `cg:wc-upmlib`).
    pub id: String,
    /// The cell's value, or the panic that killed it.
    pub value: Result<T, JobPanic>,
    /// Host wall-clock seconds the cell took on its worker (0 for cells
    /// resolved from the cache or a server).
    pub wall_secs: f64,
}

impl<T> CellOutput<T> {
    /// The value, panicking with the cell's id on a failed cell — for
    /// callers (tests, helper APIs) that require a complete grid.
    pub fn expect_ok(self) -> T {
        match self.value {
            Ok(v) => v,
            Err(p) => panic!("cell {} failed: {}", self.id, p.message),
        }
    }

    /// The value as `Option`, dropping the panic.
    pub fn ok(&self) -> Option<&T> {
        self.value.as_ref().ok()
    }
}

/// One planned cell: id, the job that computes it, and — for cells the
/// result service can resolve — the spec naming it and the codec that
/// round-trips its value.
struct Cell<T> {
    id: String,
    spec: Option<svc::CellSpec>,
    codec: Option<CellCodec<T>>,
    job_state: CellState<T>,
}

/// Where one cell's value will come from, decided during resolution.
enum CellState<T> {
    /// Resolved without local computation (cache hit or server result).
    /// `store` marks server-computed values the local cache should keep.
    Resolved { value: T, store: bool },
    /// Still needs local computation.
    Pending(Job<'static, T>),
    /// The pending job has been moved to the worker pool.
    Dispatched,
}

/// An ordered list of independent experiment cells.
pub struct CellPlan<T> {
    cells: Vec<Cell<T>>,
}

impl<T: Send + 'static> Default for CellPlan<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> CellPlan<T> {
    /// An empty plan.
    pub fn new() -> Self {
        CellPlan { cells: Vec::new() }
    }

    /// Append a cell. `id` names the cell in failed rows and diagnostics;
    /// the position in the plan is the cell's canonical merge position.
    pub fn add(&mut self, id: impl Into<String>, job: impl FnOnce() -> T + Send + 'static) {
        self.cells.push(Cell {
            id: id.into(),
            spec: None,
            codec: None,
            job_state: CellState::Pending(Box::new(job)),
        });
    }

    /// Append a cell the result service can resolve: the spec is its
    /// cache key (and its id, via [`svc::CellSpec::cell_id`]), and `job`
    /// is the local computation of record when no cache or server
    /// satisfies it.
    pub fn add_cached(&mut self, spec: svc::CellSpec, job: impl FnOnce() -> T + Send + 'static)
    where
        T: crate::cache::CachePayload,
    {
        self.cells.push(Cell {
            id: spec.cell_id(),
            spec: Some(spec),
            codec: Some(crate::cache::codec_for::<T>()),
            job_state: CellState::Pending(Box::new(job)),
        });
    }

    /// Number of cells planned.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Execute with the process-wide machinery: cache and client
    /// resolution first, then the residual cells on the open sweep
    /// session's shared pool ([`crate::session`]) or, when no session is
    /// open, a plan-scoped pool sized by [`crate::jobs::get`].
    pub fn execute(self) -> Vec<CellOutput<T>> {
        match crate::session::active() {
            Some(session) => self.run(Executor::Resident(session)),
            None => self.run(Executor::Scoped(Pool::new(crate::jobs::get()))),
        }
    }

    /// Execute every residual cell on `pool` (cache/client resolution
    /// still applies) and merge: outputs come back in plan order, each
    /// cell's deferred sim-seconds and trace dumps are replayed in plan
    /// order, and the plan's wall-clock statistics are credited to
    /// [`crate::summary`].
    pub fn execute_on(self, pool: &Pool) -> Vec<CellOutput<T>> {
        self.run(Executor::Scoped(*pool))
    }

    fn run(self, executor: Executor) -> Vec<CellOutput<T>> {
        let cache = crate::cache::effective();
        let mut cells = self.cells;

        // Phase 1 — cache resolution. A lookup that decodes cleanly is a
        // hit; an undecodable payload is treated as a miss (the recompute
        // overwrites the entry at merge).
        if let Some(cache) = &cache {
            for cell in &mut cells {
                let (Some(spec), Some(codec)) = (&cell.spec, &cell.codec) else {
                    continue;
                };
                if let Some(value) = cache.lookup(spec).and_then(|p| (codec.decode)(&p).ok()) {
                    cell.state_resolve(value, false);
                }
            }
        }

        // Phase 2 — client dispatch: offer every still-pending
        // spec-carrying cell to the server as one batch. Failure is never
        // fatal at either granularity — a dead batch or a refused cell
        // just stays pending and computes locally. Traced runs never
        // dispatch: server results carry no tracer (same reason the cache
        // is bypassed).
        if let Some(client) = crate::remote::installed().filter(|_| crate::trace::dir().is_none()) {
            let indices: Vec<usize> = cells
                .iter()
                .enumerate()
                .filter(|(_, c)| matches!(c.job_state, CellState::Pending(_)) && c.spec.is_some())
                .map(|(i, _)| i)
                .collect();
            if !indices.is_empty() {
                let specs: Vec<svc::CellSpec> = indices
                    .iter()
                    .map(|&i| cells[i].spec.clone().expect("filtered on spec"))
                    .collect();
                let mut progress = crate::remote::Progress::new();
                match client.run_cells(&specs, |p| progress.update(p)) {
                    Ok(outcomes) => {
                        progress.finish(client.addr());
                        for (&i, outcome) in indices.iter().zip(outcomes) {
                            let codec = cells[i].codec.expect("spec cells carry a codec");
                            match outcome.result.and_then(|p| (codec.decode)(&p)) {
                                Ok(value) => {
                                    // Keep server-computed values in the
                                    // local cache too (when one is on).
                                    cells[i].state_resolve(value, cache.is_some());
                                }
                                Err(e) => {
                                    eprintln!("[svc] cell {}: {e}; computing locally", cells[i].id)
                                }
                            }
                        }
                    }
                    Err(e) => eprintln!("[svc] falling back to local execution: {e}"),
                }
            }
        }

        // Phase 3 — compute the residue on a worker pool.
        let sim_done_us = Arc::new(AtomicU64::new(0));
        let mut pending: Vec<Job<'static, CellRun<T>>> = Vec::new();
        for cell in &mut cells {
            let state = std::mem::replace(&mut cell.job_state, CellState::Dispatched);
            match state {
                CellState::Pending(job) => {
                    pending.push(wrap_cell(cell.id.clone(), job, Arc::clone(&sim_done_us)));
                }
                resolved => cell.job_state = resolved,
            }
        }
        let runs: Vec<TimedResult<CellRun<T>>> = if pending.is_empty() {
            Vec::new()
        } else {
            match &executor {
                Executor::Scoped(pool) => {
                    let total = pending.len();
                    let monitor = PoolMonitor::new();
                    let dash = crate::dash::spawn(monitor.clone(), total, Arc::clone(&sim_done_us));
                    let (runs, telemetry) = pool.run_timed(pending, Some(&monitor));
                    if let Some(dash) = dash {
                        dash.finish();
                    }
                    crate::summary::add_pool_wall(telemetry.wall_secs);
                    let cell_walls: Vec<f64> = runs.iter().map(|t| t.wall_secs).collect();
                    crate::telemetry::record_plan(&telemetry, &cell_walls);
                    runs
                }
                Executor::Resident(session) => run_resident(session, pending),
            }
        };

        // Phase 4 — merge in plan order. Resolved cells replay their side
        // effects here, at the exact position a computed run would have;
        // freshly computed spec-carrying cells are stored back.
        let mut runs = runs.into_iter();
        cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| match cell.job_state {
                CellState::Resolved { value, store } => {
                    if let Some(codec) = &cell.codec {
                        (codec.replay)(&value);
                    }
                    if store {
                        store_back(&cache, &cell.spec, &cell.codec, &value);
                    }
                    CellOutput {
                        id: cell.id,
                        value: Ok(value),
                        wall_secs: 0.0,
                    }
                }
                CellState::Dispatched => {
                    let timed = runs.next().expect("one pool result per pending cell");
                    // The pool measured the wall time around the whole
                    // job, so a panicking cell — even a dead *wrapper* —
                    // still reports how long it ran before dying.
                    let wall_secs = timed.wall_secs;
                    // The wrapper catches the cell's panic itself, so a
                    // pool-level Err means the wrapper died — re-surface
                    // it as a message.
                    let run = timed.result.unwrap_or_else(|p| CellRun {
                        value: Err(p.message),
                        sim_secs: 0.0,
                        traces: Vec::new(),
                    });
                    crate::summary::add_sim_secs(run.sim_secs);
                    crate::summary::add_cell_wall(wall_secs);
                    for trace in run.traces {
                        crate::trace::write_pending(trace);
                    }
                    if let Ok(value) = &run.value {
                        store_back(&cache, &cell.spec, &cell.codec, value);
                    }
                    CellOutput {
                        id: cell.id,
                        value: run.value.map_err(|message| JobPanic { index, message }),
                        wall_secs,
                    }
                }
                CellState::Pending(_) => unreachable!("pending cells were dispatched above"),
            })
            .collect()
    }
}

impl<T> Cell<T> {
    fn state_resolve(&mut self, value: T, store: bool) {
        self.job_state = CellState::Resolved { value, store };
    }
}

/// Which pool machinery executes the residual cells.
enum Executor {
    /// A plan-scoped pool: spawn, run this plan's batch, join.
    Scoped(Pool),
    /// The open sweep session's shared resident pool.
    Resident(Arc<crate::session::Session>),
}

/// Wrap one cell's job with the per-cell machinery: host-profiling root,
/// cell context for deferred side effects, and `catch_unwind`.
fn wrap_cell<T: Send + 'static>(
    id: String,
    job: Job<'static, T>,
    sim_done_us: Arc<AtomicU64>,
) -> Job<'static, CellRun<T>> {
    Box::new(move || {
        // Host-profiling root for this cell: every span the cell opens
        // (ccnuma/vmm/omp/upmlib) nests under `cell:<id>` on this
        // worker's stack, and the root's inclusive time reconciles with
        // the pool-measured cell wall time.
        let _hp = hostprof::span_named(|| format!("cell:{id}"));
        CTX.with(|ctx| *ctx.borrow_mut() = Some(CellCtx::default()));
        let value = catch_unwind(AssertUnwindSafe(job)).map_err(|p| panic_message(p.as_ref()));
        let ctx = CTX
            .with(|ctx| ctx.borrow_mut().take())
            .expect("cell context installed above");
        sim_done_us.fetch_add((ctx.sim_secs * 1e6) as u64, Ordering::Relaxed);
        CellRun {
            value,
            sim_secs: ctx.sim_secs,
            traces: ctx.traces,
        }
    })
}

/// Run one plan's residual cells as a batch on the session's shared
/// pool: type-erase through `Box<dyn Any + Send>`, downcast on the way
/// out, and synthesize the per-plan telemetry the scoped path gets from
/// `run_timed` so the `[pool]` footer still covers session-run plans.
fn run_resident<T: Send + 'static>(
    session: &crate::session::Session,
    pending: Vec<Job<'static, CellRun<T>>>,
) -> Vec<TimedResult<CellRun<T>>> {
    let total = pending.len();
    let t0 = std::time::Instant::now();
    let erased: Vec<exec::ResidentJob<crate::session::ErasedResult>> = pending
        .into_iter()
        .map(|job| {
            Box::new(move || Box::new(job()) as crate::session::ErasedResult)
                as exec::ResidentJob<crate::session::ErasedResult>
        })
        .collect();
    let handle = session.submit(erased);
    let runs: Vec<TimedResult<CellRun<T>>> = handle
        .wait_all()
        .into_iter()
        .map(|t| TimedResult {
            result: t.result.map(|boxed| {
                *boxed
                    .downcast::<CellRun<T>>()
                    .expect("session batch returns this plan's cell type")
            }),
            wall_secs: t.wall_secs,
            worker: t.worker,
        })
        .collect();
    let wall_secs = t0.elapsed().as_secs_f64();
    crate::summary::add_pool_wall(wall_secs);
    let mut workers = vec![
        WorkerTelemetry {
            jobs: 0,
            busy_secs: 0.0,
            steals_ok: 0,
            steals_fail: 0,
            queue_depth_mean: 0.0,
            queue_depth_max: 0,
        };
        session.workers()
    ];
    for t in &runs {
        if let Some(w) = workers.get_mut(t.worker) {
            w.jobs += 1;
            w.busy_secs += t.wall_secs;
        }
    }
    let telemetry = PoolTelemetry {
        wall_secs,
        jobs_total: total,
        jobs_failed: runs.iter().filter(|t| t.result.is_err()).count(),
        workers,
    };
    let cell_walls: Vec<f64> = runs.iter().map(|t| t.wall_secs).collect();
    crate::telemetry::record_plan(&telemetry, &cell_walls);
    runs
}

/// Store a freshly computed spec-carrying value back to the cache. A
/// store failure degrades the cache, not the run.
fn store_back<T>(
    cache: &Option<svc::Cache>,
    spec: &Option<svc::CellSpec>,
    codec: &Option<CellCodec<T>>,
    value: &T,
) {
    let (Some(cache), Some(spec), Some(codec)) = (cache, spec, codec) else {
        return;
    };
    if let Err(e) = cache.store(spec, &(codec.encode)(value)) {
        eprintln!("[cache] store failed for {spec}: {e}");
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_follow_plan_order_for_any_worker_count() {
        for workers in [1usize, 2, 7] {
            let mut plan = CellPlan::new();
            for i in 0..13usize {
                plan.add(format!("cell-{i}"), move || i * i);
            }
            let out = plan.execute_on(&Pool::new(workers));
            let values: Vec<usize> = out.into_iter().map(|c| c.expect_ok()).collect();
            assert_eq!(values, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sim_secs_are_replayed_in_plan_order() {
        // Whatever order cells finish in, the merged accumulator sees the
        // same fixed-order float sum.
        let total = |workers: usize| {
            crate::summary::take_sim_secs();
            let mut plan = CellPlan::new();
            for i in 0..20usize {
                plan.add(format!("c{i}"), move || {
                    crate::summary::add_sim_secs(0.1 + (i as f64) * 1e-13);
                });
            }
            plan.execute_on(&Pool::new(workers));
            crate::summary::take_sim_secs().to_bits()
        };
        assert_eq!(total(1), total(5));
    }

    #[test]
    fn a_failed_cell_is_an_err_output_not_a_dead_plan() {
        let mut plan = CellPlan::new();
        plan.add("good-1", || 1usize);
        plan.add("bad", || panic!("boom"));
        plan.add("good-2", || 2usize);
        let out = plan.execute_on(&Pool::new(2));
        assert_eq!(out[0].ok(), Some(&1));
        let err = out[1].value.as_ref().unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.message.contains("boom"));
        assert_eq!(out[2].ok(), Some(&2));
    }
}
