//! Result-cache wiring for offline `xp` runs (`--cache`/`--no-cache`).
//!
//! The binary installs an [`svc::Cache`] here at startup; every
//! [`crate::cells::CellPlan`] execution then resolves its spec-carrying
//! cells against it before dispatching anything to the worker pool, and
//! stores freshly computed payloads back at merge time. The cache is
//! bypassed entirely while a `--trace DIR` is installed: traced runs must
//! actually execute (and their results carry tracers the cache encoding
//! deliberately drops).
//!
//! A cache hit must be indistinguishable from a recompute in every saved
//! artifact. Two properties deliver that:
//!
//! * the payload codec is **exact** (`nas::codec`: every `f64` round-trips
//!   bit-identically), and
//! * [`CachePayload::replay_side_effects`] re-credits whatever the
//!   computed run credited to the process-global accumulators — for a
//!   [`RunResult`], the run's simulated seconds — at the cell's canonical
//!   merge position, so `bench_summary.json` totals stay the same fixed-
//!   order float sum.

use nas::RunResult;
use obs::json::Value;
use std::sync::Mutex;

static CACHE: Mutex<Option<svc::Cache>> = Mutex::new(None);

/// Install (or clear) the process-wide result cache. `svc::Cache` clones
/// share their statistics counters, so the stats printed at exit reflect
/// every plan's traffic.
pub fn install(cache: Option<svc::Cache>) {
    *CACHE.lock().unwrap() = cache;
}

/// The installed cache, if caching is effective right now (a cache is
/// installed and no trace directory forces real execution).
pub(crate) fn effective() -> Option<svc::Cache> {
    if crate::trace::dir().is_some() {
        return None;
    }
    CACHE.lock().unwrap().clone()
}

/// The installed cache regardless of trace state (for the stats line).
pub fn installed() -> Option<svc::Cache> {
    CACHE.lock().unwrap().clone()
}

/// One human-readable stats line for the installed cache, or `None` when
/// no cache is installed.
pub fn stats_line() -> Option<String> {
    let cache = installed()?;
    let s = cache.stats();
    Some(format!(
        "cache {}: {} hits, {} misses, {} stores{}",
        cache.root().display(),
        s.hits,
        s.misses,
        s.stores,
        if s.corrupt > 0 {
            format!(", {} corrupt entries recomputed", s.corrupt)
        } else {
            String::new()
        }
    ))
}

/// A cell value the result cache can round-trip exactly.
pub trait CachePayload: Sized {
    /// Encode for the cache. Must round-trip bit-identically through
    /// serialized JSON text.
    fn to_cache(&self) -> Value;
    /// Decode a cached payload.
    fn from_cache(v: &Value) -> Result<Self, String>;
    /// Re-credit the process-global side effects the computed run would
    /// have credited (called at the cell's merge position on a hit).
    fn replay_side_effects(&self);
}

impl CachePayload for RunResult {
    fn to_cache(&self) -> Value {
        self.to_cache_json()
    }

    fn from_cache(v: &Value) -> Result<Self, String> {
        RunResult::from_cache_json(v)
    }

    fn replay_side_effects(&self) {
        // The exact credit `run_one`'s finish path adds for a computed
        // run; replaying it at merge keeps summary totals bit-identical.
        crate::summary::add_sim_secs(self.total_secs);
    }
}

/// The codec a spec-carrying cell captures at plan-build time: plain
/// function pointers, so [`crate::cells::CellPlan::execute`] needs no
/// `CachePayload` bound on `T`.
pub(crate) struct CellCodec<T> {
    pub(crate) encode: fn(&T) -> Value,
    pub(crate) decode: fn(&Value) -> Result<T, String>,
    pub(crate) replay: fn(&T),
}

impl<T> Clone for CellCodec<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for CellCodec<T> {}

/// The codec for a cacheable payload type.
pub(crate) fn codec_for<T: CachePayload>() -> CellCodec<T> {
    CellCodec {
        encode: T::to_cache,
        decode: T::from_cache,
        replay: T::replay_side_effects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_credits_the_runs_simulated_seconds() {
        let r = RunResult::from_cache_json(
            &nas::RunResult {
                bench: nas::BenchName::Cg,
                placement: "ft".into(),
                engine: "IRIX".into(),
                total_secs: 2.5,
                per_iter_secs: vec![1.25, 1.25],
                verification: nas::Verification::check(1.0, 1.0, 1e-9),
                upm: None,
                kernel_migrations: 0,
                remote_fraction: 0.0,
                recrep_overhead_secs: 0.0,
                trace: None,
            }
            .to_cache_json(),
        )
        .unwrap();
        crate::summary::take_sim_secs();
        r.replay_side_effects();
        assert_eq!(crate::summary::take_sim_secs(), 2.5);
    }

    #[test]
    fn install_and_stats_line() {
        let dir = std::env::temp_dir().join(format!("ddnomp-xpcache-{}", std::process::id()));
        install(Some(svc::Cache::new(&dir)));
        let line = stats_line().expect("cache installed");
        assert!(line.contains("0 hits"), "{line}");
        install(None);
        assert!(stats_line().is_none());
    }
}
