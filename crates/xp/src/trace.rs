//! Event tracing for experiment runs (the driver side of the `obs` crate).
//!
//! Two entry points:
//!
//! * **`xp trace <bench>`** — [`run`] executes one benchmark under
//!   round-robin placement with the UPMlib engine (a configuration where
//!   pages actually move), then writes `trace.jsonl` (one event per line)
//!   and `trace.chrome.json` (load it in Perfetto or `chrome://tracing`)
//!   under the output directory and returns a per-iteration metrics table.
//! * **`--trace DIR` on any other command** — [`set_dir`] installs a trace
//!   directory; every run dispatched through [`crate::run_one`] then runs
//!   with the sink attached and dumps its events as
//!   `trace-<seq>-<bench>-<label>.{jsonl,chrome.json}` (the sequence number
//!   keeps repeated configurations from overwriting each other).

use crate::report::Report;
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use obs::export::{chrome_trace, to_jsonl};
use obs::{EventKind, Tracer};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vmm::PlacementScheme;

static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Route every subsequent experiment run's trace into `dir` (the binary's
/// `--trace DIR` flag). `None` turns the plumbing back off.
pub fn set_dir(dir: Option<PathBuf>) {
    *TRACE_DIR.lock().unwrap() = dir;
}

/// The installed trace directory, if any.
pub fn dir() -> Option<PathBuf> {
    TRACE_DIR.lock().unwrap().clone()
}

/// Copy of `cfg` with tracing forced on when a trace directory is
/// installed (called by every `run_one` dispatcher).
pub(crate) fn arm(cfg: &RunConfig) -> RunConfig {
    let mut cfg = cfg.clone();
    if dir().is_some() {
        cfg.trace = true;
    }
    cfg
}

/// A trace dump captured mid-run but not yet written: the file name's
/// sequence number is assigned at write time, so dumps deferred by the
/// cell executor land on disk in canonical plan order whatever the worker
/// count (see [`crate::cells`]).
pub(crate) struct PendingTrace {
    bench: String,
    label: String,
    tracer: Box<Tracer>,
}

impl std::fmt::Debug for PendingTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingTrace")
            .field("bench", &self.bench)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// If a trace directory is installed and the run collected a trace, stage
/// it for writing: deferred to the merge when a cell is executing,
/// written immediately otherwise. The tracer stays on the result so
/// callers that requested tracing themselves keep access to it.
pub(crate) fn dump(result: &RunResult) {
    if dir().is_none() {
        return;
    }
    let Some(tracer) = result.trace.as_deref() else {
        return;
    };
    let pending = PendingTrace {
        bench: result.bench.label().to_ascii_lowercase(),
        label: result.label(),
        tracer: Box::new(tracer.clone()),
    };
    if let Some(pending) = crate::cells::defer_trace(pending) {
        write_pending(pending);
    }
}

/// Write a staged trace under the installed directory, taking the next
/// file sequence number. No-op when the directory was uninstalled in the
/// meantime.
pub(crate) fn write_pending(pending: PendingTrace) {
    let Some(dir) = dir() else { return };
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let stem = format!("trace-{seq:03}-{}-{}", pending.bench, pending.label);
    match write_files(&dir, &stem, &pending.tracer) {
        Ok((jsonl, _)) => eprintln!("[trace {}]", jsonl.display()),
        Err(e) => eprintln!("[warn: could not write trace {stem}: {e}]"),
    }
}

/// Write `<dir>/<stem>.jsonl` and `<dir>/<stem>.chrome.json`; returns both
/// paths.
pub fn write_files(dir: &Path, stem: &str, tracer: &Tracer) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(
        &jsonl_path,
        to_jsonl(tracer.ring.iter(), tracer.dropped_events()),
    )?;
    let chrome_path = dir.join(format!("{stem}.chrome.json"));
    let doc = chrome_trace(tracer.ring.iter(), stem, tracer.dropped_events());
    std::fs::write(&chrome_path, format!("{}\n", doc.to_string_pretty()))?;
    Ok((jsonl_path, chrome_path))
}

/// Parse a benchmark name (`bt`, `sp`, `cg`, `mg`, `ft`, case-insensitive).
pub fn parse_bench(s: &str) -> Option<BenchName> {
    BenchName::all()
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(s))
}

/// The `xp trace` reference configuration: round-robin placement with the
/// UPMlib engine, so the trace shows the engine pulling pages home.
pub fn traced_config() -> RunConfig {
    RunConfig {
        placement: PlacementScheme::RoundRobin,
        engine: EngineMode::Upmlib(Default::default()),
        trace: true,
        ..RunConfig::paper_default()
    }
}

/// Run `bench` at `scale` under [`traced_config`] and detach the tracer.
pub fn run_traced(bench: BenchName, scale: Scale) -> (RunResult, Box<Tracer>) {
    let mut result = crate::run_one(bench, scale, &traced_config());
    let tracer = result.trace.take().expect("traced run yields a tracer");
    (result, tracer)
}

/// The `xp trace <bench>` command: run, export, and build the
/// per-iteration metrics table.
pub fn run(bench: BenchName, scale: Scale, out_dir: &Path) -> Report {
    let (result, tracer) = run_traced(bench, scale);
    let mut report = report_for(bench, &result, &tracer);
    match write_files(out_dir, "trace", &tracer) {
        Ok((jsonl, chrome)) => {
            report.note(format!("events: {}", jsonl.display()));
            report.note(format!(
                "chrome trace (open in Perfetto): {}",
                chrome.display()
            ));
        }
        Err(e) => report.note(format!("could not write trace files: {e}")),
    }
    report
}

/// Per-iteration metrics table built from the run's `IterationBoundary`
/// events, plus headline counters from the metrics registry.
pub fn report_for(bench: BenchName, result: &RunResult, tracer: &Tracer) -> Report {
    let mut report = Report::new(
        "trace",
        &format!(
            "Event trace of NAS {} ({}): per-iteration migration activity",
            bench.label(),
            result.label()
        ),
        &[
            "Iter",
            "Time (s)",
            "Migrations",
            "Remote fraction",
            "Stall (ms)",
        ],
    );
    let mut boundaries = 0usize;
    for event in tracer.ring.iter() {
        if let EventKind::IterationBoundary {
            iter,
            migrations,
            remote_fraction,
            stall_ns,
        } = event.kind
        {
            let time = result.per_iter_secs.get(iter).copied().unwrap_or(0.0);
            report.row(vec![
                iter.to_string(),
                format!("{time:.4}"),
                migrations.to_string(),
                format!("{remote_fraction:.3}"),
                format!("{:.2}", stall_ns * 1e-6),
            ]);
            boundaries += 1;
        }
    }
    report.note(format!(
        "{} events collected ({} dropped by the ring), {} iteration boundaries",
        tracer.ring.len(),
        tracer.ring.dropped(),
        boundaries
    ));
    for name in [
        "page_migrations",
        "upm_invocations",
        "upm_vetoed_moves",
        "counter_overflow_spills",
    ] {
        report.note(format!("{name}: {}", tracer.metrics.counter(name)));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_names_parse_case_insensitively() {
        assert_eq!(parse_bench("cg"), Some(BenchName::Cg));
        assert_eq!(parse_bench("BT"), Some(BenchName::Bt));
        assert_eq!(parse_bench("nope"), None);
    }

    #[test]
    fn traced_run_collects_migration_events() {
        let (result, tracer) = run_traced(BenchName::Cg, Scale::Tiny);
        assert!(result.verification.passed, "traced run must still verify");
        assert!(!tracer.ring.is_empty(), "trace must collect events");
        let boundaries = tracer
            .ring
            .iter()
            .filter(|e| matches!(e.kind, EventKind::IterationBoundary { .. }))
            .count();
        assert_eq!(boundaries, result.per_iter_secs.len());
        // Round-robin placement + UPMlib must actually move pages.
        assert!(tracer.metrics.counter("page_migrations") > 0);
        let report = report_for(BenchName::Cg, &result, &tracer);
        assert_eq!(report.rows.len(), boundaries);
    }
}
