//! `xp bench`: the performance-regression gate.
//!
//! The gate runs a fixed suite — every benchmark under the `xp trace`
//! reference configuration (round-robin placement + UPMlib, tracing off),
//! plus a `{bench}-static` companion per benchmark with the
//! lint-synthesized static placement under the same engine — and records
//! four numbers per entry: simulated seconds, host wall seconds, total
//! page migrations, and the whole-run remote fraction.
//!
//! * **`xp bench --record`** writes the suite's results as
//!   `baseline.json` under the history directory (default
//!   `results/history/`) and appends the same record as one line of
//!   `history.jsonl` — an append-only log of every recorded run.
//! * **`xp bench --check`** re-runs the suite and compares HEAD against
//!   the committed baseline. Simulated seconds and migration counts are
//!   *deterministic* on this simulator, so the threshold (default 5%)
//!   guards against real perf drift, not run-to-run noise; host wall time
//!   is noisy and reported without gating. Any benchmark whose simulated
//!   time or migration count grows past the threshold is a **regression**
//!   and makes the command exit non-zero.
//!
//! Records are schema-versioned like the trace format: a reader rejects a
//! record with an unknown major version, so a stale baseline fails with
//! a clear message instead of nonsense deltas.
//!
//! Schema v2 adds a per-benchmark **host-time breakdown** (`host_secs`:
//! exclusive host seconds per component, from a [`hostprof`] session
//! around the suite) so a perf investigation can tell *which layer* of
//! the simulator got slower, not just that the run did. v1 records —
//! including committed `history.jsonl` lines — still load; they simply
//! carry an empty breakdown.

use crate::report::Report;
use crate::CellPlan;
use nas::{BenchName, RunConfig, Scale};
use obs::json::Value;
use std::path::Path;

/// Schema name stamped into every gate record.
pub const BENCH_SCHEMA_NAME: &str = "ddnomp-bench";
/// Major version written by this build.
pub const BENCH_SCHEMA_MAJOR: u64 = 2;
/// Additive-change version.
pub const BENCH_SCHEMA_MINOR: u64 = 0;
/// Majors this build can read: v1 (no host breakdown) and v2.
pub const BENCH_SCHEMA_MAJORS_READ: [u64; 2] = [1, 2];

/// One benchmark's recorded gate numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// Benchmark id (`cg`, `bt`, ...).
    pub id: String,
    /// Simulated seconds of the timed iterations (deterministic; gated).
    pub sim_secs: f64,
    /// Host wall seconds of the cell (noisy; informational only).
    pub wall_secs: f64,
    /// Total page migrations, engine plus kernel (deterministic; gated).
    pub migrations: u64,
    /// Whole-run remote access fraction (deterministic; informational).
    pub remote_fraction: f64,
    /// Exclusive host seconds per component (`ccnuma`, `omp`, ...),
    /// descending — schema v2, empty on records loaded from v1 (noisy;
    /// informational only).
    pub host_secs: Vec<(String, f64)>,
}

/// One recorded suite run: the schema-versioned unit of `baseline.json`
/// and of each `history.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRecord {
    /// The major version this record was parsed from (records you build
    /// carry the current [`BENCH_SCHEMA_MAJOR`]).
    pub schema_major: u64,
    /// Problem-scale label the suite ran at.
    pub scale: String,
    /// Experiment seed the suite ran with.
    pub seed: u64,
    /// Per-benchmark numbers, in suite order.
    pub entries: Vec<GateEntry>,
}

impl GateRecord {
    /// The record as JSON (schema header fields first).
    pub fn to_json(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let host_secs = Value::Object(
                    e.host_secs
                        .iter()
                        .map(|(component, secs)| (component.clone(), (*secs).into()))
                        .collect(),
                );
                Value::object(vec![
                    ("id", e.id.as_str().into()),
                    ("sim_secs", e.sim_secs.into()),
                    ("wall_secs", e.wall_secs.into()),
                    ("migrations", e.migrations.into()),
                    ("remote_fraction", e.remote_fraction.into()),
                    ("host_secs", host_secs),
                ])
            })
            .collect();
        Value::object(vec![
            ("schema", BENCH_SCHEMA_NAME.into()),
            ("major", BENCH_SCHEMA_MAJOR.into()),
            ("minor", BENCH_SCHEMA_MINOR.into()),
            ("scale", self.scale.as_str().into()),
            ("seed", self.seed.into()),
            ("entries", Value::Array(entries)),
        ])
    }

    /// Parse a record, rejecting foreign schemas and majors.
    pub fn from_json(v: &Value) -> Result<GateRecord, String> {
        if v.get("schema").and_then(|s| s.as_str()) != Some(BENCH_SCHEMA_NAME) {
            return Err(format!("not a {BENCH_SCHEMA_NAME} record"));
        }
        let major = v.get("major").and_then(|m| m.as_u64()).unwrap_or(0);
        if !BENCH_SCHEMA_MAJORS_READ.contains(&major) {
            return Err(format!(
                "unsupported {BENCH_SCHEMA_NAME} major version {major} \
                 (this build reads {BENCH_SCHEMA_MAJORS_READ:?}); re-record the baseline"
            ));
        }
        let field = |obj: &Value, key: &str| -> Result<Value, String> {
            obj.get(key)
                .cloned()
                .ok_or_else(|| format!("record missing field '{key}'"))
        };
        let mut entries = Vec::new();
        for entry in field(v, "entries")?
            .as_array()
            .ok_or("'entries' is not an array")?
        {
            entries.push(GateEntry {
                id: field(entry, "id")?
                    .as_str()
                    .ok_or("'id' is not a string")?
                    .to_string(),
                sim_secs: field(entry, "sim_secs")?
                    .as_f64()
                    .ok_or("'sim_secs' is not a number")?,
                wall_secs: field(entry, "wall_secs")?
                    .as_f64()
                    .ok_or("'wall_secs' is not a number")?,
                migrations: field(entry, "migrations")?
                    .as_u64()
                    .ok_or("'migrations' is not an integer")?,
                remote_fraction: field(entry, "remote_fraction")?
                    .as_f64()
                    .ok_or("'remote_fraction' is not a number")?,
                // v2 field: v1 entries simply have no breakdown.
                host_secs: match entry.get("host_secs") {
                    Some(Value::Object(pairs)) => pairs
                        .iter()
                        .map(|(component, secs)| {
                            Ok((
                                component.clone(),
                                secs.as_f64().ok_or_else(|| {
                                    "'host_secs' value is not a number".to_string()
                                })?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => Vec::new(),
                },
            });
        }
        Ok(GateRecord {
            schema_major: major,
            scale: field(v, "scale")?
                .as_str()
                .ok_or("'scale' is not a string")?
                .to_string(),
            seed: field(v, "seed")?
                .as_u64()
                .ok_or("'seed' is not an integer")?,
            entries,
        })
    }

    /// Load a record from a JSON file.
    pub fn load(path: &Path) -> Result<GateRecord, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let v = Value::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the record as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, format!("{}\n", self.to_json().to_string_pretty()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// Load a `history.jsonl` file: one record per line, any mix of readable
/// schema majors (a committed v1 history keeps loading after v2 records
/// are appended).
pub fn load_history(path: &Path) -> Result<Vec<GateRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let context = |e| format!("{}:{}: {e}", path.display(), i + 1);
        let v = Value::parse(line).map_err(|e| context(e.to_string()))?;
        records.push(GateRecord::from_json(&v).map_err(context)?);
    }
    Ok(records)
}

/// The gate suite's run configuration: the `xp trace` reference
/// configuration with tracing off (the gate measures, it doesn't record
/// events).
pub fn gate_config() -> RunConfig {
    RunConfig {
        trace: false,
        ..crate::trace::traced_config()
    }
}

/// The static-placement companion configuration: the gate engine with the
/// lint-synthesized placement map installed instead of round robin. Keeps
/// the synthesis pass itself (plus the run under its map) on the perf gate.
pub fn static_gate_config(bench: BenchName, scale: Scale) -> RunConfig {
    RunConfig {
        placement: crate::lint::static_scheme(bench, scale),
        ..gate_config()
    }
}

/// Run the suite on the cell pool and collect one entry per benchmark.
/// The suite runs under a [`hostprof`] session, so each entry carries its
/// per-component host-time breakdown (schema v2).
pub fn measure(benches: &[BenchName], scale: Scale) -> Vec<GateEntry> {
    let session = hostprof::start();
    let mut plan = CellPlan::new();
    for &bench in benches {
        plan.add(bench.label().to_ascii_lowercase(), move || {
            crate::run_one(bench, scale, &gate_config())
        });
    }
    // Static-placement companions ride after the base suite so committed
    // baselines keep their entry order; ids are `{bench}-static`.
    for &bench in benches {
        plan.add(
            format!("{}-static", bench.label().to_ascii_lowercase()),
            move || crate::run_one(bench, scale, &static_gate_config(bench, scale)),
        );
    }
    let outputs = plan.execute();
    let host = session.finish();
    outputs
        .into_iter()
        .map(|output| {
            let id = output.id.clone();
            let wall_secs = output.wall_secs;
            let host_secs = host
                .root(&format!("cell:{id}"))
                .map(|root| hostprof::component_breakdown(std::slice::from_ref(&root)))
                .unwrap_or_default();
            let result = output.expect_ok();
            let engine_migrations: u64 = result
                .upm
                .as_ref()
                .map(|u| u.migrations_per_invocation.iter().sum())
                .unwrap_or(0);
            GateEntry {
                id,
                sim_secs: result.total_secs,
                wall_secs,
                migrations: engine_migrations + result.kernel_migrations,
                remote_fraction: result.remote_fraction,
                host_secs,
            }
        })
        .collect()
}

/// The dominant host-time component of an entry, as a table cell
/// (`ccnuma 62%`, or `-` when the record has no breakdown).
fn host_top(entry: &GateEntry) -> String {
    let total: f64 = entry.host_secs.iter().map(|(_, secs)| secs).sum();
    match entry.host_secs.first() {
        Some((component, secs)) if total > 0.0 => {
            format!("{component} {:.0}%", secs / total * 100.0)
        }
        _ => "-".to_string(),
    }
}

/// `xp bench --record`: measure the suite, write `baseline.json`, append
/// to `history.jsonl`, and report what was recorded.
pub fn record(benches: &[BenchName], scale: Scale, history: &Path) -> Result<Report, String> {
    let record = GateRecord {
        schema_major: BENCH_SCHEMA_MAJOR,
        scale: scale.label().to_string(),
        seed: crate::seed::get(),
        entries: measure(benches, scale),
    };
    std::fs::create_dir_all(history)
        .map_err(|e| format!("cannot create {}: {e}", history.display()))?;
    record.save(&history.join("baseline.json"))?;
    let log = history.join("history.jsonl");
    let mut lines = std::fs::read_to_string(&log).unwrap_or_default();
    lines.push_str(&format!("{}\n", record.to_json()));
    std::fs::write(&log, lines).map_err(|e| format!("cannot write {}: {e}", log.display()))?;

    let mut report = Report::new(
        &format!("bench_record_{}", record.scale),
        &format!("Recorded perf baseline ({}, rr-upmlib suite)", record.scale),
        &[
            "Bench",
            "Sim (s)",
            "Wall (s)",
            "Migrations",
            "Remote fraction",
            "Host top",
        ],
    );
    for e in &record.entries {
        report.row(vec![
            e.id.clone(),
            format!("{:.6}", e.sim_secs),
            format!("{:.2}", e.wall_secs),
            e.migrations.to_string(),
            format!("{:.4}", e.remote_fraction),
            host_top(e),
        ]);
    }
    report.note(format!(
        "schema {BENCH_SCHEMA_NAME} v{BENCH_SCHEMA_MAJOR}.{BENCH_SCHEMA_MINOR}, seed {}",
        record.seed
    ));
    report.note("written: baseline.json, history.jsonl (appended)");
    Ok(report)
}

/// Outcome of one `xp bench --check`.
#[derive(Debug)]
pub struct CheckRun {
    /// The comparison table.
    pub report: Report,
    /// Benchmarks whose gated metrics regressed past the threshold.
    pub regressions: usize,
}

/// `xp bench --check`: measure HEAD and compare against `baseline.json`.
/// `threshold` is fractional (0.05 = 5%).
pub fn check(
    benches: &[BenchName],
    scale: Scale,
    history: &Path,
    threshold: f64,
) -> Result<CheckRun, String> {
    let baseline_path = history.join("baseline.json");
    let baseline = GateRecord::load(&baseline_path)?;
    if baseline.scale != scale.label() {
        return Err(format!(
            "baseline was recorded at scale '{}' but this check runs '{}'; \
             re-record or pass --scale {}",
            baseline.scale,
            scale.label(),
            baseline.scale
        ));
    }
    let head = measure(benches, scale);
    let mut report = Report::new(
        &format!("bench_check_{}", scale.label()),
        &format!(
            "Perf regression check vs baseline ({}, threshold {:.0}%)",
            scale.label(),
            threshold * 100.0
        ),
        &[
            "Bench",
            "Sim base (s)",
            "Sim head (s)",
            "Sim Δ%",
            "Migr base",
            "Migr head",
            "Remote head",
            "Wall head (s)",
            "Host top",
            "Status",
        ],
    );
    let mut regressions = 0usize;
    for entry in &head {
        let Some(base) = baseline.entries.iter().find(|b| b.id == entry.id) else {
            report.row(vec![
                entry.id.clone(),
                "-".into(),
                format!("{:.6}", entry.sim_secs),
                "-".into(),
                "-".into(),
                entry.migrations.to_string(),
                format!("{:.4}", entry.remote_fraction),
                format!("{:.2}", entry.wall_secs),
                host_top(entry),
                "new (no baseline)".into(),
            ]);
            continue;
        };
        let sim_delta = if base.sim_secs > 0.0 {
            entry.sim_secs / base.sim_secs - 1.0
        } else {
            0.0
        };
        let migr_limit = (base.migrations as f64) * (1.0 + threshold);
        let mut reasons = Vec::new();
        if sim_delta > threshold {
            reasons.push(format!("sim +{:.1}%", sim_delta * 100.0));
        }
        if (entry.migrations as f64) > migr_limit {
            reasons.push(format!(
                "migrations {} -> {}",
                base.migrations, entry.migrations
            ));
        }
        let status = if reasons.is_empty() {
            if sim_delta < -threshold {
                "improved".to_string()
            } else {
                "ok".to_string()
            }
        } else {
            regressions += 1;
            format!("REGRESSED: {}", reasons.join(", "))
        };
        report.row(vec![
            entry.id.clone(),
            format!("{:.6}", base.sim_secs),
            format!("{:.6}", entry.sim_secs),
            format!("{:+.2}", sim_delta * 100.0),
            base.migrations.to_string(),
            entry.migrations.to_string(),
            format!("{:.4}", entry.remote_fraction),
            format!("{:.2}", entry.wall_secs),
            host_top(entry),
            status,
        ]);
    }
    report.note(format!(
        "baseline: schema v{}, scale {}, seed {} ({} entries); wall time and host \
         breakdown are informational, simulated time and migrations are gated",
        baseline.schema_major,
        baseline.scale,
        baseline.seed,
        baseline.entries.len()
    ));
    if let Ok(history_records) = load_history(&history.join("history.jsonl")) {
        let v1 = history_records
            .iter()
            .filter(|r| r.schema_major == 1)
            .count();
        report.note(format!(
            "history: {} recorded run(s) ({v1} at schema v1)",
            history_records.len()
        ));
    }
    if regressions > 0 {
        report.note(format!("{regressions} benchmark(s) REGRESSED"));
    }
    Ok(CheckRun {
        report,
        regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> GateRecord {
        GateRecord {
            schema_major: BENCH_SCHEMA_MAJOR,
            scale: "tiny".into(),
            seed: 20000,
            entries: vec![
                GateEntry {
                    id: "cg".into(),
                    sim_secs: 1.25,
                    wall_secs: 0.4,
                    migrations: 120,
                    remote_fraction: 0.31,
                    host_secs: vec![("ccnuma".into(), 0.25), ("omp".into(), 0.125)],
                },
                GateEntry {
                    id: "mg".into(),
                    sim_secs: 0.75,
                    wall_secs: 0.2,
                    migrations: 60,
                    remote_fraction: 0.18,
                    host_secs: Vec::new(),
                },
            ],
        }
    }

    /// A record as schema v1 wrote it: major 1, no `host_secs`.
    fn v1_json() -> Value {
        let entry = Value::object(vec![
            ("id", "cg".into()),
            ("sim_secs", 1.25.into()),
            ("wall_secs", 0.4.into()),
            ("migrations", 120u64.into()),
            ("remote_fraction", 0.31.into()),
        ]);
        Value::object(vec![
            ("schema", BENCH_SCHEMA_NAME.into()),
            ("major", 1u64.into()),
            ("minor", 0u64.into()),
            ("scale", "tiny".into()),
            ("seed", 20000u64.into()),
            ("entries", Value::Array(vec![entry])),
        ])
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = sample_record();
        let parsed = GateRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn v1_records_still_load_with_an_empty_host_breakdown() {
        let parsed = GateRecord::from_json(&v1_json()).unwrap();
        assert_eq!(parsed.schema_major, 1);
        assert_eq!(parsed.entries[0].id, "cg");
        assert_eq!(parsed.entries[0].sim_secs, 1.25);
        assert!(parsed.entries[0].host_secs.is_empty());
        assert_eq!(host_top(&parsed.entries[0]), "-");
    }

    #[test]
    fn foreign_majors_are_rejected_with_a_clear_error() {
        let mut json = sample_record().to_json();
        if let Value::Object(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "major" {
                    *v = (BENCH_SCHEMA_MAJOR + 1).into();
                }
            }
        }
        let err = GateRecord::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        assert!(GateRecord::from_json(&Value::object(vec![("schema", "nope".into())])).is_err());
    }

    #[test]
    fn a_mixed_v1_v2_history_loads_in_order() {
        let dir = std::env::temp_dir().join(format!("ddnomp-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        std::fs::write(
            &path,
            format!("{}\n{}\n", v1_json(), sample_record().to_json()),
        )
        .unwrap();
        let records = load_history(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].schema_major, 1);
        assert_eq!(records[1].schema_major, 2);
        assert!(records[0].entries[0].host_secs.is_empty());
        assert!(!records[1].entries[0].host_secs.is_empty());
        // A corrupt line fails with the line number, not silently.
        std::fs::write(&path, "not json\n").unwrap();
        let err = load_history(&path).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_measures_deterministically_and_check_flags_injected_slowdown() {
        let dir = std::env::temp_dir().join(format!("ddnomp-gate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let benches = [BenchName::Cg];

        // Record, then a clean check passes with zero regressions.
        record(&benches, Scale::Tiny, &dir).unwrap();
        let clean = check(&benches, Scale::Tiny, &dir, 0.05).unwrap();
        assert_eq!(clean.regressions, 0, "{}", clean.report.to_markdown());
        assert!(clean.report.to_markdown().contains("| ok |"));

        // The simulator is deterministic: an immediate re-measure agrees
        // exactly with the recorded baseline on the gated metrics.
        let baseline = GateRecord::load(&dir.join("baseline.json")).unwrap();
        let again = measure(&benches, Scale::Tiny);
        assert_eq!(baseline.entries[0].sim_secs, again[0].sim_secs);
        assert_eq!(baseline.entries[0].migrations, again[0].migrations);

        // Shrink the recorded baseline by 20%: HEAD now looks 25% slower,
        // which must trip the 5% gate.
        let mut patched = baseline.clone();
        patched.entries[0].sim_secs *= 0.8;
        patched.save(&dir.join("baseline.json")).unwrap();
        let tripped = check(&benches, Scale::Tiny, &dir, 0.05).unwrap();
        assert_eq!(tripped.regressions, 1, "{}", tripped.report.to_markdown());
        assert!(tripped.report.to_markdown().contains("REGRESSED"));

        // Scale mismatch is an error, not a silent pass.
        let err = check(&benches, Scale::Small, &dir, 0.05).unwrap_err();
        assert!(err.contains("scale"), "{err}");

        // history.jsonl holds one line per record call.
        let log = std::fs::read_to_string(dir.join("history.jsonl")).unwrap();
        assert_eq!(log.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
