//! Table 1: access latency to the different levels of the Origin2000 memory
//! hierarchy, measured by probing the simulated machine (not just echoing
//! the configuration).

use crate::report::Report;
use ccnuma::{AccessKind, Machine, MachineConfig, LINE_SIZE, PAGE_SIZE};

/// Measured hierarchy latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// L1 hit, ns.
    pub l1_ns: f64,
    /// L2 hit, ns.
    pub l2_ns: f64,
    /// Local memory, ns.
    pub local_ns: f64,
    /// Remote memory by hop count (1..=3), ns.
    pub remote_ns: Vec<f64>,
}

/// Probe the machine: fault pages on chosen nodes, then time accesses whose
/// cache residency is controlled by construction.
pub fn measure(machine: &mut Machine) -> Table1 {
    // Page 0 on node 0 (local to CPU 0).
    let base = machine.reserve_vspace(PAGE_SIZE);
    machine.map_page_for_test(base, 0);

    // Cold access: local memory.
    let local_ns = machine.touch(0, base, AccessKind::Read);
    // Hot access: L1.
    let l1_ns = machine.touch(0, base, AccessKind::Read);
    // Evict from L1 but not L2: the L1 has capacity/LINE_SIZE lines; sweep
    // enough distinct lines of the same page... the page has 128 lines and
    // the Origin L1 holds 256, so use a second local page to push line 0 out
    // of its L1 set while the 4 MB L2 keeps everything.
    let l1_lines = machine.config().l1.capacity as u64 / LINE_SIZE;
    let spill = machine.reserve_vspace(PAGE_SIZE * 4);
    for p in 0..4u64 {
        machine.map_page_for_test(spill + p * PAGE_SIZE, 0);
    }
    for i in 0..l1_lines * 2 {
        machine.touch(
            0,
            spill + (i * LINE_SIZE) % (4 * PAGE_SIZE),
            AccessKind::Read,
        );
    }
    let l2_ns = machine.touch(0, base, AccessKind::Read);

    // Remote pages at increasing hop distance from node 0. On the 8-node
    // fat hypercube, node 1 is 1 hop, node 2 is 2 hops, node 6 is 3 hops.
    let mut remote_ns = Vec::new();
    for &node in &[1usize, 2, 6] {
        let va = machine.reserve_vspace(PAGE_SIZE);
        machine.map_page_for_test(va, node);
        remote_ns.push(machine.touch(0, va, AccessKind::Read));
    }
    Table1 {
        l1_ns,
        l2_ns,
        local_ns,
        remote_ns,
    }
}

/// Run the Table 1 experiment and render it. The probe goes through a
/// single-cell [`crate::CellPlan`] like every other experiment, so the
/// run's summary row carries a real cell wall time.
pub fn run() -> Report {
    let mut plan = crate::CellPlan::new();
    plan.add("table1", || {
        let mut machine = Machine::new(MachineConfig::origin2000_16p());
        measure(&mut machine)
    });
    let t = plan
        .execute()
        .into_iter()
        .next()
        .expect("one planned cell")
        .expect_ok();
    let mut r = Report::new(
        "table1",
        "Access latency to the levels of the memory hierarchy (measured on the simulated machine)",
        &["Level", "Distance in hops", "Latency (ns)", "Paper (ns)"],
    );
    r.row(vec![
        "L1 cache".into(),
        "0".into(),
        format!("{:.1}", t.l1_ns),
        "5.5".into(),
    ]);
    r.row(vec![
        "L2 cache".into(),
        "0".into(),
        format!("{:.1}", t.l2_ns),
        "56.9".into(),
    ]);
    r.row(vec![
        "local memory".into(),
        "0".into(),
        format!("{:.0}", t.local_ns),
        "329".into(),
    ]);
    for (i, ns) in t.remote_ns.iter().enumerate() {
        let paper = ["564", "759", "862"][i];
        r.row(vec![
            "remote memory".into(),
            format!("{}", i + 1),
            format!("{ns:.0}"),
            paper.into(),
        ]);
    }
    let ratio = t.remote_ns[0] / t.local_ns;
    r.note(format!(
        "remote:local ratio at 1 hop = {ratio:.2}:1 (paper: between 2:1 and 3:1 overall; \
         the low ratio is the paper's first argument)"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_values_match_table1() {
        let mut machine = Machine::new(MachineConfig::origin2000_16p());
        let t = measure(&mut machine);
        assert_eq!(t.l1_ns, 5.5);
        assert_eq!(t.l2_ns, 56.9);
        assert_eq!(t.local_ns, 329.0);
        assert_eq!(t.remote_ns, vec![564.0, 759.0, 862.0]);
    }

    #[test]
    fn report_renders() {
        let r = run();
        assert_eq!(r.rows.len(), 6);
        assert!(r.to_markdown().contains("remote memory"));
    }
}
