//! The machine-readable run summary (`results/bench_summary.json`): one
//! entry per experiment with simulated seconds and host wall-clock, so
//! future changes have a performance trajectory to compare against.
//!
//! Simulated seconds accumulate in a process-global counter:
//! [`crate::run_one`] adds each run's total, and the multiprogramming
//! experiment adds its schedules' makespans. The binary snapshots the
//! counter around each experiment with [`take_sim_secs`] and writes the
//! collected entries with [`write`].

use obs::json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static SIM_SECS: Mutex<f64> = Mutex::new(0.0);

/// Credit simulated seconds to the experiment currently running.
pub fn add_sim_secs(secs: f64) {
    *SIM_SECS.lock().unwrap() += secs;
}

/// Snapshot and reset the accumulated simulated seconds.
pub fn take_sim_secs() -> f64 {
    std::mem::take(&mut *SIM_SECS.lock().unwrap())
}

/// One experiment's timing entry.
#[derive(Debug, Clone)]
pub struct SummaryEntry {
    /// Experiment id (the report id, e.g. `fig1`).
    pub id: String,
    /// Simulated seconds across every run the experiment dispatched.
    pub sim_secs: f64,
    /// Host wall-clock seconds the experiment took.
    pub wall_secs: f64,
}

/// Write `dir/bench_summary.json`. Returns the path.
pub fn write(
    dir: &Path,
    scale: &str,
    seed: u64,
    entries: &[SummaryEntry],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let experiments = Value::Array(
        entries
            .iter()
            .map(|e| {
                Value::object(vec![
                    ("id", e.id.as_str().into()),
                    ("sim_secs", e.sim_secs.into()),
                    ("wall_secs", e.wall_secs.into()),
                ])
            })
            .collect(),
    );
    let doc = Value::object(vec![
        ("scale", scale.into()),
        ("seed", seed.into()),
        ("experiments", experiments),
        (
            "total_sim_secs",
            entries.iter().map(|e| e.sim_secs).sum::<f64>().into(),
        ),
        (
            "total_wall_secs",
            entries.iter().map(|e| e.wall_secs).sum::<f64>().into(),
        ),
    ]);
    let path = dir.join("bench_summary.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(doc.to_string_pretty().as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_takes_and_resets() {
        take_sim_secs();
        add_sim_secs(1.5);
        add_sim_secs(0.5);
        assert!((take_sim_secs() - 2.0).abs() < 1e-12);
        assert_eq!(take_sim_secs(), 0.0);
    }

    #[test]
    fn summary_file_shape() {
        let dir = std::env::temp_dir().join("ddnomp-summary-test");
        let entries = vec![
            SummaryEntry {
                id: "fig1".into(),
                sim_secs: 12.0,
                wall_secs: 0.3,
            },
            SummaryEntry {
                id: "multiprog".into(),
                sim_secs: 30.0,
                wall_secs: 1.1,
            },
        ];
        let path = write(&dir, "tiny", 20000, &entries).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"seed\": 20000"));
        assert!(text.contains("\"id\": \"multiprog\""));
        assert!(text.contains("total_sim_secs"));
    }
}
