//! The machine-readable run summary (`results/bench_summary.json`): one
//! entry per experiment with simulated seconds, host wall-clock, and the
//! host-parallel executor's speedup estimate, so future changes have a
//! performance trajectory to compare against.
//!
//! Simulated seconds accumulate in a process-global counter:
//! [`crate::run_one`] adds each run's total, and the multiprogramming
//! experiment adds its schedules' makespans. When the call happens inside
//! an executing experiment cell, the credit is buffered in the cell's
//! context and replayed in canonical plan order at merge time (see
//! [`crate::cells`]), so the accumulated float sum is bit-identical
//! whatever `--jobs` count ran the cells. The binary snapshots the
//! counter around each experiment with [`take_sim_secs`] and writes the
//! collected entries with [`write`].
//!
//! Wall-clock bookkeeping for the speedup estimate: each cell reports the
//! wall seconds it spent on its worker ([`add_cell_wall`]) and each plan
//! reports the wall seconds its pool was open ([`add_pool_wall`]). An
//! experiment that took `wall_secs` overall would therefore have taken
//! about `wall_secs - pool_wall + cells_wall` serially, and
//! `speedup_vs_serial` is that estimate divided by `wall_secs` — ~1.0 for
//! `--jobs 1` runs, approaching the worker count for cell-dominated
//! experiments.

use obs::json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static SIM_SECS: Mutex<f64> = Mutex::new(0.0);
/// `(cells_wall, pool_wall)` accumulated since the last [`take_wall`].
static WALL: Mutex<(f64, f64)> = Mutex::new((0.0, 0.0));

/// Credit simulated seconds to the experiment currently running. Inside a
/// cell, the credit is deferred to the cell's merge (canonical order).
pub fn add_sim_secs(secs: f64) {
    if crate::cells::credit_sim_secs(secs) {
        return;
    }
    *SIM_SECS.lock().unwrap() += secs;
}

/// Snapshot and reset the accumulated simulated seconds.
pub fn take_sim_secs() -> f64 {
    std::mem::take(&mut *SIM_SECS.lock().unwrap())
}

/// Credit one cell's on-worker wall seconds (called at plan merge).
pub fn add_cell_wall(secs: f64) {
    WALL.lock().unwrap().0 += secs;
}

/// Credit one plan's pool-open wall seconds (called at plan merge).
pub fn add_pool_wall(secs: f64) {
    WALL.lock().unwrap().1 += secs;
}

/// Snapshot and reset the `(cells_wall, pool_wall)` accumulators.
pub fn take_wall() -> (f64, f64) {
    std::mem::take(&mut *WALL.lock().unwrap())
}

/// One experiment's timing entry.
#[derive(Debug, Clone)]
pub struct SummaryEntry {
    /// Experiment id (the report id, e.g. `fig1`).
    pub id: String,
    /// Simulated seconds across every run the experiment dispatched.
    pub sim_secs: f64,
    /// Host wall-clock seconds the experiment took.
    pub wall_secs: f64,
    /// Sum of per-cell on-worker wall seconds (0 for cell-less
    /// experiments).
    pub cells_wall_secs: f64,
    /// Wall seconds the experiment's pools were open.
    pub pool_wall_secs: f64,
}

impl SummaryEntry {
    /// Estimated serial wall seconds: the non-pool part of the experiment
    /// plus every cell's own wall time.
    pub fn serial_estimate_secs(&self) -> f64 {
        (self.wall_secs - self.pool_wall_secs).max(0.0) + self.cells_wall_secs
    }

    /// Estimated wall-clock speedup of this run over a `--jobs 1` run.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.serial_estimate_secs() / self.wall_secs
        } else {
            1.0
        }
    }
}

/// Write `dir/bench_summary.json`. Returns the path.
pub fn write(
    dir: &Path,
    scale: &str,
    seed: u64,
    jobs: usize,
    entries: &[SummaryEntry],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let experiments = Value::Array(
        entries
            .iter()
            .map(|e| {
                Value::object(vec![
                    ("id", e.id.as_str().into()),
                    ("sim_secs", e.sim_secs.into()),
                    ("wall_secs", e.wall_secs.into()),
                    ("cells_wall_secs", e.cells_wall_secs.into()),
                    ("serial_estimate_secs", e.serial_estimate_secs().into()),
                    ("speedup_vs_serial", e.speedup_vs_serial().into()),
                ])
            })
            .collect(),
    );
    let total_wall: f64 = entries.iter().map(|e| e.wall_secs).sum();
    let total_serial: f64 = entries.iter().map(|e| e.serial_estimate_secs()).sum();
    let doc = Value::object(vec![
        ("scale", scale.into()),
        ("seed", seed.into()),
        ("jobs", jobs.into()),
        ("experiments", experiments),
        (
            "total_sim_secs",
            entries.iter().map(|e| e.sim_secs).sum::<f64>().into(),
        ),
        ("total_wall_secs", total_wall.into()),
        ("serial_estimate_secs", total_serial.into()),
        (
            "speedup_vs_serial",
            if total_wall > 0.0 {
                (total_serial / total_wall).into()
            } else {
                1.0.into()
            },
        ),
    ]);
    let path = dir.join("bench_summary.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(doc.to_string_pretty().as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_takes_and_resets() {
        take_sim_secs();
        add_sim_secs(1.5);
        add_sim_secs(0.5);
        assert!((take_sim_secs() - 2.0).abs() < 1e-12);
        assert_eq!(take_sim_secs(), 0.0);
    }

    #[test]
    fn wall_accumulators_take_and_reset() {
        take_wall();
        add_cell_wall(2.0);
        add_cell_wall(1.0);
        add_pool_wall(1.5);
        assert_eq!(take_wall(), (3.0, 1.5));
        assert_eq!(take_wall(), (0.0, 0.0));
    }

    #[test]
    fn speedup_estimate_shapes() {
        // Serial run: pool open as long as the cells ran -> ~1x.
        let serial = SummaryEntry {
            id: "fig1".into(),
            sim_secs: 1.0,
            wall_secs: 10.0,
            cells_wall_secs: 9.0,
            pool_wall_secs: 9.0,
        };
        assert!((serial.speedup_vs_serial() - 1.0).abs() < 1e-12);
        // 4 workers, perfectly parallel cells: 36s of cell work in 9s.
        let parallel = SummaryEntry {
            id: "fig1".into(),
            sim_secs: 1.0,
            wall_secs: 10.0,
            cells_wall_secs: 36.0,
            pool_wall_secs: 9.0,
        };
        assert!((parallel.speedup_vs_serial() - 3.7).abs() < 1e-12);
        // No cells at all (table1): estimate equals the wall -> 1x.
        let plain = SummaryEntry {
            id: "table1".into(),
            sim_secs: 0.0,
            wall_secs: 0.5,
            cells_wall_secs: 0.0,
            pool_wall_secs: 0.0,
        };
        assert!((plain.speedup_vs_serial() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_file_shape() {
        let dir = std::env::temp_dir().join("ddnomp-summary-test");
        let entries = vec![
            SummaryEntry {
                id: "fig1".into(),
                sim_secs: 12.0,
                wall_secs: 0.3,
                cells_wall_secs: 0.9,
                pool_wall_secs: 0.25,
            },
            SummaryEntry {
                id: "multiprog".into(),
                sim_secs: 30.0,
                wall_secs: 1.1,
                cells_wall_secs: 2.0,
                pool_wall_secs: 1.0,
            },
        ];
        let path = write(&dir, "tiny", 20000, 4, &entries).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"seed\": 20000"));
        assert!(text.contains("\"jobs\": 4"));
        assert!(text.contains("\"id\": \"multiprog\""));
        assert!(text.contains("total_sim_secs"));
        assert!(text.contains("speedup_vs_serial"));
    }
}
