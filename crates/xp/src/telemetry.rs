//! Exec-pool telemetry aggregation for report footers.
//!
//! Every [`crate::cells::CellPlan`] execution records its
//! [`exec::PoolTelemetry`] (plus the per-cell wall times) here; after a
//! driver job finishes, [`take_footer`] drains the accumulated numbers
//! into a couple of human-readable footer lines the CLI prints under the
//! job's report tables.
//!
//! The footer goes to **stdout only** — it is never embedded in saved
//! report JSON, so result trees stay byte-identical across `--jobs`
//! settings (pool utilization obviously differs between worker counts).

use exec::PoolTelemetry;
use obs::metrics::Histogram;
use std::sync::Mutex;

#[derive(Default)]
struct Agg {
    plans: usize,
    cells: usize,
    failed: usize,
    pool_wall_secs: f64,
    busy_secs: f64,
    /// Σ (plan wall × workers): the capacity the busy time is measured
    /// against, robust to plans running with different worker counts.
    worker_secs: f64,
    max_workers: usize,
    steals_ok: u64,
    steals_fail: u64,
    queue_depth_max: usize,
    /// Per-cell wall latency, in microseconds.
    wall_us: Histogram,
}

static AGG: Mutex<Option<Agg>> = Mutex::new(None);

/// Credit one executed plan's telemetry to the current job's footer.
pub(crate) fn record_plan(t: &PoolTelemetry, cell_walls: &[f64]) {
    let mut slot = AGG.lock().unwrap_or_else(|p| p.into_inner());
    let agg = slot.get_or_insert_with(Agg::default);
    agg.plans += 1;
    agg.cells += t.jobs_total;
    agg.failed += t.jobs_failed;
    agg.pool_wall_secs += t.wall_secs;
    agg.busy_secs += t.busy_secs();
    agg.worker_secs += t.wall_secs * t.workers.len() as f64;
    agg.max_workers = agg.max_workers.max(t.workers.len());
    let (ok, fail) = t.steals();
    agg.steals_ok += ok;
    agg.steals_fail += fail;
    agg.queue_depth_max = agg.queue_depth_max.max(t.queue_depth_max());
    for &w in cell_walls {
        agg.wall_us.record((w * 1e6) as u64);
    }
}

/// Drain the accumulated telemetry into footer lines (empty when no plan
/// ran since the last call).
pub fn take_footer() -> Vec<String> {
    let agg = match AGG.lock().unwrap_or_else(|p| p.into_inner()).take() {
        Some(agg) if agg.cells > 0 => agg,
        _ => return Vec::new(),
    };
    let busy_pct = if agg.worker_secs > 0.0 {
        100.0 * agg.busy_secs / agg.worker_secs
    } else {
        0.0
    };
    let failed = if agg.failed > 0 {
        format!(", {} failed", agg.failed)
    } else {
        String::new()
    };
    let mut lines = vec![format!(
        "pool: {} cells{failed} over {} plan(s), {} worker(s) {:.0}% busy, steals {}/{} ok, queue depth <= {}",
        agg.cells,
        agg.plans,
        agg.max_workers,
        busy_pct,
        agg.steals_ok,
        agg.steals_ok + agg.steals_fail,
        agg.queue_depth_max,
    )];
    if agg.wall_us.count() > 0 {
        lines.push(format!(
            "cell wall: p50 {} p90 {} max {} (pool wall {:.2}s)",
            fmt_us(agg.wall_us.quantile_floor(0.50)),
            fmt_us(agg.wall_us.quantile_floor(0.90)),
            fmt_us(agg.wall_us.max()),
            agg.pool_wall_secs,
        ));
    }
    lines
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec::{PoolTelemetry, WorkerTelemetry};

    // The aggregator is process-global and sibling tests execute plans
    // concurrently, so this test feeds it synthetic telemetry and only
    // asserts on the footer's shape, not on exact counts.
    #[test]
    fn footer_reflects_recorded_telemetry() {
        let t = PoolTelemetry {
            wall_secs: 1.0,
            jobs_total: 4,
            jobs_failed: 1,
            workers: vec![WorkerTelemetry {
                jobs: 4,
                busy_secs: 0.8,
                steals_ok: 2,
                steals_fail: 1,
                queue_depth_mean: 1.5,
                queue_depth_max: 3,
            }],
        };
        record_plan(&t, &[0.1, 0.2, 0.3, 0.4]);
        let footer = take_footer();
        assert_eq!(footer.len(), 2, "footer: {footer:?}");
        assert!(footer[0].starts_with("pool:"), "footer: {}", footer[0]);
        assert!(footer[0].contains("failed"), "footer: {}", footer[0]);
        assert!(
            footer[1].starts_with("cell wall: p50"),
            "footer: {}",
            footer[1]
        );
    }

    #[test]
    fn microsecond_formatting_scales_units() {
        assert_eq!(fmt_us(250), "250us");
        assert_eq!(fmt_us(4_200), "4.2ms");
        assert_eq!(fmt_us(3_500_000), "3.50s");
    }
}
