//! Client-mode wiring: dispatch spec-carrying cells to a resident
//! `xp serve` instance (`xp client <command>`).
//!
//! The binary installs an [`svc::Client`] here; every
//! [`crate::cells::CellPlan`] execution then offers its unresolved
//! spec-carrying cells to the server as one batch and consumes the
//! streamed results. Degradation is graceful at two granularities:
//!
//! * **whole batch** — no server listening, protocol or code-version
//!   mismatch: every cell falls back to in-process execution, so client
//!   mode never produces less than offline mode;
//! * **per cell** — the server refuses an individual spec (ablation
//!   variants it cannot reconstruct, fingerprint mismatch): that cell
//!   computes locally while its siblings still come from the server.
//!
//! Every batch prints one summary line to **stderr** (`[svc] ...` — cached
//! / computed / joined counts), which is also what the CI smoke job greps
//! to prove the warm sweep recomputed nothing.

use std::io::IsTerminal;
use std::sync::Mutex;
use svc::proto::RunProgress;

static CLIENT: Mutex<Option<svc::Client>> = Mutex::new(None);

/// Install (or clear) the process-wide service client.
pub fn install(client: Option<svc::Client>) {
    *CLIENT.lock().unwrap() = client;
}

/// The installed client, if any.
pub(crate) fn installed() -> Option<svc::Client> {
    CLIENT.lock().unwrap().clone()
}

/// Progress printer for one remote batch: live line on a TTY, silent
/// otherwise (the final summary line is printed unconditionally).
pub(crate) struct Progress {
    tty: bool,
    painted: bool,
    last: RunProgress,
}

impl Progress {
    pub(crate) fn new() -> Self {
        Progress {
            tty: std::io::stderr().is_terminal(),
            painted: false,
            last: RunProgress::default(),
        }
    }

    pub(crate) fn update(&mut self, p: &RunProgress) {
        self.last = *p;
        if self.tty {
            eprint!(
                "\r\x1b[2K[svc] {}/{} cells ({} cached, {} computed, {} joined)",
                p.done, p.total, p.hits, p.computed, p.joined
            );
            self.painted = true;
        }
    }

    /// Clear the live line and print the batch summary.
    pub(crate) fn finish(self, addr: &str) {
        if self.painted {
            eprint!("\r\x1b[2K");
        }
        let p = self.last;
        eprintln!(
            "[svc] {addr}: {} cells — {} cached, {} computed, {} joined",
            p.total, p.hits, p.computed, p.joined
        );
    }
}
