//! Dispatcher: run one named benchmark at one scale under one
//! configuration. Every experiment routes its runs through this module, so
//! the `--trace DIR` plumbing (see [`crate::trace`]) hooks in here: when a
//! trace directory is installed each run executes with the `obs` sink
//! attached and its events are dumped on completion.

use nas::bt::{Bt, BtConfig};
use nas::cg::{Cg, CgConfig};
use nas::ft::Ft;
use nas::mg::Mg;
use nas::sp::{Sp, SpConfig};
use nas::{run_benchmark, BenchName, RunConfig, RunResult, Scale};
use upmlib::UpmOptions;
use vmm::KernelMigrationConfig;

fn finish(result: RunResult) -> RunResult {
    crate::trace::dump(&result);
    crate::summary::add_sim_secs(result.total_secs);
    result
}

/// Run `bench` at `scale` under `cfg`.
pub fn run_one(bench: BenchName, scale: Scale, cfg: &RunConfig) -> RunResult {
    let cfg = crate::trace::arm(cfg);
    finish(match bench {
        BenchName::Bt => run_benchmark(|rt| Bt::new(rt, scale), &cfg),
        BenchName::Sp => run_benchmark(|rt| Sp::new(rt, scale), &cfg),
        BenchName::Cg => run_benchmark(|rt| Cg::new(rt, scale), &cfg),
        BenchName::Mg => run_benchmark(|rt| Mg::new(rt, scale), &cfg),
        BenchName::Ft => run_benchmark(|rt| Ft::new(rt, scale), &cfg),
    })
}

/// [`run_one`] with the phase fast path forced on or off (overriding the
/// `DDNOMP_FASTPATH` environment default) — used by the differential
/// equivalence suite and the speedup measurement.
pub fn run_one_fastpath(
    bench: BenchName,
    scale: Scale,
    cfg: &RunConfig,
    fastpath: bool,
) -> RunResult {
    use nas::harness::run_benchmark_fastpath as rbf;
    let cfg = crate::trace::arm(cfg);
    finish(match bench {
        BenchName::Bt => rbf(|rt| Bt::new(rt, scale), &cfg, fastpath),
        BenchName::Sp => rbf(|rt| Sp::new(rt, scale), &cfg, fastpath),
        BenchName::Cg => rbf(|rt| Cg::new(rt, scale), &cfg, fastpath),
        BenchName::Mg => rbf(|rt| Mg::new(rt, scale), &cfg, fastpath),
        BenchName::Ft => rbf(|rt| Ft::new(rt, scale), &cfg, fastpath),
    })
}

/// Run BT with an explicit problem configuration (Figure 6's lengthened
/// phases).
pub fn run_bt_custom(bt_cfg: BtConfig, cfg: &RunConfig) -> RunResult {
    let cfg = crate::trace::arm(cfg);
    finish(run_benchmark(|rt| Bt::with_config(rt, bt_cfg), &cfg))
}

/// Run BT with 4x-lengthened phases (the Figure 6 synthetic experiment).
pub fn run_bt_scaled(scale: Scale, cfg: &RunConfig) -> RunResult {
    run_bt_custom(BtConfig::for_scale(scale).scaled_phases(), cfg)
}

/// Run CG with an explicit problem configuration (used by the weak-scaling
/// machine-size ablation).
pub fn run_cg_custom(cg_cfg: CgConfig, cfg: &RunConfig) -> RunResult {
    let cfg = crate::trace::arm(cfg);
    finish(run_benchmark(|rt| Cg::with_config(rt, cg_cfg), &cfg))
}

/// Run SP with 4x-lengthened phases.
pub fn run_sp_scaled(scale: Scale, cfg: &RunConfig) -> RunResult {
    let cfg = crate::trace::arm(cfg);
    finish(run_benchmark(
        |rt| Sp::with_config(rt, SpConfig::for_scale(scale).scaled_phases()),
        &cfg,
    ))
}

/// The default engine tunables used across experiments (one place, so every
/// figure runs the same kernel-engine and UPMlib settings).
pub fn default_engine_configs() -> (KernelMigrationConfig, UpmOptions) {
    (KernelMigrationConfig::default(), UpmOptions::default())
}
