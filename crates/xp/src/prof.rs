//! `xp prof`: drive the trace-driven NUMA profiler over the benchmarks.
//!
//! For each requested benchmark the command runs the `xp trace` reference
//! configuration (round-robin placement + UPMlib, a setup where pages
//! actually move), hands the collected event stream to [`prof::Profile`]
//! together with a [`prof::ProfileContext`] assembled from the benchmark's
//! static [`nas::KernelModel`], and writes three artifacts per benchmark
//! under the output directory:
//!
//! * `prof-<bench>.md` — the full profile (phase attribution, iteration
//!   table, convergence, heatmaps) as markdown;
//! * `prof-<bench>.jsonl` — the raw schema-versioned trace, re-loadable
//!   with `xp prof <bench> --from FILE`;
//! * `prof-<bench>.chrome.json` — the Chrome trace enriched with the
//!   profiler's Perfetto counter tracks.
//!
//! The returned [`Report`] is a pure function of the analysis (artifact
//! *stems* in the notes, never absolute paths), so reports and profiles
//! are byte-identical at every `--jobs` count and serve as golden
//! fixtures.

use crate::report::Report;
use crate::CellPlan;
use ::prof::{ArrayHeatmap, ArraySpan, Profile, ProfileContext};
use nas::{BenchName, RunResult, Scale};
use obs::export::{chrome_trace_with_extra, to_jsonl};
use obs::{Event, Tracer};
use std::path::Path;

/// Assemble the profiler's static context for one benchmark: machine
/// shape from the paper machine, loop labels and array spans from the
/// kernel model (allocated exactly as a dynamic run would, so addresses
/// match the trace bit-for-bit — see [`crate::lint::model_for`]).
pub fn context_for(bench: BenchName, scale: Scale) -> ProfileContext {
    let model = crate::lint::model_for(bench, scale);
    let nodes = ccnuma::MachineConfig::origin2000_16p_scaled()
        .topology
        .nodes();
    let arrays = model
        .arrays()
        .iter()
        .map(|a| {
            let (base, len) = a.vrange();
            ArraySpan::new(a.name(), base, len)
        })
        .collect();
    ProfileContext::new(
        bench.label(),
        scale.label(),
        nodes,
        ccnuma::PAGE_SIZE,
        model.cold_loop_names(),
        model.iteration_loop_names(),
        arrays,
    )
}

/// Run one benchmark traced and analyse the stream: the profile plus the
/// raw run and tracer (tests reconcile the profile against both).
pub fn profile_one(bench: BenchName, scale: Scale) -> (RunResult, Box<Tracer>, Profile) {
    let (result, tracer) = crate::trace::run_traced(bench, scale);
    let ctx = context_for(bench, scale);
    let events: Vec<Event> = tracer.ring.iter().cloned().collect();
    let profile = Profile::analyze(&events, &ctx, tracer.dropped_events());
    (result, tracer, profile)
}

/// The profile's `xp` report: the phase-attribution table plus convergence
/// and heatmap summaries as notes. Pure function of the profile.
pub fn report_for(profile: &Profile) -> Report {
    let bench = profile.bench.to_ascii_lowercase();
    let mut report = Report::new(
        &format!("prof_{bench}_{}", profile.scale),
        &format!(
            "NUMA profile of NAS {} ({}): per-phase attribution under rr-upmlib",
            profile.bench, profile.scale
        ),
        &[
            "Phase",
            "Kind",
            "Execs",
            "Wall (ms)",
            "Remote %",
            "Stall (ms)",
            "Mapped",
            "Migr",
            "Vetoed",
            "Frozen",
            "Replay",
        ],
    );
    for row in &profile.phases {
        report.row(vec![
            row.label.clone(),
            row.kind.label().to_string(),
            row.executions.to_string(),
            format!("{:.3}", row.wall_ns * 1e-6),
            format!("{:.1}", row.remote_fraction() * 100.0),
            format!("{:.3}", row.stall_ns * 1e-6),
            row.pages_mapped.to_string(),
            row.migrations.to_string(),
            row.vetoes.to_string(),
            row.freezes.to_string(),
            row.replay_moves.to_string(),
        ]);
    }
    report.note(format!(
        "{} events analysed ({} dropped), {} iterations",
        profile.events,
        profile.dropped_events,
        profile.iterations.len()
    ));
    let c = &profile.convergence;
    let decay: Vec<String> = c
        .decay
        .iter()
        .map(|(inv, moved)| format!("{inv}:{moved}"))
        .collect();
    report.note(format!(
        "migrations: {} total; decay curve {}",
        c.total_migrations,
        decay.join(" ")
    ));
    match (c.deactivated_at, c.deactivation_iteration) {
        (Some(inv), Some(iter)) => report.note(format!(
            "engine deactivated at invocation {inv} (iteration {iter})"
        )),
        _ => report.note("engine never deactivated"),
    }
    report.note(format!(
        "ping-pong census: {} pages returned to a former home, {} frozen, {} distinct pages vetoed",
        c.ping_pong_pages,
        c.frozen_pages.len(),
        c.vetoes.len()
    ));
    for map in &profile.heatmaps {
        if map.pages == 0 {
            continue;
        }
        report.note(format!(
            "heatmap {}: {} pages in {} bins, {} counter reads, {} migrations in",
            map.name,
            map.pages,
            map.bins,
            ArrayHeatmap::total(&map.accesses),
            ArrayHeatmap::total(&map.migrations_in)
        ));
    }
    for warning in &profile.warnings {
        report.note(format!("warning: {warning}"));
    }
    report
}

/// Write `prof-<bench>.{md,jsonl,chrome.json}` under `dir`.
fn write_artifacts(
    dir: &Path,
    stem: &str,
    events: &[Event],
    dropped: u64,
    profile: &Profile,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{stem}.md")), profile.to_markdown())?;
    std::fs::write(
        dir.join(format!("{stem}.jsonl")),
        to_jsonl(events.iter(), dropped),
    )?;
    let doc = chrome_trace_with_extra(events.iter(), stem, dropped, profile.counter_tracks.clone());
    std::fs::write(
        dir.join(format!("{stem}.chrome.json")),
        format!("{}\n", doc.to_string_pretty()),
    )?;
    Ok(())
}

/// The `xp prof` command: profile every requested benchmark on the cell
/// pool and write the artifacts in plan order.
pub fn run(benches: &[BenchName], scale: Scale, out_dir: &Path) -> Vec<Report> {
    let mut plan: CellPlan<(RunResult, Box<Tracer>, Profile)> = CellPlan::new();
    for &bench in benches {
        plan.add(format!("prof:{}", bench.label().to_ascii_lowercase()), {
            move || profile_one(bench, scale)
        });
    }
    let mut reports = Vec::new();
    for output in plan.execute() {
        let id = output.id.clone();
        match output.value {
            Ok((result, tracer, profile)) => {
                let mut report = report_for(&profile);
                report.note(format!(
                    "verification: {}",
                    if result.verification.passed {
                        "PASSED"
                    } else {
                        "FAILED"
                    }
                ));
                let stem = format!("prof-{}", profile.bench.to_ascii_lowercase());
                let events: Vec<Event> = tracer.ring.iter().cloned().collect();
                match write_artifacts(out_dir, &stem, &events, tracer.dropped_events(), &profile) {
                    Ok(()) => report.note(format!(
                        "artifacts: {stem}.md, {stem}.jsonl, {stem}.chrome.json"
                    )),
                    Err(e) => report.note(format!("could not write artifacts: {e}")),
                }
                reports.push(report);
            }
            Err(panic) => {
                let mut report = Report::new(
                    &format!("prof_{}", id.replace(':', "_")),
                    "NUMA profile (failed cell)",
                    &["Cell", "Status"],
                );
                report.failed_row(&id, &panic.message);
                reports.push(report);
            }
        }
    }
    reports
}

/// The `xp prof <bench> --from FILE` offline path: re-analyse a saved
/// `trace.jsonl` (any schema-compatible trace) without running anything.
pub fn run_from(
    from: &Path,
    bench: BenchName,
    scale: Scale,
    out_dir: &Path,
) -> Result<Report, String> {
    let loaded = obs::import::load_path(from).map_err(|e| e.to_string())?;
    let ctx = context_for(bench, scale);
    let profile = Profile::analyze(&loaded.events, &ctx, loaded.dropped_events);
    let mut report = report_for(&profile);
    for warning in &loaded.warnings {
        report.note(format!("import warning: {warning}"));
    }
    report.note(format!("offline profile of {}", from.display()));
    let stem = format!("prof-{}", profile.bench.to_ascii_lowercase());
    match write_artifacts(
        out_dir,
        &stem,
        &loaded.events,
        loaded.dropped_events,
        &profile,
    ) {
        Ok(()) => report.note(format!(
            "artifacts: {stem}.md, {stem}.jsonl, {stem}.chrome.json"
        )),
        Err(e) => report.note(format!("could not write artifacts: {e}")),
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_matches_the_model_and_machine() {
        let ctx = context_for(BenchName::Cg, Scale::Tiny);
        assert_eq!(ctx.bench, "CG");
        assert_eq!(ctx.scale, "tiny");
        assert_eq!(ctx.nodes, 8, "paper machine: 16 CPUs, 2 per node");
        assert_eq!(ctx.page_size, ccnuma::PAGE_SIZE);
        assert!(!ctx.cold_loops.is_empty());
        assert!(!ctx.iteration_loops.is_empty());
        assert!(ctx
            .arrays
            .iter()
            .any(|a| a.name == "cg.a" || a.name == "a" || a.name.contains('a')));
    }

    #[test]
    fn cg_profile_attributes_cleanly_and_reports() {
        let (result, _tracer, profile) = profile_one(BenchName::Cg, Scale::Tiny);
        assert!(result.verification.passed);
        assert!(
            profile.warnings.is_empty(),
            "phase map must align: {:?}",
            profile.warnings
        );
        // Every timed loop of the model shows up as an iteration-kind row
        // executed once per occurrence in the loop list per timed
        // iteration (CG's inner solve loops occur `cg_iters` times each).
        let iters = result.per_iter_secs.len() as u64;
        let ctx = context_for(BenchName::Cg, Scale::Tiny);
        for name in &ctx.iteration_loops {
            let occurrences = ctx.iteration_loops.iter().filter(|n| n == &name).count() as u64;
            let row = profile
                .phases
                .iter()
                .find(|r| &r.label == name)
                .unwrap_or_else(|| panic!("missing iteration row {name}"));
            assert_eq!(row.executions, iters * occurrences, "{name}");
        }
        let report = report_for(&profile);
        assert_eq!(report.id, "prof_cg_tiny");
        assert_eq!(report.rows.len(), profile.phases.len());
    }
}
