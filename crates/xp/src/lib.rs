//! Experiment harness: regenerates every table and figure of *"Is Data
//! Distribution Necessary in OpenMP?"* on the simulated machine.
//!
//! | Experiment | Paper artifact | Function |
//! |---|---|---|
//! | Memory-hierarchy latencies | Table 1 | [`table1::run`] |
//! | Placement sensitivity (4 schemes x IRIX-migration on/off, 5 benchmarks) | Figure 1 | [`fig1::run`] |
//! | UPMlib distribution emulation | Figure 4 | [`fig4::run`] |
//! | Residual slowdown + migration timing statistics | Table 2 | [`table2::run`] |
//! | Record–replay on BT and SP | Figure 5 | [`fig5::run`] |
//! | Record–replay with 4x-scaled phases | Figure 6 | [`fig6::run`] |
//! | Remote:local latency-ratio sweep (the paper's §6 claim) | ablation | [`ablation::latency_ratio`] |
//! | Competitive-threshold sweep | ablation | [`ablation::threshold_sweep`] |
//! | Page-freezing on/off under false sharing | ablation | [`ablation::freeze_toggle`] |
//! | Static distribution vs first-touch, ± UPMlib (four-way) | beyond the paper | [`staticplace::run`] |
//!
//! Each function returns structured rows and renders a markdown table; the
//! `xp` binary writes both to stdout and to `results/*.json`.

pub mod ablation;
pub mod bench_gate;
pub mod cache;
pub mod cells;
mod dash;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod history;
pub mod jobs;
pub mod lint;
pub mod multiprog;
pub mod prof;
pub mod remote;
pub mod report;
pub mod run_one;
pub mod seed;
pub mod selfprof;
pub mod session;
pub mod spec;
pub mod staticplace;
pub mod summary;
pub mod table1;
pub mod table2;
pub mod telemetry;
pub mod top;
pub mod trace;

pub use cells::{CellOutput, CellPlan};
pub use report::Report;
pub use run_one::{default_engine_configs, run_one, run_one_fastpath};
