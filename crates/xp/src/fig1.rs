//! Figure 1: impact of page placement on the five benchmarks, with and
//! without the IRIX kernel migration engine.
//!
//! For each benchmark, ten bars: {ft, rr, rand, wc, static} x {IRIX,
//! IRIXmig} — the paper's eight plus the lint-synthesized static placement
//! the paper couldn't generate (no such tool existed for OpenMP).
//! The paper's shape: worst-case placement slows programs 24%–248% (avg
//! ~90%); round-robin and random are modest (8%–45%); kernel migration
//! recovers part but not all of the gap, is a near-no-op under first-touch,
//! and *hurts* FT (page-level false sharing).
//!
//! Execution model: the benchmark x placement x engine grid is a
//! [`CellPlan`] — every cell an independent simulated machine — fanned out
//! over the host pool and merged in plan order (see [`crate::cells`]).

use crate::cells::{CellOutput, CellPlan};
use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// Append one benchmark's placement x engine cells to `plan`, in the
/// canonical order (placement-major, engine-minor). Adds
/// [`grid_width`]`(with_upmlib)` cells.
///
/// `with_upmlib` additionally plans the four `*-upmlib` configurations
/// (Figure 4's extra bars). The random placement scheme draws from the
/// global experiment seed ([`crate::seed`]).
pub fn plan_grid(
    plan: &mut CellPlan<RunResult>,
    bench: BenchName,
    scale: Scale,
    with_upmlib: bool,
) {
    let (kcfg, upm_opts) = default_engine_configs();
    let mut placements = PlacementScheme::all(crate::seed::get()).to_vec();
    // Fifth scheme: the lint-synthesized static placement (PlacementMap is
    // a pure function of bench x scale, so the cell keys stay stable).
    placements.push(crate::lint::static_scheme(bench, scale));
    for placement in placements {
        let mut engines = vec![EngineMode::None, EngineMode::IrixMig(kcfg)];
        if with_upmlib {
            engines.push(EngineMode::Upmlib(upm_opts));
        }
        for engine in engines {
            let cfg = RunConfig {
                placement: placement.clone(),
                engine,
                ..RunConfig::paper_default()
            };
            let spec = crate::spec::plain(bench, scale, &cfg);
            plan.add_cached(spec, move || run_one(bench, scale, &cfg));
        }
    }
}

/// Cells [`plan_grid`] appends per benchmark: five placement schemes
/// (ft/rr/rand/wc/static) times two or three engines.
pub fn grid_width(with_upmlib: bool) -> usize {
    if with_upmlib {
        15
    } else {
        10
    }
}

/// Run the full placement x engine grid for one benchmark (host-parallel).
/// Panics if any cell panicked — callers that want per-cell failure
/// isolation consume [`plan_grid`] outputs directly.
pub fn grid(bench: BenchName, scale: Scale, with_upmlib: bool) -> Vec<RunResult> {
    let mut plan = CellPlan::new();
    plan_grid(&mut plan, bench, scale, with_upmlib);
    plan.execute()
        .into_iter()
        .map(CellOutput::expect_ok)
        .collect()
}

/// The `ft-IRIX` baseline time within a result set.
pub fn baseline_secs(results: &[RunResult]) -> f64 {
    results
        .iter()
        .find(|r| r.placement == "ft" && r.engine == "IRIX")
        .expect("grid contains the ft-IRIX baseline")
        .total_secs
}

/// Run Figure 1 for all five benchmarks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig1",
        "Impact of page placement on the NAS benchmarks (execution time, simulated seconds)",
        &["Benchmark", "Config", "Time (s)", "vs ft-IRIX", "Verified"],
    );
    let mut plan = CellPlan::new();
    for bench in BenchName::all() {
        plan_grid(&mut plan, bench, scale, false);
    }
    let outputs = plan.execute();
    let mut wc_slowdowns = Vec::new();
    let mut rr_slowdowns = Vec::new();
    let mut rand_slowdowns = Vec::new();
    for (bench, chunk) in BenchName::all()
        .into_iter()
        .zip(outputs.chunks(grid_width(false)))
    {
        let ok: Vec<&RunResult> = chunk.iter().filter_map(CellOutput::ok).collect();
        let base = ok
            .iter()
            .find(|r| r.placement == "ft" && r.engine == "IRIX")
            .map(|r| r.total_secs);
        report.chart(
            &format!("NAS {} (execution time, simulated seconds)", bench.label()),
            ok.iter()
                .map(|r| crate::report::Bar {
                    label: r.label(),
                    value: r.total_secs,
                })
                .collect(),
        );
        for cell in chunk {
            let r = match &cell.value {
                Ok(r) => r,
                Err(p) => {
                    report.failed_row(&cell.id, &p.message);
                    continue;
                }
            };
            let ratio = base.map(|b| r.total_secs / b);
            if let (Some(ratio), "IRIX") = (ratio, r.engine.as_str()) {
                match r.placement.as_str() {
                    "wc" => wc_slowdowns.push(ratio),
                    "rr" => rr_slowdowns.push(ratio),
                    "rand" => rand_slowdowns.push(ratio),
                    _ => {}
                }
            }
            report.row(vec![
                bench.label().into(),
                r.label(),
                secs(r.total_secs),
                ratio.map(pct).unwrap_or_else(|| "-".into()),
                if r.verification.passed {
                    "ok".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    if !wc_slowdowns.is_empty() && !rr_slowdowns.is_empty() && !rand_slowdowns.is_empty() {
        report.note(format!(
            "average slowdown without migration: rr {}, rand {}, wc {} (paper: 22%, 23%, 90%)",
            pct(avg(&rr_slowdowns)),
            pct(avg(&rand_slowdowns)),
            pct(avg(&wc_slowdowns)),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_configs() {
        let results = grid(BenchName::Mg, Scale::Tiny, true);
        assert_eq!(results.len(), grid_width(true));
        let labels: Vec<_> = results.iter().map(|r| r.label()).collect();
        for want in [
            "ft-IRIX",
            "rr-IRIXmig",
            "rand-upmlib",
            "wc-upmlib",
            "static-IRIX",
            "static-upmlib",
        ] {
            assert!(
                labels.contains(&want.to_string()),
                "{want} missing from {labels:?}"
            );
        }
    }

    #[test]
    fn worst_case_is_slowest_class() {
        let results = grid(BenchName::Cg, Scale::Small, false);
        let base = baseline_secs(&results);
        let wc = results.iter().find(|r| r.label() == "wc-IRIX").unwrap();
        assert!(
            wc.total_secs > base,
            "worst-case ({}) must beat first-touch ({base}) for slowness",
            wc.total_secs
        );
    }
}
