//! Figure 1: impact of page placement on the five benchmarks, with and
//! without the IRIX kernel migration engine.
//!
//! For each benchmark, eight bars: {ft, rr, rand, wc} x {IRIX, IRIXmig}.
//! The paper's shape: worst-case placement slows programs 24%–248% (avg
//! ~90%); round-robin and random are modest (8%–45%); kernel migration
//! recovers part but not all of the gap, is a near-no-op under first-touch,
//! and *hurts* FT (page-level false sharing).

use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// Run the full placement x engine grid for one benchmark.
///
/// `with_upmlib` additionally runs the four `*-upmlib` configurations
/// (Figure 4's extra bars). The random placement scheme draws from the
/// global experiment seed ([`crate::seed`]).
pub fn grid(bench: BenchName, scale: Scale, with_upmlib: bool) -> Vec<RunResult> {
    let (kcfg, upm_opts) = default_engine_configs();
    let mut results = Vec::new();
    for placement in PlacementScheme::all(crate::seed::get()) {
        let mut engines = vec![EngineMode::None, EngineMode::IrixMig(kcfg)];
        if with_upmlib {
            engines.push(EngineMode::Upmlib(upm_opts));
        }
        for engine in engines {
            let cfg = RunConfig {
                placement,
                engine,
                ..RunConfig::paper_default()
            };
            results.push(run_one(bench, scale, &cfg));
        }
    }
    results
}

/// The `ft-IRIX` baseline time within a result set.
pub fn baseline_secs(results: &[RunResult]) -> f64 {
    results
        .iter()
        .find(|r| r.placement == "ft" && r.engine == "IRIX")
        .expect("grid contains the ft-IRIX baseline")
        .total_secs
}

/// Run Figure 1 for all five benchmarks.
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig1",
        "Impact of page placement on the NAS benchmarks (execution time, simulated seconds)",
        &["Benchmark", "Config", "Time (s)", "vs ft-IRIX", "Verified"],
    );
    let mut wc_slowdowns = Vec::new();
    let mut rr_slowdowns = Vec::new();
    let mut rand_slowdowns = Vec::new();
    for bench in BenchName::all() {
        let results = grid(bench, scale, false);
        let base = baseline_secs(&results);
        report.chart(
            &format!("NAS {} (execution time, simulated seconds)", bench.label()),
            results
                .iter()
                .map(|r| crate::report::Bar {
                    label: r.label(),
                    value: r.total_secs,
                })
                .collect(),
        );
        for r in &results {
            let ratio = r.total_secs / base;
            if r.engine == "IRIX" {
                match r.placement.as_str() {
                    "wc" => wc_slowdowns.push(ratio),
                    "rr" => rr_slowdowns.push(ratio),
                    "rand" => rand_slowdowns.push(ratio),
                    _ => {}
                }
            }
            report.row(vec![
                bench.label().into(),
                r.label(),
                secs(r.total_secs),
                pct(ratio),
                if r.verification.passed {
                    "ok".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    report.note(format!(
        "average slowdown without migration: rr {}, rand {}, wc {} (paper: 22%, 23%, 90%)",
        pct(avg(&rr_slowdowns)),
        pct(avg(&rand_slowdowns)),
        pct(avg(&wc_slowdowns)),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_configs() {
        let results = grid(BenchName::Mg, Scale::Tiny, true);
        assert_eq!(results.len(), 12);
        let labels: Vec<_> = results.iter().map(|r| r.label()).collect();
        for want in ["ft-IRIX", "rr-IRIXmig", "rand-upmlib", "wc-upmlib"] {
            assert!(
                labels.contains(&want.to_string()),
                "{want} missing from {labels:?}"
            );
        }
    }

    #[test]
    fn worst_case_is_slowest_class() {
        let results = grid(BenchName::Cg, Scale::Small, false);
        let base = baseline_secs(&results);
        let wc = results.iter().find(|r| r.label() == "wc-IRIX").unwrap();
        assert!(
            wc.total_secs > base,
            "worst-case ({}) must beat first-touch ({base}) for slowness",
            wc.total_secs
        );
    }
}
