//! Figure 5: the record–replay mechanism on BT and SP under first-touch.
//!
//! Four bars per benchmark: ft-IRIX, ft-IRIXmig, ft-upmlib, ft-recrep, with
//! the recrep bar split into useful time and the non-overlapped migration
//! overhead (the paper's striped segment).
//!
//! Paper shape: record–replay speeds up the *useful computation* (up to 10%
//! on BT) but its on-critical-path migration overhead outweighs the gain at
//! normal phase lengths — the total recrep bar is not better than upmlib.

use crate::cells::{CellOutput, CellPlan};
use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// The benchmarks of the figure.
pub const BENCHES: [BenchName; 2] = [BenchName::Bt, BenchName::Sp];

/// Cells per benchmark: the four engine modes.
pub const CELLS_PER_BENCH: usize = 4;

/// Append one benchmark's four Figure 5 cells to `plan`, in bar order.
pub fn plan_bars(plan: &mut CellPlan<RunResult>, bench: BenchName, scale: Scale) {
    let (kcfg, upm_opts) = default_engine_configs();
    for engine in [
        EngineMode::None,
        EngineMode::IrixMig(kcfg),
        EngineMode::Upmlib(upm_opts),
        EngineMode::RecRep(upm_opts),
    ] {
        let cfg = RunConfig {
            placement: PlacementScheme::FirstTouch,
            engine,
            ..RunConfig::paper_default()
        };
        let spec = crate::spec::plain(bench, scale, &cfg);
        plan.add_cached(spec, move || run_one(bench, scale, &cfg));
    }
}

/// The four Figure 5 configurations for one benchmark (host-parallel).
pub fn bars(bench: BenchName, scale: Scale) -> Vec<RunResult> {
    let mut plan = CellPlan::new();
    plan_bars(&mut plan, bench, scale);
    plan.execute()
        .into_iter()
        .map(CellOutput::expect_ok)
        .collect()
}

/// Run Figure 5 (BT and SP).
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig5",
        "Record-replay on BT and SP, first-touch placement",
        &[
            "Benchmark",
            "Config",
            "Time (s)",
            "of which migration overhead (s)",
            "vs ft-IRIX",
            "Verified",
        ],
    );
    let mut plan = CellPlan::new();
    for bench in BENCHES {
        plan_bars(&mut plan, bench, scale);
    }
    let outputs = plan.execute();
    for (bench, chunk) in BENCHES.into_iter().zip(outputs.chunks(CELLS_PER_BENCH)) {
        let ok: Vec<&RunResult> = chunk.iter().filter_map(CellOutput::ok).collect();
        let base = ok.iter().find(|r| r.engine == "IRIX").map(|r| r.total_secs);
        report.chart(
            &format!(
                "NAS {} (execution time; recrep bar includes its overhead)",
                bench.label()
            ),
            ok.iter()
                .map(|r| crate::report::Bar {
                    label: r.label(),
                    value: r.total_secs,
                })
                .collect(),
        );
        for cell in chunk {
            let r = match &cell.value {
                Ok(r) => r,
                Err(p) => {
                    report.failed_row(&cell.id, &p.message);
                    continue;
                }
            };
            report.row(vec![
                bench.label().into(),
                r.label(),
                secs(r.total_secs),
                secs(r.recrep_overhead_secs),
                base.map(|b| pct(r.total_secs / b))
                    .unwrap_or_else(|| "-".into()),
                if r.verification.passed {
                    "ok".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
        let upm = ok.iter().find(|r| r.engine == "upmlib");
        let recrep = ok.iter().find(|r| r.engine == "recrep");
        if let (Some(upm), Some(recrep)) = (upm, recrep) {
            let useful_recrep = recrep.total_secs - recrep.recrep_overhead_secs;
            report.note(format!(
                "{}: recrep useful time {} vs upmlib total {} (paper: useful computation up to 10% \
                 faster on BT, but overhead outweighs it)",
                bench.label(),
                secs(useful_recrep),
                secs(upm.total_secs),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recrep_pays_visible_overhead() {
        let results = bars(BenchName::Bt, Scale::Tiny);
        let recrep = results.iter().find(|r| r.engine == "recrep").unwrap();
        assert!(
            recrep.verification.passed,
            "recrep must not corrupt the numerics"
        );
        assert!(
            recrep.recrep_overhead_secs > 0.0,
            "record-replay must charge on-critical-path migration overhead"
        );
        let upm = results.iter().find(|r| r.engine == "upmlib").unwrap();
        assert_eq!(upm.recrep_overhead_secs, 0.0);
    }
}
