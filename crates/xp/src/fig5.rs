//! Figure 5: the record–replay mechanism on BT and SP under first-touch.
//!
//! Four bars per benchmark: ft-IRIX, ft-IRIXmig, ft-upmlib, ft-recrep, with
//! the recrep bar split into useful time and the non-overlapped migration
//! overhead (the paper's striped segment).
//!
//! Paper shape: record–replay speeds up the *useful computation* (up to 10%
//! on BT) but its on-critical-path migration overhead outweighs the gain at
//! normal phase lengths — the total recrep bar is not better than upmlib.

use crate::report::{pct, secs, Report};
use crate::run_one::{default_engine_configs, run_one};
use nas::{BenchName, EngineMode, RunConfig, RunResult, Scale};
use vmm::PlacementScheme;

/// The four Figure 5 configurations for one benchmark.
pub fn bars(bench: BenchName, scale: Scale) -> Vec<RunResult> {
    let (kcfg, upm_opts) = default_engine_configs();
    [
        EngineMode::None,
        EngineMode::IrixMig(kcfg),
        EngineMode::Upmlib(upm_opts),
        EngineMode::RecRep(upm_opts),
    ]
    .into_iter()
    .map(|engine| {
        run_one(
            bench,
            scale,
            &RunConfig {
                placement: PlacementScheme::FirstTouch,
                engine,
                ..RunConfig::paper_default()
            },
        )
    })
    .collect()
}

/// Run Figure 5 (BT and SP).
pub fn run(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig5",
        "Record-replay on BT and SP, first-touch placement",
        &[
            "Benchmark",
            "Config",
            "Time (s)",
            "of which migration overhead (s)",
            "vs ft-IRIX",
            "Verified",
        ],
    );
    for bench in [BenchName::Bt, BenchName::Sp] {
        let results = bars(bench, scale);
        let base = results[0].total_secs;
        report.chart(
            &format!(
                "NAS {} (execution time; recrep bar includes its overhead)",
                bench.label()
            ),
            results
                .iter()
                .map(|r| crate::report::Bar {
                    label: r.label(),
                    value: r.total_secs,
                })
                .collect(),
        );
        for r in &results {
            report.row(vec![
                bench.label().into(),
                r.label(),
                secs(r.total_secs),
                secs(r.recrep_overhead_secs),
                pct(r.total_secs / base),
                if r.verification.passed {
                    "ok".into()
                } else {
                    "FAIL".into()
                },
            ]);
        }
        let upm = &results[2];
        let recrep = &results[3];
        let useful_recrep = recrep.total_secs - recrep.recrep_overhead_secs;
        report.note(format!(
            "{}: recrep useful time {} vs upmlib total {} (paper: useful computation up to 10% \
             faster on BT, but overhead outweighs it)",
            bench.label(),
            secs(useful_recrep),
            secs(upm.total_secs),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recrep_pays_visible_overhead() {
        let results = bars(BenchName::Bt, Scale::Tiny);
        let recrep = results.iter().find(|r| r.engine == "recrep").unwrap();
        assert!(
            recrep.verification.passed,
            "recrep must not corrupt the numerics"
        );
        assert!(
            recrep.recrep_overhead_secs > 0.0,
            "record-replay must charge on-critical-path migration overhead"
        );
        let upm = results.iter().find(|r| r.engine == "upmlib").unwrap();
        assert_eq!(upm.recrep_overhead_secs, 0.0);
    }
}
