//! `xp history`: trend analytics over the perf gate's append-only log.
//!
//! `xp bench --record` appends one [`GateRecord`] per run to
//! `results/history/history.jsonl`. This module reads that log back as a
//! set of *series* — one per `(scale, bench id)` pair, in record order —
//! and reports how each gated metric moved across recorded runs:
//!
//! * **deltas** — first → last simulated seconds and migrations, plus the
//!   newest host-seconds total where the record carries a breakdown;
//! * **slope** — a least-squares fit of simulated seconds over run index,
//!   as percent of the series mean per recorded run, so a slow creep that
//!   never trips the 5% gate in any single step is still visible;
//! * **step changes** — any consecutive pair whose simulated time or
//!   migration count moved more than [`STEP_THRESHOLD`], pinpointed to
//!   the run index where the jump happened;
//! * **anomalies** — points whose residual from the fitted line exceeds
//!   [`ANOMALY_SIGMA`] robust standard deviations (estimated from the
//!   median absolute deviation, so a spike cannot inflate the yardstick
//!   used to judge it): a one-run excursion that later runs recovered
//!   from, invisible to first-vs-last deltas.
//!
//! The analysis is pure (records in, trends out); the `xp` binary renders
//! it as a markdown table or, with `--json`, as one machine-readable
//! document for dashboards.

use crate::bench_gate::{load_history, GateRecord};
use crate::report::Report;
use obs::json::Value;
use std::path::Path;

/// Consecutive-run fractional change that counts as a step (matches the
/// perf gate's default threshold).
pub const STEP_THRESHOLD: f64 = 0.05;

/// Residual-to-robust-sigma ratio past which a point is flagged
/// anomalous (sigma estimated as 1.4826 x the median absolute
/// deviation of the detrended residuals — an outlier does not inflate
/// the yardstick it is judged against).
pub const ANOMALY_SIGMA: f64 = 3.0;

/// One benchmark's value at one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Index of the record in the history log (0-based).
    pub run: usize,
    /// Simulated seconds (deterministic, the primary trend metric).
    pub sim_secs: f64,
    /// Total page migrations (deterministic).
    pub migrations: u64,
    /// Total host seconds across the breakdown (0 for v1 records).
    pub host_secs: f64,
}

/// One consecutive-run jump past [`STEP_THRESHOLD`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepChange {
    /// History run index the series jumped *at* (the later of the pair).
    pub run: usize,
    /// Which metric jumped (`sim_secs` or `migrations`).
    pub metric: &'static str,
    /// Fractional change from the previous run (+0.25 = 25% slower).
    pub delta: f64,
}

/// The full trend for one `(scale, bench)` series.
#[derive(Debug, Clone)]
pub struct BenchTrend {
    /// Problem-scale label the series was recorded at.
    pub scale: String,
    /// Benchmark id (`cg`, `cg-static`, ...).
    pub id: String,
    /// The series, in history order.
    pub points: Vec<TrendPoint>,
    /// Fractional first→last change of simulated seconds.
    pub sim_delta: f64,
    /// Least-squares slope of simulated seconds, as fraction of the
    /// series mean per recorded run (0 for single-point series).
    pub sim_slope: f64,
    /// First→last migration-count change.
    pub migration_delta: i64,
    /// Consecutive-run jumps past the threshold, oldest first.
    pub steps: Vec<StepChange>,
    /// Run indices whose sim-seconds residual from the fitted line
    /// exceeds [`ANOMALY_SIGMA`] sigmas.
    pub anomalies: Vec<usize>,
}

impl BenchTrend {
    /// True when the series shows nothing worth a second look.
    pub fn quiet(&self) -> bool {
        self.steps.is_empty() && self.anomalies.is_empty()
    }
}

/// Least-squares slope of `ys` over their indices (0 for short series).
fn slope(ys: &[f64]) -> f64 {
    let n = ys.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Fractional change `b/a - 1`, 0 when the base is 0.
fn frac_delta(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        0.0
    } else {
        b / a - 1.0
    }
}

/// Build one [`BenchTrend`] from a series of points.
fn trend_of(scale: String, id: String, points: Vec<TrendPoint>) -> BenchTrend {
    let sims: Vec<f64> = points.iter().map(|p| p.sim_secs).collect();
    let first = points.first();
    let last = points.last();
    let sim_delta = match (first, last) {
        (Some(a), Some(b)) => frac_delta(a.sim_secs, b.sim_secs),
        _ => 0.0,
    };
    let migration_delta = match (first, last) {
        (Some(a), Some(b)) => b.migrations as i64 - a.migrations as i64,
        _ => 0,
    };
    let mean = if sims.is_empty() {
        0.0
    } else {
        sims.iter().sum::<f64>() / sims.len() as f64
    };
    let raw_slope = slope(&sims);
    let sim_slope = if mean == 0.0 { 0.0 } else { raw_slope / mean };

    let mut steps = Vec::new();
    for pair in points.windows(2) {
        let d = frac_delta(pair[0].sim_secs, pair[1].sim_secs);
        if d.abs() > STEP_THRESHOLD {
            steps.push(StepChange {
                run: pair[1].run,
                metric: "sim_secs",
                delta: d,
            });
        }
        let d = frac_delta(pair[0].migrations as f64, pair[1].migrations as f64);
        if d.abs() > STEP_THRESHOLD {
            steps.push(StepChange {
                run: pair[1].run,
                metric: "migrations",
                delta: d,
            });
        }
    }

    // Residuals from the fitted line, judged against a robust sigma
    // (1.4826 x the median absolute deviation). A plain standard
    // deviation would let a big spike inflate the yardstick enough to
    // mask itself; MAD keeps the yardstick anchored to the quiet points.
    // The STEP_THRESHOLD x mean floor keeps near-deterministic series
    // (MAD ~ 0) from flagging sub-threshold wiggle.
    let mut anomalies = Vec::new();
    if sims.len() >= 4 {
        let mean_x = (sims.len() as f64 - 1.0) / 2.0;
        let residual = |i: usize, y: f64| y - (mean + raw_slope * (i as f64 - mean_x));
        let median = |xs: &mut Vec<f64>| -> f64 {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = xs.len();
            if n % 2 == 1 {
                xs[n / 2]
            } else {
                (xs[n / 2 - 1] + xs[n / 2]) / 2.0
            }
        };
        let res: Vec<f64> = sims
            .iter()
            .enumerate()
            .map(|(i, &y)| residual(i, y))
            .collect();
        let center = median(&mut res.clone());
        let mut abs_dev: Vec<f64> = res.iter().map(|r| (r - center).abs()).collect();
        let robust_sigma = 1.4826 * median(&mut abs_dev);
        let cutoff = (ANOMALY_SIGMA * robust_sigma).max(STEP_THRESHOLD * mean.abs());
        for (i, r) in res.iter().enumerate() {
            if (r - center).abs() > cutoff {
                anomalies.push(points[i].run);
            }
        }
    }

    BenchTrend {
        scale,
        id,
        points,
        sim_delta,
        sim_slope,
        migration_delta,
        steps,
        anomalies,
    }
}

/// Group history records into per-`(scale, bench)` trends, series in
/// first-appearance order (matches the committed log's suite order).
pub fn analyze(records: &[GateRecord]) -> Vec<BenchTrend> {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut series: std::collections::HashMap<(String, String), Vec<TrendPoint>> =
        std::collections::HashMap::new();
    for (run, record) in records.iter().enumerate() {
        for entry in &record.entries {
            let key = (record.scale.clone(), entry.id.clone());
            if !series.contains_key(&key) {
                order.push(key.clone());
            }
            series.entry(key).or_default().push(TrendPoint {
                run,
                sim_secs: entry.sim_secs,
                migrations: entry.migrations,
                host_secs: entry.host_secs.iter().map(|(_, s)| s).sum(),
            });
        }
    }
    order
        .into_iter()
        .map(|(scale, id)| {
            let points = series.remove(&(scale.clone(), id.clone())).unwrap();
            trend_of(scale, id, points)
        })
        .collect()
}

/// The trends as one markdown report.
pub fn report(trends: &[BenchTrend], runs: usize) -> Report {
    let mut report = Report::new(
        "history_trends",
        &format!("Perf history trends ({runs} recorded runs)"),
        &[
            "Scale",
            "Bench",
            "Runs",
            "Sim first (s)",
            "Sim last (s)",
            "Sim Δ%",
            "Slope %/run",
            "Migr Δ",
            "Flags",
        ],
    );
    for t in trends {
        let first = t.points.first().map(|p| p.sim_secs).unwrap_or(0.0);
        let last = t.points.last().map(|p| p.sim_secs).unwrap_or(0.0);
        let mut flags = Vec::new();
        for s in &t.steps {
            flags.push(format!(
                "step@{} {} {:+.1}%",
                s.run,
                s.metric,
                s.delta * 100.0
            ));
        }
        for &run in &t.anomalies {
            flags.push(format!("anomaly@{run}"));
        }
        report.row(vec![
            t.scale.clone(),
            t.id.clone(),
            t.points.len().to_string(),
            format!("{:.6}", first),
            format!("{:.6}", last),
            format!("{:+.2}", t.sim_delta * 100.0),
            format!("{:+.3}", t.sim_slope * 100.0),
            format!("{:+}", t.migration_delta),
            if flags.is_empty() {
                "-".to_string()
            } else {
                flags.join("; ")
            },
        ]);
    }
    let noisy = trends.iter().filter(|t| !t.quiet()).count();
    report.note(format!(
        "{} series; {noisy} with step changes or anomalies \
         (step threshold {:.0}%, anomaly {ANOMALY_SIGMA}σ off the fitted line)",
        trends.len(),
        STEP_THRESHOLD * 100.0
    ));
    report
}

/// The trends as one machine-readable JSON document.
pub fn to_json(trends: &[BenchTrend], runs: usize) -> Value {
    let series = trends
        .iter()
        .map(|t| {
            let points = Value::Array(
                t.points
                    .iter()
                    .map(|p| {
                        Value::object(vec![
                            ("run", p.run.into()),
                            ("sim_secs", p.sim_secs.into()),
                            ("migrations", p.migrations.into()),
                            ("host_secs", p.host_secs.into()),
                        ])
                    })
                    .collect(),
            );
            let steps = Value::Array(
                t.steps
                    .iter()
                    .map(|s| {
                        Value::object(vec![
                            ("run", s.run.into()),
                            ("metric", s.metric.into()),
                            ("delta", s.delta.into()),
                        ])
                    })
                    .collect(),
            );
            Value::object(vec![
                ("scale", t.scale.as_str().into()),
                ("id", t.id.as_str().into()),
                ("points", points),
                ("sim_delta", t.sim_delta.into()),
                ("sim_slope", t.sim_slope.into()),
                ("migration_delta", t.migration_delta.into()),
                ("steps", steps),
                (
                    "anomalies",
                    Value::Array(t.anomalies.iter().map(|&r| r.into()).collect()),
                ),
            ])
        })
        .collect();
    Value::object(vec![
        ("schema", "ddnomp-history v1".into()),
        ("runs", runs.into()),
        ("series", Value::Array(series)),
    ])
}

/// `xp history`: load the log, analyze, render (markdown or JSON).
/// `bench` restricts the report to one benchmark's series (its static
/// companion included).
pub fn run(history_dir: &Path, json: bool, bench: Option<&str>) -> Result<String, String> {
    let records = load_history(&history_dir.join("history.jsonl"))?;
    let mut trends = analyze(&records);
    if let Some(bench) = bench {
        let stat = format!("{bench}-static");
        trends.retain(|t| t.id == bench || t.id == stat);
        if trends.is_empty() {
            return Err(format!("no recorded series for benchmark '{bench}'"));
        }
    }
    Ok(if json {
        format!("{}\n", to_json(&trends, records.len()).to_string_pretty())
    } else {
        report(&trends, records.len()).to_markdown()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_gate::{GateEntry, BENCH_SCHEMA_MAJOR};

    fn record(scale: &str, entries: Vec<(&str, f64, u64)>) -> GateRecord {
        GateRecord {
            schema_major: BENCH_SCHEMA_MAJOR,
            scale: scale.into(),
            seed: 20000,
            entries: entries
                .into_iter()
                .map(|(id, sim_secs, migrations)| GateEntry {
                    id: id.into(),
                    sim_secs,
                    wall_secs: 0.1,
                    migrations,
                    remote_fraction: 0.2,
                    host_secs: vec![("ccnuma".into(), 0.05)],
                })
                .collect(),
        }
    }

    #[test]
    fn series_group_by_scale_and_bench_in_first_appearance_order() {
        let records = vec![
            record("tiny", vec![("cg", 1.0, 100), ("mg", 2.0, 50)]),
            record("small", vec![("cg", 4.0, 400)]),
            record("tiny", vec![("cg", 1.0, 100), ("mg", 2.0, 50)]),
        ];
        let trends = analyze(&records);
        let keys: Vec<(String, String)> = trends
            .iter()
            .map(|t| (t.scale.clone(), t.id.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("tiny".into(), "cg".into()),
                ("tiny".into(), "mg".into()),
                ("small".into(), "cg".into()),
            ]
        );
        assert_eq!(trends[0].points.len(), 2);
        assert_eq!(trends[2].points.len(), 1);
        assert_eq!(trends[0].points[1].run, 2);
        assert!(trends.iter().all(BenchTrend::quiet));
    }

    #[test]
    fn deltas_slope_and_steps_are_detected() {
        // cg creeps 2% per run (never trips a single step), mg jumps 50%
        // at run 2 and migrates more.
        let records = vec![
            record("tiny", vec![("cg", 1.00, 100), ("mg", 2.0, 50)]),
            record("tiny", vec![("cg", 1.02, 100), ("mg", 2.0, 50)]),
            record("tiny", vec![("cg", 1.04, 100), ("mg", 3.0, 80)]),
            record("tiny", vec![("cg", 1.06, 100), ("mg", 3.0, 80)]),
        ];
        let trends = analyze(&records);
        let cg = &trends[0];
        assert!(cg.steps.is_empty(), "{:?}", cg.steps);
        assert!((cg.sim_delta - 0.06).abs() < 1e-9);
        // Slope ≈ 0.02 absolute per run ≈ 1.94% of the mean per run.
        assert!(
            cg.sim_slope > 0.015 && cg.sim_slope < 0.025,
            "{}",
            cg.sim_slope
        );
        let mg = &trends[1];
        assert_eq!(mg.migration_delta, 30);
        let metrics: Vec<&str> = mg.steps.iter().map(|s| s.metric).collect();
        assert_eq!(metrics, vec!["sim_secs", "migrations"]);
        assert_eq!(mg.steps[0].run, 2);
        assert!((mg.steps[0].delta - 0.5).abs() < 1e-9);
    }

    #[test]
    fn a_recovered_spike_is_an_anomaly_but_not_a_delta() {
        let mut sims = [1.0; 9];
        sims[4] = 3.0; // one-run spike, fully recovered
        let records: Vec<GateRecord> = sims
            .iter()
            .map(|&s| record("tiny", vec![("cg", s, 100)]))
            .collect();
        let trends = analyze(&records);
        assert_eq!(trends[0].anomalies, vec![4]);
        // First→last delta sees nothing.
        assert!(trends[0].sim_delta.abs() < 1e-9);
    }

    #[test]
    fn report_and_json_render_the_same_trends() {
        let records = vec![
            record("tiny", vec![("cg", 1.0, 100)]),
            record("tiny", vec![("cg", 2.0, 100)]),
        ];
        let trends = analyze(&records);
        let md = report(&trends, records.len()).to_markdown();
        assert!(md.contains("| tiny | cg | 2 |"), "{md}");
        assert!(md.contains("step@1 sim_secs +100.0%"), "{md}");
        let v = to_json(&trends, records.len());
        assert_eq!(v["schema"].as_str(), Some("ddnomp-history v1"));
        assert_eq!(v["runs"].as_u64(), Some(2));
        assert_eq!(v["series"][0]["id"].as_str(), Some("cg"));
        assert_eq!(v["series"][0]["steps"][0]["run"].as_u64(), Some(1));
        // The document round-trips through the parser.
        let parsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(parsed["series"][0]["sim_delta"].as_f64(), Some(1.0));
    }

    #[test]
    fn the_committed_history_analyzes_clean() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/history");
        let out = run(&path, true, None).unwrap();
        let v = Value::parse(out.trim()).unwrap();
        assert!(v["runs"].as_u64().unwrap() >= 1);
        assert!(!v["series"].as_array().unwrap().is_empty());
        let md = run(&path, false, None).unwrap();
        assert!(md.contains("Perf history trends"), "{md}");
        // The bench filter keeps the benchmark and its static companion.
        let out = run(&path, true, Some("cg")).unwrap();
        let v = Value::parse(out.trim()).unwrap();
        for s in v["series"].as_array().unwrap() {
            assert!(matches!(s["id"].as_str(), Some("cg" | "cg-static")));
        }
        assert!(run(&path, true, Some("nope")).is_err());
    }
}
