//! `xp` — the experiment driver.
//!
//! ```text
//! xp [COMMAND] [--scale tiny|small|medium] [--seed N] [--jobs N] [--out DIR] [--trace DIR]
//! xp trace <bt|sp|cg|mg|ft> [--scale tiny|small|medium] [--out DIR]
//! ```
//!
//! Prints each experiment's markdown table to stdout, writes the raw rows
//! as JSON under the output directory (default `results/`), and records
//! per-experiment timing in `results/bench_summary.json`.
//!
//! Experiment cells run on a host-parallel worker pool (`--jobs N`,
//! default: available parallelism); reports are byte-identical for every
//! jobs count (see `crates/xp/src/cells.rs`).

use nas::Scale;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use xp::summary::SummaryEntry;
use xp::Report;

const COMMANDS: &str =
    "table1|fig1|fig4|table2|fig5|fig6|ablations|multiprog|all|trace|prof|selfprof|bench|lint";

const USAGE: &str = "\
xp — experiment driver for the data-distribution study

usage:
  xp [COMMAND] [--scale tiny|small|medium] [--seed N] [--jobs N] [--out DIR] [--trace DIR]
  xp trace <bt|sp|cg|mg|ft> [--scale tiny|small|medium] [--out DIR]
  xp prof <bt|sp|cg|mg|ft>|--all [--scale tiny|small|medium] [--out DIR]
          [--from FILE]
  xp selfprof <bt|sp|cg|mg|ft>|--all [--scale tiny|small|medium] [--out DIR]
  xp bench --record|--check [--bench bt|sp|cg|mg|ft] [--threshold PCT]
          [--history DIR] [--scale tiny|small|medium] [--out DIR]
  xp lint [--bench bt|sp|cg|mg|ft] [--all] [--deny CODES] [--allow FILE]
          [--scale tiny|small|medium] [--out DIR]

commands:
  table1     memory-hierarchy latencies (paper Table 1)
  fig1       placement sensitivity grid (Figure 1)
  fig4       UPMlib distribution engine (Figure 4)
  table2     residual slowdown + migration timing (Table 2)
  fig5       record-replay on BT and SP (Figure 5)
  fig6       record-replay with lengthened phases (Figure 6)
  ablations  sensitivity studies beyond the paper
  multiprog  job mixes under the kernel scheduler: per-job slowdown per
             policy (gang/space/timeshare) x engine variant
  all        everything above (default)
  trace      run one benchmark with event tracing; writes trace.jsonl and
             trace.chrome.json (open in Perfetto) under the output dir
  prof       trace-driven NUMA profile: per-phase attribution, page
             heatmaps and convergence diagnostics; writes
             prof-<bench>.{md,jsonl,chrome.json} under the output dir
             (--from FILE re-analyses a saved trace.jsonl offline)
  selfprof   host-side self-profile: where the simulator's own host CPU
             time goes (span tree, per-component breakdown); writes
             selfprof-<bench>.{md,jsonl,chrome.json} under the output dir
  bench      perf-regression gate: --record writes results/history/
             baseline.json (and appends to history.jsonl); --check re-runs
             the suite and exits 1 if simulated time or migrations grew
             past --threshold (default 5%) on any benchmark
  lint       static NUMA/race analysis of the benchmark kernels (no machine
             simulation); exits 1 if a denied finding is not allowlisted

options:
  --scale tiny|small|medium  problem scale (default medium)
  --seed N                   experiment seed for seeded components such as
                             random placement (default 20000)
  --jobs N                   worker threads for experiment cells (default:
                             available parallelism; reports are identical
                             for every N)
  --out DIR                  output directory for reports (default results/)
  --trace DIR                also record an event trace of every run into
                             DIR (commands other than trace)
  --bench NAME               restrict lint or bench to one benchmark
  --all                      all five benchmarks (lint: default; prof and
                             selfprof: instead of a positional benchmark)
  --from FILE                prof: analyse a saved trace.jsonl instead of
                             running the benchmark
  --record                   bench: record the current suite as baseline
  --check                    bench: compare HEAD against the baseline
  --threshold PCT            bench --check: regression threshold percent
                             (default 5)
  --history DIR              bench: history directory (default
                             results/history)
  --deny CODES               comma list of lint categories (races,
                             false-sharing, numa, perf, determinism, all)
                             and/or codes (L001..L008) that fail the run
  --allow FILE               lint allowlist file (default: lint.allow in the
                             current directory, when present)
  -h, --help                 show this help
";

/// Number of lint findings that hit the deny set (set by the lint job,
/// checked after reports are written so the JSON still lands on disk).
static LINT_DENIED: AtomicUsize = AtomicUsize::new(0);

/// Number of benchmarks `xp bench --check` found regressed (same pattern:
/// checked after the comparison report lands on disk).
static BENCH_REGRESSED: AtomicUsize = AtomicUsize::new(0);

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("run `xp --help` for usage");
    std::process::exit(2);
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        other => die(&format!(
            "unknown scale '{other}' (expected tiny|small|medium)"
        )),
    }
}

/// One experiment to run: its summary id plus the closure producing its
/// reports.
type Job = (&'static str, Box<dyn FnOnce() -> Vec<Report>>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut scale = Scale::Medium;
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir: Option<PathBuf> = None;
    let mut lint_bench: Option<String> = None;
    let mut lint_all = false;
    let mut lint_deny: Option<String> = None;
    let mut lint_allow: Option<PathBuf> = None;
    let mut prof_from: Option<PathBuf> = None;
    let mut bench_record = false;
    let mut bench_check = false;
    let mut bench_threshold: Option<f64> = None;
    let mut bench_history: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| die("--scale needs a value"));
                scale = parse_scale(v);
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                let seed = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| die(&format!("--seed needs an integer, got '{v}'")));
                xp::seed::set(seed);
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| die("--jobs needs a value"));
                let jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die(&format!("--jobs needs a positive integer, got '{v}'")));
                xp::jobs::set(jobs);
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| die("--out needs a value"));
                out_dir = PathBuf::from(v);
            }
            "--trace" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--trace needs a directory"));
                trace_dir = Some(PathBuf::from(v));
            }
            "--bench" => {
                let v = it.next().unwrap_or_else(|| die("--bench needs a value"));
                lint_bench = Some(v.to_string());
            }
            "--all" => lint_all = true,
            "--deny" => {
                let v = it.next().unwrap_or_else(|| die("--deny needs a value"));
                lint_deny = Some(v.to_string());
            }
            "--allow" => {
                let v = it.next().unwrap_or_else(|| die("--allow needs a file"));
                lint_allow = Some(PathBuf::from(v));
            }
            "--from" => {
                let v = it.next().unwrap_or_else(|| die("--from needs a file"));
                prof_from = Some(PathBuf::from(v));
            }
            "--record" => bench_record = true,
            "--check" => bench_check = true,
            "--threshold" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--threshold needs a value"));
                let pct = v
                    .parse::<f64>()
                    .ok()
                    .filter(|p| *p >= 0.0)
                    .unwrap_or_else(|| {
                        die(&format!(
                            "--threshold needs a non-negative percentage, got '{v}'"
                        ))
                    });
                bench_threshold = Some(pct);
            }
            "--history" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--history needs a directory"));
                bench_history = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag '{flag}'")),
            other => positionals.push(other.to_string()),
        }
    }
    let command = positionals.first().cloned().unwrap_or_else(|| "all".into());
    if !matches!(command.as_str(), "lint" | "bench") && lint_bench.is_some() {
        die("--bench applies to `xp lint` and `xp bench`");
    }
    if !matches!(command.as_str(), "lint" | "prof" | "selfprof") && lint_all {
        die("--all applies to `xp lint`, `xp prof` and `xp selfprof`");
    }
    if command != "lint" && (lint_deny.is_some() || lint_allow.is_some()) {
        die("--deny/--allow apply to `xp lint`");
    }
    if command != "prof" && prof_from.is_some() {
        die("--from applies to `xp prof`");
    }
    if command != "bench"
        && (bench_record || bench_check || bench_threshold.is_some() || bench_history.is_some())
    {
        die("--record/--check/--threshold/--history apply to `xp bench`");
    }
    if !matches!(command.as_str(), "trace" | "prof" | "selfprof") {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        xp::trace::set_dir(trace_dir);
    } else if trace_dir.is_some() {
        die(&format!(
            "--trace applies to the other commands; `xp {command}` manages its own tracing"
        ));
    }

    let table1: Job = ("table1", Box::new(|| vec![xp::table1::run()]));
    let fig1: Job = ("fig1", Box::new(move || vec![xp::fig1::run(scale)]));
    let fig4: Job = ("fig4", Box::new(move || vec![xp::fig4::run(scale)]));
    let table2: Job = ("table2", Box::new(move || vec![xp::table2::run(scale)]));
    let fig5: Job = ("fig5", Box::new(move || vec![xp::fig5::run(scale)]));
    let fig6: Job = ("fig6", Box::new(move || vec![xp::fig6::run(scale)]));
    let ablations: Job = (
        "ablations",
        Box::new(move || {
            vec![
                xp::ablation::latency_ratio(scale),
                xp::ablation::threshold_sweep(scale),
                xp::ablation::freeze_toggle(scale),
                xp::ablation::replication(scale),
                xp::ablation::machine_size(scale),
                xp::ablation::scheduler_disruption(scale),
            ]
        }),
    );
    let multiprog: Job = (
        "multiprog",
        Box::new(move || vec![xp::multiprog::run(scale)]),
    );

    let jobs: Vec<Job> = match command.as_str() {
        "table1" => vec![table1],
        "fig1" => vec![fig1],
        "fig4" => vec![fig4],
        "table2" => vec![table2],
        "fig5" => vec![fig5],
        "fig6" => vec![fig6],
        "ablations" => vec![ablations],
        "multiprog" => vec![multiprog],
        "all" => vec![table1, fig1, fig4, table2, fig5, fig6, ablations, multiprog],
        "trace" => {
            let name = positionals
                .get(1)
                .unwrap_or_else(|| die("trace needs a benchmark (expected bt|sp|cg|mg|ft)"));
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            let bench = xp::trace::parse_bench(name).unwrap_or_else(|| {
                die(&format!(
                    "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                ))
            });
            let out = out_dir.clone();
            vec![(
                "trace",
                Box::new(move || vec![xp::trace::run(bench, scale, &out)]),
            )]
        }
        "prof" => {
            let benches: Vec<nas::BenchName> = match (positionals.get(1), lint_all) {
                (Some(_), true) => die("prof takes a benchmark or --all, not both"),
                (None, false) => die("prof needs a benchmark (expected bt|sp|cg|mg|ft) or --all"),
                (None, true) => nas::BenchName::all().to_vec(),
                (Some(name), false) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
            };
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            if prof_from.is_some() && benches.len() != 1 {
                die("--from profiles one saved trace; name the benchmark it came from");
            }
            let out = out_dir.clone();
            let from = prof_from.clone();
            vec![(
                "prof",
                Box::new(move || match from {
                    Some(path) => match xp::prof::run_from(&path, benches[0], scale, &out) {
                        Ok(report) => vec![report],
                        Err(e) => die(&e),
                    },
                    None => xp::prof::run(&benches, scale, &out),
                }),
            )]
        }
        "selfprof" => {
            let benches: Vec<nas::BenchName> = match (positionals.get(1), lint_all) {
                (Some(_), true) => die("selfprof takes a benchmark or --all, not both"),
                (None, false) => {
                    die("selfprof needs a benchmark (expected bt|sp|cg|mg|ft) or --all")
                }
                (None, true) => nas::BenchName::all().to_vec(),
                (Some(name), false) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
            };
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            let out = out_dir.clone();
            vec![(
                "selfprof",
                Box::new(move || xp::selfprof::run(&benches, scale, &out)),
            )]
        }
        "bench" => {
            if bench_record == bench_check {
                die("bench needs exactly one of --record or --check");
            }
            let benches: Vec<nas::BenchName> = match &lint_bench {
                Some(name) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
                None => nas::BenchName::all().to_vec(),
            };
            let history = bench_history
                .clone()
                .unwrap_or_else(|| PathBuf::from("results/history"));
            let threshold = bench_threshold.unwrap_or(5.0) / 100.0;
            vec![(
                "bench",
                Box::new(move || {
                    if bench_record {
                        match xp::bench_gate::record(&benches, scale, &history) {
                            Ok(report) => vec![report],
                            Err(e) => die(&e),
                        }
                    } else {
                        match xp::bench_gate::check(&benches, scale, &history, threshold) {
                            Ok(run) => {
                                BENCH_REGRESSED.store(run.regressions, Ordering::Relaxed);
                                vec![run.report]
                            }
                            Err(e) => die(&e),
                        }
                    }
                }),
            )]
        }
        "lint" => {
            if lint_all && lint_bench.is_some() {
                die("--all and --bench are mutually exclusive");
            }
            let benches: Vec<nas::BenchName> = match &lint_bench {
                Some(name) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
                None => nas::BenchName::all().to_vec(),
            };
            let deny =
                lint::parse_deny(lint_deny.as_deref().unwrap_or("")).unwrap_or_else(|e| die(&e));
            let allow_path = lint_allow.clone().or_else(|| {
                std::path::Path::new("lint.allow")
                    .exists()
                    .then(|| "lint.allow".into())
            });
            let allow = match &allow_path {
                Some(p) => lint::Allowlist::load(p)
                    .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", p.display()))),
                None => lint::Allowlist::empty(),
            };
            if let Some(p) = &allow_path {
                eprintln!("[allowlist {} ({} keys)]", p.display(), allow.len());
            }
            vec![(
                "lint",
                Box::new(move || {
                    let run = xp::lint::run(&benches, scale, &deny, &allow);
                    for f in &run.denied {
                        eprintln!("denied: {}", f.render());
                    }
                    LINT_DENIED.store(run.denied.len(), Ordering::Relaxed);
                    vec![run.report]
                }),
            )]
        }
        other => die(&format!("unknown command '{other}' (expected {COMMANDS})")),
    };

    let mut entries: Vec<SummaryEntry> = Vec::new();
    // Per job: its reports plus the pool-telemetry footer its plans
    // accumulated. The footer goes to stdout only, never into the saved
    // JSON, so result trees stay identical across --jobs counts.
    let mut groups: Vec<(Vec<Report>, Vec<String>)> = Vec::new();
    for (id, job) in jobs {
        xp::summary::take_sim_secs();
        xp::summary::take_wall();
        xp::telemetry::take_footer();
        let t0 = Instant::now();
        let produced = job();
        let footer = xp::telemetry::take_footer();
        let (cells_wall_secs, pool_wall_secs) = xp::summary::take_wall();
        entries.push(SummaryEntry {
            id: id.to_string(),
            sim_secs: xp::summary::take_sim_secs(),
            wall_secs: t0.elapsed().as_secs_f64(),
            cells_wall_secs,
            pool_wall_secs,
        });
        groups.push((produced, footer));
    }

    for (reports, footer) in &groups {
        for report in reports {
            print!("{}", report.to_markdown());
            match report.save_json(&out_dir) {
                Ok(path) => eprintln!("[saved {}]", path.display()),
                Err(e) => eprintln!("[warn: could not save {}: {e}]", report.id),
            }
        }
        if !footer.is_empty() {
            for line in footer {
                println!("[pool] {line}");
            }
            println!();
        }
    }
    let scale_label = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    };
    match xp::summary::write(
        &out_dir,
        scale_label,
        xp::seed::get(),
        xp::jobs::get(),
        &entries,
    ) {
        Ok(path) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn: could not save bench_summary.json: {e}]"),
    }
    let denied = LINT_DENIED.load(Ordering::Relaxed);
    if denied > 0 {
        eprintln!("lint: {denied} denied findings (see rows marked `denied`)");
        std::process::exit(1);
    }
    let regressed = BENCH_REGRESSED.load(Ordering::Relaxed);
    if regressed > 0 {
        eprintln!("bench: {regressed} benchmark(s) regressed past the threshold");
        std::process::exit(1);
    }
}
