//! `xp` — the experiment driver.
//!
//! ```text
//! xp [COMMAND] [--scale tiny|small|medium] [--out DIR] [--trace DIR]
//! xp trace <bt|sp|cg|mg|ft> [--scale tiny|small|medium] [--out DIR]
//! ```
//!
//! Prints each experiment's markdown table to stdout and writes the raw
//! rows as JSON under the output directory (default `results/`).

use nas::Scale;
use std::path::PathBuf;
use xp::Report;

const COMMANDS: &str = "table1|fig1|fig4|table2|fig5|fig6|ablations|all|trace";

const USAGE: &str = "\
xp — experiment driver for the data-distribution study

usage:
  xp [COMMAND] [--scale tiny|small|medium] [--out DIR] [--trace DIR]
  xp trace <bt|sp|cg|mg|ft> [--scale tiny|small|medium] [--out DIR]

commands:
  table1     memory-hierarchy latencies (paper Table 1)
  fig1       placement sensitivity grid (Figure 1)
  fig4       UPMlib distribution engine (Figure 4)
  table2     residual slowdown + migration timing (Table 2)
  fig5       record-replay on BT and SP (Figure 5)
  fig6       record-replay with lengthened phases (Figure 6)
  ablations  sensitivity studies beyond the paper
  all        everything above (default)
  trace      run one benchmark with event tracing; writes trace.jsonl and
             trace.chrome.json (open in Perfetto) under the output dir

options:
  --scale tiny|small|medium  problem scale (default medium)
  --out DIR                  output directory for reports (default results/)
  --trace DIR                also record an event trace of every run into
                             DIR (commands other than trace)
  -h, --help                 show this help
";

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("run `xp --help` for usage");
    std::process::exit(2);
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        other => die(&format!(
            "unknown scale '{other}' (expected tiny|small|medium)"
        )),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut scale = Scale::Medium;
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| die("--scale needs a value"));
                scale = parse_scale(v);
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| die("--out needs a value"));
                out_dir = PathBuf::from(v);
            }
            "--trace" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--trace needs a directory"));
                trace_dir = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag '{flag}'")),
            other => positionals.push(other.to_string()),
        }
    }
    let command = positionals.first().cloned().unwrap_or_else(|| "all".into());
    if command != "trace" {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        xp::trace::set_dir(trace_dir);
    } else if trace_dir.is_some() {
        die("--trace applies to the other commands; `xp trace` always writes its trace");
    }

    let reports: Vec<Report> = match command.as_str() {
        "table1" => vec![xp::table1::run()],
        "fig1" => vec![xp::fig1::run(scale)],
        "fig4" => vec![xp::fig4::run(scale)],
        "table2" => vec![xp::table2::run(scale)],
        "fig5" => vec![xp::fig5::run(scale)],
        "fig6" => vec![xp::fig6::run(scale)],
        "ablations" => vec![
            xp::ablation::latency_ratio(scale),
            xp::ablation::threshold_sweep(scale),
            xp::ablation::freeze_toggle(scale),
            xp::ablation::replication(scale),
            xp::ablation::machine_size(scale),
            xp::ablation::scheduler_disruption(scale),
        ],
        "all" => vec![
            xp::table1::run(),
            xp::fig1::run(scale),
            xp::fig4::run(scale),
            xp::table2::run(scale),
            xp::fig5::run(scale),
            xp::fig6::run(scale),
            xp::ablation::latency_ratio(scale),
            xp::ablation::threshold_sweep(scale),
            xp::ablation::freeze_toggle(scale),
            xp::ablation::replication(scale),
            xp::ablation::machine_size(scale),
            xp::ablation::scheduler_disruption(scale),
        ],
        "trace" => {
            let name = positionals
                .get(1)
                .unwrap_or_else(|| die("trace needs a benchmark (expected bt|sp|cg|mg|ft)"));
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            let bench = xp::trace::parse_bench(name).unwrap_or_else(|| {
                die(&format!(
                    "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                ))
            });
            vec![xp::trace::run(bench, scale, &out_dir)]
        }
        other => die(&format!("unknown command '{other}' (expected {COMMANDS})")),
    };

    for report in &reports {
        print!("{}", report.to_markdown());
        match report.save_json(&out_dir) {
            Ok(path) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("[warn: could not save {}: {e}]", report.id),
        }
    }
}
