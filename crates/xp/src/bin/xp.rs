//! `xp` — the experiment driver.
//!
//! ```text
//! xp <table1|fig1|fig4|table2|fig5|fig6|ablations|all> [--scale tiny|small|medium]
//!           [--out DIR]
//! ```
//!
//! Prints each experiment's markdown table to stdout and writes the raw
//! rows as JSON under the output directory (default `results/`).

use nas::Scale;
use std::path::PathBuf;
use xp::Report;

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        other => {
            eprintln!("unknown scale '{other}' (expected tiny|small|medium)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut scale = Scale::Medium;
    let mut out_dir = PathBuf::from("results");
    let mut it = args.iter();
    if let Some(first) = it.next() {
        command = first.clone();
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--scale needs a value");
                    std::process::exit(2);
                });
                scale = parse_scale(v);
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                });
                out_dir = PathBuf::from(v);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let reports: Vec<Report> = match command.as_str() {
        "table1" => vec![xp::table1::run()],
        "fig1" => vec![xp::fig1::run(scale)],
        "fig4" => vec![xp::fig4::run(scale)],
        "table2" => vec![xp::table2::run(scale)],
        "fig5" => vec![xp::fig5::run(scale)],
        "fig6" => vec![xp::fig6::run(scale)],
        "ablations" => vec![
            xp::ablation::latency_ratio(scale),
            xp::ablation::threshold_sweep(scale),
            xp::ablation::freeze_toggle(scale),
            xp::ablation::replication(scale),
            xp::ablation::machine_size(scale),
            xp::ablation::scheduler_disruption(scale),
        ],
        "all" => vec![
            xp::table1::run(),
            xp::fig1::run(scale),
            xp::fig4::run(scale),
            xp::table2::run(scale),
            xp::fig5::run(scale),
            xp::fig6::run(scale),
            xp::ablation::latency_ratio(scale),
            xp::ablation::threshold_sweep(scale),
            xp::ablation::freeze_toggle(scale),
            xp::ablation::replication(scale),
            xp::ablation::machine_size(scale),
            xp::ablation::scheduler_disruption(scale),
        ],
        other => {
            eprintln!(
                "unknown command '{other}' \
                 (expected table1|fig1|fig4|table2|fig5|fig6|ablations|all)"
            );
            std::process::exit(2);
        }
    };

    for report in &reports {
        print!("{}", report.to_markdown());
        match report.save_json(&out_dir) {
            Ok(path) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("[warn: could not save {}: {e}]", report.id),
        }
    }
}
