//! `xp` — the experiment driver.
//!
//! ```text
//! xp [COMMAND] [--scale tiny|small|medium] [--seed N] [--jobs N] [--out DIR] [--trace DIR]
//! xp trace <bt|sp|cg|mg|ft> [--scale tiny|small|medium] [--out DIR]
//! ```
//!
//! Prints each experiment's markdown table to stdout, writes the raw rows
//! as JSON under the output directory (default `results/`), and records
//! per-experiment timing in `results/bench_summary.json`.
//!
//! Experiment cells run on a host-parallel worker pool (`--jobs N`,
//! default: available parallelism); reports are byte-identical for every
//! jobs count (see `crates/xp/src/cells.rs`).

use nas::Scale;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use xp::summary::SummaryEntry;
use xp::Report;

const COMMANDS: &str = "table1|fig1|fig4|table2|fig5|fig6|ablations|multiprog|staticplace|all|\
     trace|prof|selfprof|bench|lint|serve|client|cache|top|history";

const USAGE: &str = "\
xp — experiment driver for the data-distribution study

usage:
  xp [COMMAND] [--scale tiny|small|medium] [--seed N] [--jobs N] [--out DIR] [--trace DIR]
  xp trace <bt|sp|cg|mg|ft> [--scale tiny|small|medium] [--out DIR]
  xp prof <bt|sp|cg|mg|ft>|--all [--scale tiny|small|medium] [--out DIR]
          [--from FILE]
  xp selfprof <bt|sp|cg|mg|ft>|--all [--scale tiny|small|medium] [--out DIR]
  xp bench --record|--check [--bench bt|sp|cg|mg|ft] [--threshold PCT]
          [--history DIR] [--scale tiny|small|medium] [--out DIR]
  xp lint [--bench bt|sp|cg|mg|ft] [--all] [--deny CODES] [--allow FILE]
          [--emit-placement] [--scale tiny|small|medium] [--out DIR]
  xp serve [--port N|--addr ADDR] [--jobs N] [--cache-dir DIR] [--spans DIR]
  xp client COMMAND [--addr ADDR|--port N] [other COMMAND options]
  xp client stats [--addr ADDR|--port N] [--json]
  xp cache stats|verify|gc [--cache-dir DIR] [--max-bytes N] [--max-age SECS]
          [--json]
  xp top [--addr ADDR|--port N] [--interval MS] [--once] [--json]
  xp history [--history DIR] [--bench bt|sp|cg|mg|ft] [--json]

commands:
  table1     memory-hierarchy latencies (paper Table 1)
  fig1       placement sensitivity grid (Figure 1)
  fig4       UPMlib distribution engine (Figure 4)
  table2     residual slowdown + migration timing (Table 2)
  fig5       record-replay on BT and SP (Figure 5)
  fig6       record-replay with lengthened phases (Figure 6)
  ablations  sensitivity studies beyond the paper
  multiprog  job mixes under the kernel scheduler: per-job slowdown per
             policy (gang/space/timeshare) x engine variant
  staticplace four-way head-to-head beyond the paper: {first-touch,
             lint-synthesized static placement} x {no engine, UPMlib},
             with synthesis accounting (flip pages, residual migrations)
  all        everything above (default)
  trace      run one benchmark with event tracing; writes trace.jsonl and
             trace.chrome.json (open in Perfetto) under the output dir
  prof       trace-driven NUMA profile: per-phase attribution, page
             heatmaps and convergence diagnostics; writes
             prof-<bench>.{md,jsonl,chrome.json} under the output dir
             (--from FILE re-analyses a saved trace.jsonl offline)
  selfprof   host-side self-profile: where the simulator's own host CPU
             time goes (span tree, per-component breakdown); writes
             selfprof-<bench>.{md,jsonl,chrome.json} under the output dir
  bench      perf-regression gate: --record writes results/history/
             baseline.json (and appends to history.jsonl); --check re-runs
             the suite and exits 1 if simulated time or migrations grew
             past --threshold (default 5%) on any benchmark
  lint       static NUMA/race analysis of the benchmark kernels (no machine
             simulation); exits 1 if a denied finding is not allowlisted
  serve      resident experiment server: owns one long-lived worker pool
             and the result cache, batches cells from concurrent clients,
             dedupes cached and in-flight work; serves until a client
             sends shutdown
  client     run COMMAND, resolving its cells against the server at --addr
             (default 127.0.0.1:46137); falls back to in-process execution
             when no compatible server answers
  cache      result-cache maintenance: `stats` (counters + disk usage),
             `verify` (integrity-check every entry, drop damaged ones),
             `gc` (evict by age and/or total size)
  top        live ops console over a running server: request rate, cache
             hit ratio, latency percentiles, per-worker utilization and
             the newest request-log lines, one screen per --interval
             (--once for a single plain snapshot, --json for the raw
             metrics + log documents)
  history    trend report over the perf gate's history.jsonl: per-bench
             deltas, least-squares slope, step changes and anomalies
             across recorded runs (--json for dashboards)

options:
  --scale tiny|small|medium  problem scale (default medium)
  --seed N                   experiment seed for seeded components such as
                             random placement (default 20000)
  --jobs N                   worker threads for experiment cells (default:
                             available parallelism; reports are identical
                             for every N)
  --out DIR                  output directory for reports (default results/)
  --trace DIR                also record an event trace of every run into
                             DIR (commands other than trace)
  --bench NAME               restrict lint, bench or history to one benchmark
  --all                      all five benchmarks (lint: default; prof and
                             selfprof: instead of a positional benchmark)
  --from FILE                prof: analyse a saved trace.jsonl instead of
                             running the benchmark
  --record                   bench: record the current suite as baseline
  --check                    bench: compare HEAD against the baseline
  --threshold PCT            bench --check: regression threshold percent
                             (default 5)
  --history DIR              bench: history directory (default
                             results/history)
  --deny CODES               comma list of lint categories (races,
                             false-sharing, numa, perf, determinism, all)
                             and/or codes (L001..L009) that fail the run
  --allow FILE               lint allowlist file (default: lint.allow in the
                             current directory, when present)
  --emit-placement           lint: also write the synthesized placement maps
                             as placement-<bench>-<scale>.json under --out
  --cache                    resolve experiment cells against the on-disk
                             result cache and store fresh results back
  --no-cache                 disable the result cache (overrides --cache)
  --cache-dir DIR            cache directory (default: OUT/cache)
  --addr ADDR                serve: address to bind; client: server address
  --port N                   shorthand for --addr 127.0.0.1:N (0 = ephemeral
                             when serving)
  --max-bytes N              cache gc: keep at most N bytes (newest first)
  --max-age SECS             cache gc: drop entries older than SECS
  --spans DIR                serve: record host-side spans for the whole
                             server lifetime; on shutdown write
                             svc-spans.jsonl and svc-spans.chrome.json
                             (open in Perfetto; one span tree per traced
                             request) under DIR
  --json                     top/history/cache stats/client stats:
                             machine-readable output instead of the
                             human rendering
  --interval MS              top: poll interval in milliseconds
                             (default 1000)
  --once                     top: print one snapshot and exit
  -h, --help                 show this help
";

/// Number of lint findings that hit the deny set (set by the lint job,
/// checked after reports are written so the JSON still lands on disk).
static LINT_DENIED: AtomicUsize = AtomicUsize::new(0);

/// Number of benchmarks `xp bench --check` found regressed (same pattern:
/// checked after the comparison report lands on disk).
static BENCH_REGRESSED: AtomicUsize = AtomicUsize::new(0);

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("run `xp --help` for usage");
    std::process::exit(2);
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        other => die(&format!(
            "unknown scale '{other}' (expected tiny|small|medium)"
        )),
    }
}

/// One experiment to run: its summary id plus the closure producing its
/// reports.
type Job = (&'static str, Box<dyn FnOnce() -> Vec<Report>>);

/// `xp serve`: bind, announce the bound address on stdout (parseable —
/// tests and scripts bind `--port 0`), serve until a client shuts us
/// down. With `spans_dir`, the whole server lifetime runs under a
/// hostprof session; shutdown writes the span record (JSONL + Chrome
/// trace for Perfetto) before exiting — every traced request appears as
/// one `svc.run:<trace_id>` tree with its `svc.compute:<trace_id>`
/// worker subtree.
fn serve(addr: &str, cache_root: &std::path::Path, spans_dir: Option<&std::path::Path>) -> ! {
    use std::io::Write as _;
    let cache = svc::Cache::new(cache_root);
    let server = svc::Server::bind(
        addr,
        xp::jobs::get(),
        cache,
        xp::spec::compute(),
        xp::spec::CODE_VERSION,
    )
    .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    let bound = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    println!("[svc] listening on {bound}");
    let _ = std::io::stdout().flush();
    eprintln!(
        "[svc] cache at {}, {} worker(s), code {} — serving until a client sends shutdown",
        cache_root.display(),
        xp::jobs::get(),
        xp::spec::CODE_VERSION
    );
    let session = spans_dir.map(|_| hostprof::start());
    let outcome = server.run();
    if let (Some(session), Some(dir)) = (session, spans_dir) {
        let report = session.finish();
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[svc] warn: cannot create {}: {e}", dir.display());
        } else {
            let jsonl = dir.join("svc-spans.jsonl");
            let chrome = dir.join("svc-spans.chrome.json");
            match std::fs::write(&jsonl, hostprof::export::to_jsonl(&report)) {
                Ok(()) => eprintln!("[svc] saved {}", jsonl.display()),
                Err(e) => eprintln!("[svc] warn: cannot write {}: {e}", jsonl.display()),
            }
            let trace = hostprof::export::chrome_trace(&report, "xp serve");
            match std::fs::write(&chrome, format!("{trace}\n")) {
                Ok(()) => eprintln!("[svc] saved {}", chrome.display()),
                Err(e) => eprintln!("[svc] warn: cannot write {}: {e}", chrome.display()),
            }
        }
    }
    match outcome {
        Ok(()) => {
            eprintln!("[svc] shutdown");
            std::process::exit(0);
        }
        Err(e) => die(&format!("server failed: {e}")),
    }
}

/// `xp cache stats|verify|gc`.
fn cache_admin(
    sub: Option<&str>,
    extra: Option<&String>,
    root: &std::path::Path,
    max_bytes: Option<u64>,
    max_age: Option<u64>,
    json: bool,
) {
    if let Some(extra) = extra {
        die(&format!("unexpected argument '{extra}'"));
    }
    if json && sub != Some("stats") {
        die("--json applies to `xp cache stats`");
    }
    let cache = svc::Cache::new(root);
    match sub {
        Some("stats") => {
            let scan = cache.scan();
            if json {
                println!(
                    "{}",
                    xp::top::cache_scan_json(root, &scan).to_string_pretty()
                );
                return;
            }
            println!(
                "cache {}: {} entries, {} bytes",
                root.display(),
                scan.entries,
                scan.bytes
            );
            if let (Some(oldest), Some(newest)) = (scan.oldest_unix, scan.newest_unix) {
                println!("  oldest entry: unix {oldest}; newest entry: unix {newest}");
            }
        }
        Some("verify") => {
            let v = cache.verify();
            println!(
                "cache {}: {} entries ok, {} corrupt (removed)",
                root.display(),
                v.ok,
                v.corrupt.len()
            );
            for p in &v.corrupt {
                eprintln!("  removed {}", p.display());
            }
            if !v.corrupt.is_empty() {
                std::process::exit(1);
            }
        }
        Some("gc") => {
            if max_bytes.is_none() && max_age.is_none() {
                die("cache gc needs --max-bytes and/or --max-age");
            }
            let g = cache.gc(max_bytes, max_age);
            println!(
                "cache {}: evicted {} entries ({} bytes), kept {} ({} bytes)",
                root.display(),
                g.evicted,
                g.evicted_bytes,
                g.kept,
                g.kept_bytes
            );
        }
        Some(other) => die(&format!(
            "unknown cache subcommand '{other}' (expected stats|verify|gc)"
        )),
        None => die("cache needs a subcommand: stats|verify|gc"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut scale = Scale::Medium;
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir: Option<PathBuf> = None;
    let mut lint_bench: Option<String> = None;
    let mut lint_all = false;
    let mut lint_deny: Option<String> = None;
    let mut lint_allow: Option<PathBuf> = None;
    let mut lint_emit_placement = false;
    let mut prof_from: Option<PathBuf> = None;
    let mut bench_record = false;
    let mut bench_check = false;
    let mut bench_threshold: Option<f64> = None;
    let mut bench_history: Option<PathBuf> = None;
    let mut use_cache = false;
    let mut no_cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut gc_max_bytes: Option<u64> = None;
    let mut gc_max_age: Option<u64> = None;
    let mut json_out = false;
    let mut top_interval_ms: Option<u64> = None;
    let mut top_once = false;
    let mut spans_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| die("--scale needs a value"));
                scale = parse_scale(v);
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                let seed = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| die(&format!("--seed needs an integer, got '{v}'")));
                xp::seed::set(seed);
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| die("--jobs needs a value"));
                let jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die(&format!("--jobs needs a positive integer, got '{v}'")));
                xp::jobs::set(jobs);
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| die("--out needs a value"));
                out_dir = PathBuf::from(v);
            }
            "--trace" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--trace needs a directory"));
                trace_dir = Some(PathBuf::from(v));
            }
            "--bench" => {
                let v = it.next().unwrap_or_else(|| die("--bench needs a value"));
                lint_bench = Some(v.to_string());
            }
            "--all" => lint_all = true,
            "--deny" => {
                let v = it.next().unwrap_or_else(|| die("--deny needs a value"));
                lint_deny = Some(v.to_string());
            }
            "--allow" => {
                let v = it.next().unwrap_or_else(|| die("--allow needs a file"));
                lint_allow = Some(PathBuf::from(v));
            }
            "--emit-placement" => lint_emit_placement = true,
            "--from" => {
                let v = it.next().unwrap_or_else(|| die("--from needs a file"));
                prof_from = Some(PathBuf::from(v));
            }
            "--record" => bench_record = true,
            "--check" => bench_check = true,
            "--threshold" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--threshold needs a value"));
                let pct = v
                    .parse::<f64>()
                    .ok()
                    .filter(|p| *p >= 0.0)
                    .unwrap_or_else(|| {
                        die(&format!(
                            "--threshold needs a non-negative percentage, got '{v}'"
                        ))
                    });
                bench_threshold = Some(pct);
            }
            "--history" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--history needs a directory"));
                bench_history = Some(PathBuf::from(v));
            }
            "--cache" => use_cache = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--cache-dir needs a directory"));
                cache_dir = Some(PathBuf::from(v));
            }
            "--addr" => {
                let v = it.next().unwrap_or_else(|| die("--addr needs an address"));
                addr = Some(v.to_string());
            }
            "--port" => {
                let v = it.next().unwrap_or_else(|| die("--port needs a value"));
                let p = v
                    .parse::<u16>()
                    .unwrap_or_else(|_| die(&format!("--port needs a port number, got '{v}'")));
                port = Some(p);
            }
            "--max-bytes" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--max-bytes needs a value"));
                let n = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| die(&format!("--max-bytes needs an integer, got '{v}'")));
                gc_max_bytes = Some(n);
            }
            "--max-age" => {
                let v = it.next().unwrap_or_else(|| die("--max-age needs a value"));
                let n = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| die(&format!("--max-age needs seconds, got '{v}'")));
                gc_max_age = Some(n);
            }
            "--json" => json_out = true,
            "--once" => top_once = true,
            "--interval" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--interval needs milliseconds"));
                let ms = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        die(&format!(
                            "--interval needs positive milliseconds, got '{v}'"
                        ))
                    });
                top_interval_ms = Some(ms);
            }
            "--spans" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--spans needs a directory"));
                spans_dir = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag '{flag}'")),
            other => positionals.push(other.to_string()),
        }
    }
    // Client mode is a prefix: `xp client fig5 ...` runs fig5 with its
    // cells offered to the resident server first.
    let client_mode = positionals.first().map(String::as_str) == Some("client");
    if client_mode {
        positionals.remove(0);
    }
    let command = positionals.first().cloned().unwrap_or_else(|| "all".into());
    if addr.is_some() && port.is_some() {
        die("--addr and --port are mutually exclusive");
    }
    if !client_mode
        && !matches!(command.as_str(), "serve" | "top")
        && (addr.is_some() || port.is_some())
    {
        die("--addr/--port apply to `xp serve`, `xp client` and `xp top`");
    }
    if command != "cache" && (gc_max_bytes.is_some() || gc_max_age.is_some()) {
        die("--max-bytes/--max-age apply to `xp cache gc`");
    }
    if client_mode
        && matches!(
            command.as_str(),
            "serve" | "cache" | "client" | "top" | "history"
        )
    {
        die(&format!("`xp client {command}` is not a thing"));
    }
    if command != "top" && (top_once || top_interval_ms.is_some()) {
        die("--once/--interval apply to `xp top`");
    }
    if command != "serve" && spans_dir.is_some() {
        die("--spans applies to `xp serve`");
    }
    let json_commands = matches!(command.as_str(), "top" | "history" | "cache")
        || (client_mode && command == "stats");
    if json_out && !json_commands {
        die("--json applies to `xp top`, `xp history`, `xp cache stats` and `xp client stats`");
    }
    let server_addr = addr
        .clone()
        .unwrap_or_else(|| format!("127.0.0.1:{}", port.unwrap_or(svc::DEFAULT_PORT)));
    let cache_root = cache_dir.clone().unwrap_or_else(|| out_dir.join("cache"));

    if command == "serve" {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        serve(&server_addr, &cache_root, spans_dir.as_deref());
    }
    if command == "cache" {
        cache_admin(
            positionals.get(1).map(String::as_str),
            positionals.get(2),
            &cache_root,
            gc_max_bytes,
            gc_max_age,
            json_out,
        );
        return;
    }
    if command == "top" {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        let interval = std::time::Duration::from_millis(top_interval_ms.unwrap_or(1000));
        if let Err(e) = xp::top::run(&server_addr, interval, top_once, json_out) {
            die(&e);
        }
        return;
    }
    if command == "history" {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        let history = bench_history
            .clone()
            .unwrap_or_else(|| PathBuf::from("results/history"));
        let bench = lint_bench.as_deref().inspect(|name| {
            xp::trace::parse_bench(name).unwrap_or_else(|| {
                die(&format!(
                    "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                ))
            });
        });
        match xp::history::run(&history, json_out, bench) {
            Ok(out) => print!("{out}"),
            Err(e) => die(&e),
        }
        return;
    }
    if client_mode && command == "stats" {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        match xp::top::client_stats(&server_addr, json_out) {
            Ok(out) => print!("{out}"),
            Err(e) => die(&e),
        }
        return;
    }
    if use_cache && !no_cache {
        xp::cache::install(Some(svc::Cache::new(&cache_root)));
    }
    if client_mode {
        xp::remote::install(Some(svc::Client::new(&server_addr, xp::spec::CODE_VERSION)));
    }

    if !matches!(command.as_str(), "lint" | "bench") && lint_bench.is_some() {
        die("--bench applies to `xp lint` and `xp bench`");
    }
    if !matches!(command.as_str(), "lint" | "prof" | "selfprof") && lint_all {
        die("--all applies to `xp lint`, `xp prof` and `xp selfprof`");
    }
    if command != "lint" && (lint_deny.is_some() || lint_allow.is_some() || lint_emit_placement) {
        die("--deny/--allow/--emit-placement apply to `xp lint`");
    }
    if command != "prof" && prof_from.is_some() {
        die("--from applies to `xp prof`");
    }
    if command != "bench"
        && (bench_record || bench_check || bench_threshold.is_some() || bench_history.is_some())
    {
        die("--record/--check/--threshold/--history apply to `xp bench`");
    }
    if !matches!(command.as_str(), "trace" | "prof" | "selfprof") {
        if let Some(extra) = positionals.get(1) {
            die(&format!("unexpected argument '{extra}'"));
        }
        xp::trace::set_dir(trace_dir);
    } else if trace_dir.is_some() {
        die(&format!(
            "--trace applies to the other commands; `xp {command}` manages its own tracing"
        ));
    }

    let table1: Job = ("table1", Box::new(|| vec![xp::table1::run()]));
    let fig1: Job = ("fig1", Box::new(move || vec![xp::fig1::run(scale)]));
    let fig4: Job = ("fig4", Box::new(move || vec![xp::fig4::run(scale)]));
    let table2: Job = ("table2", Box::new(move || vec![xp::table2::run(scale)]));
    let fig5: Job = ("fig5", Box::new(move || vec![xp::fig5::run(scale)]));
    let fig6: Job = ("fig6", Box::new(move || vec![xp::fig6::run(scale)]));
    let ablations: Job = (
        "ablations",
        Box::new(move || {
            vec![
                xp::ablation::latency_ratio(scale),
                xp::ablation::threshold_sweep(scale),
                xp::ablation::freeze_toggle(scale),
                xp::ablation::replication(scale),
                xp::ablation::machine_size(scale),
                xp::ablation::scheduler_disruption(scale),
            ]
        }),
    );
    let multiprog: Job = (
        "multiprog",
        Box::new(move || vec![xp::multiprog::run(scale)]),
    );
    let staticplace: Job = (
        "staticplace",
        Box::new(move || vec![xp::staticplace::run(scale)]),
    );

    let jobs: Vec<Job> = match command.as_str() {
        "table1" => vec![table1],
        "fig1" => vec![fig1],
        "fig4" => vec![fig4],
        "table2" => vec![table2],
        "fig5" => vec![fig5],
        "fig6" => vec![fig6],
        "ablations" => vec![ablations],
        "multiprog" => vec![multiprog],
        "staticplace" => vec![staticplace],
        "all" => vec![
            table1,
            fig1,
            fig4,
            table2,
            fig5,
            fig6,
            ablations,
            multiprog,
            staticplace,
        ],
        "trace" => {
            let name = positionals
                .get(1)
                .unwrap_or_else(|| die("trace needs a benchmark (expected bt|sp|cg|mg|ft)"));
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            let bench = xp::trace::parse_bench(name).unwrap_or_else(|| {
                die(&format!(
                    "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                ))
            });
            let out = out_dir.clone();
            vec![(
                "trace",
                Box::new(move || vec![xp::trace::run(bench, scale, &out)]),
            )]
        }
        "prof" => {
            let benches: Vec<nas::BenchName> = match (positionals.get(1), lint_all) {
                (Some(_), true) => die("prof takes a benchmark or --all, not both"),
                (None, false) => die("prof needs a benchmark (expected bt|sp|cg|mg|ft) or --all"),
                (None, true) => nas::BenchName::all().to_vec(),
                (Some(name), false) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
            };
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            if prof_from.is_some() && benches.len() != 1 {
                die("--from profiles one saved trace; name the benchmark it came from");
            }
            let out = out_dir.clone();
            let from = prof_from.clone();
            vec![(
                "prof",
                Box::new(move || match from {
                    Some(path) => match xp::prof::run_from(&path, benches[0], scale, &out) {
                        Ok(report) => vec![report],
                        Err(e) => die(&e),
                    },
                    None => xp::prof::run(&benches, scale, &out),
                }),
            )]
        }
        "selfprof" => {
            let benches: Vec<nas::BenchName> = match (positionals.get(1), lint_all) {
                (Some(_), true) => die("selfprof takes a benchmark or --all, not both"),
                (None, false) => {
                    die("selfprof needs a benchmark (expected bt|sp|cg|mg|ft) or --all")
                }
                (None, true) => nas::BenchName::all().to_vec(),
                (Some(name), false) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
            };
            if let Some(extra) = positionals.get(2) {
                die(&format!("unexpected argument '{extra}'"));
            }
            let out = out_dir.clone();
            vec![(
                "selfprof",
                Box::new(move || xp::selfprof::run(&benches, scale, &out)),
            )]
        }
        "bench" => {
            if bench_record == bench_check {
                die("bench needs exactly one of --record or --check");
            }
            let benches: Vec<nas::BenchName> = match &lint_bench {
                Some(name) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
                None => nas::BenchName::all().to_vec(),
            };
            let history = bench_history
                .clone()
                .unwrap_or_else(|| PathBuf::from("results/history"));
            let threshold = bench_threshold.unwrap_or(5.0) / 100.0;
            vec![(
                "bench",
                Box::new(move || {
                    if bench_record {
                        match xp::bench_gate::record(&benches, scale, &history) {
                            Ok(report) => vec![report],
                            Err(e) => die(&e),
                        }
                    } else {
                        match xp::bench_gate::check(&benches, scale, &history, threshold) {
                            Ok(run) => {
                                BENCH_REGRESSED.store(run.regressions, Ordering::Relaxed);
                                vec![run.report]
                            }
                            Err(e) => die(&e),
                        }
                    }
                }),
            )]
        }
        "lint" => {
            if lint_all && lint_bench.is_some() {
                die("--all and --bench are mutually exclusive");
            }
            let benches: Vec<nas::BenchName> = match &lint_bench {
                Some(name) => vec![xp::trace::parse_bench(name).unwrap_or_else(|| {
                    die(&format!(
                        "unknown benchmark '{name}' (expected bt|sp|cg|mg|ft)"
                    ))
                })],
                None => nas::BenchName::all().to_vec(),
            };
            let deny =
                lint::parse_deny(lint_deny.as_deref().unwrap_or("")).unwrap_or_else(|e| die(&e));
            let allow_path = lint_allow.clone().or_else(|| {
                std::path::Path::new("lint.allow")
                    .exists()
                    .then(|| "lint.allow".into())
            });
            let allow = match &allow_path {
                Some(p) => lint::Allowlist::load(p)
                    .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", p.display()))),
                None => lint::Allowlist::empty(),
            };
            if let Some(p) = &allow_path {
                eprintln!("[allowlist {} ({} keys)]", p.display(), allow.len());
            }
            let emit_out = out_dir.clone();
            vec![(
                "lint",
                Box::new(move || {
                    let run = xp::lint::run(&benches, scale, &deny, &allow);
                    for f in &run.denied {
                        eprintln!("denied: {}", f.render());
                    }
                    LINT_DENIED.store(run.denied.len(), Ordering::Relaxed);
                    if lint_emit_placement {
                        match xp::lint::emit_placement(&benches, scale, &emit_out) {
                            Ok(paths) => {
                                for p in paths {
                                    eprintln!("[saved {}]", p.display());
                                }
                            }
                            Err(e) => die(&format!("cannot write placement maps: {e}")),
                        }
                    }
                    vec![run.report]
                }),
            )]
        }
        other => die(&format!("unknown command '{other}' (expected {COMMANDS})")),
    };

    let mut entries: Vec<SummaryEntry> = Vec::new();
    // Multi-experiment sweeps share one resident worker pool across every
    // plan instead of spawning and joining a scoped pool per experiment
    // (see crates/xp/src/session.rs).
    if jobs.len() > 1 {
        xp::session::begin();
    }
    // Per job: its reports plus the pool-telemetry footer its plans
    // accumulated. The footer goes to stdout only, never into the saved
    // JSON, so result trees stay identical across --jobs counts.
    let mut groups: Vec<(Vec<Report>, Vec<String>)> = Vec::new();
    for (id, job) in jobs {
        xp::summary::take_sim_secs();
        xp::summary::take_wall();
        xp::telemetry::take_footer();
        let t0 = Instant::now();
        let produced = job();
        let footer = xp::telemetry::take_footer();
        let (cells_wall_secs, pool_wall_secs) = xp::summary::take_wall();
        entries.push(SummaryEntry {
            id: id.to_string(),
            sim_secs: xp::summary::take_sim_secs(),
            wall_secs: t0.elapsed().as_secs_f64(),
            cells_wall_secs,
            pool_wall_secs,
        });
        groups.push((produced, footer));
    }
    xp::session::end();

    for (reports, footer) in &groups {
        for report in reports {
            print!("{}", report.to_markdown());
            match report.save_json(&out_dir) {
                Ok(path) => eprintln!("[saved {}]", path.display()),
                Err(e) => eprintln!("[warn: could not save {}: {e}]", report.id),
            }
        }
        if !footer.is_empty() {
            for line in footer {
                println!("[pool] {line}");
            }
            println!();
        }
    }
    let scale_label = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    };
    match xp::summary::write(
        &out_dir,
        scale_label,
        xp::seed::get(),
        xp::jobs::get(),
        &entries,
    ) {
        Ok(path) => eprintln!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn: could not save bench_summary.json: {e}]"),
    }
    if let Some(line) = xp::cache::stats_line() {
        eprintln!("[{line}]");
    }
    let denied = LINT_DENIED.load(Ordering::Relaxed);
    if denied > 0 {
        eprintln!("lint: {denied} denied findings (see rows marked `denied`)");
        std::process::exit(1);
    }
    let regressed = BENCH_REGRESSED.load(Ordering::Relaxed);
    if regressed > 0 {
        eprintln!("bench: {regressed} benchmark(s) regressed past the threshold");
        std::process::exit(1);
    }
}
