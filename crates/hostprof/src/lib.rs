//! Host-side wall-clock span profiler.
//!
//! The simulator's own `obs`/`prof` stack measures *simulated* time; this
//! crate measures where the *host's* wall-clock goes while the simulator
//! runs — the measurement substrate for hot-path optimization work.
//!
//! * [`span`]/[`span_hot`]/[`span_named`] open a scoped span on the
//!   calling thread; the returned [`SpanGuard`] closes it on drop.
//!   Each thread keeps its own span stack, so spans opened on different
//!   pool workers never interleave into one tree path.
//! * Profiling is off by default. The disabled path is a single relaxed
//!   atomic load and returns an inert guard — cheap enough to leave the
//!   instrumentation in the simulator's per-access hot paths.
//! * [`start`] returns a [`Session`] (process-exclusive); dropping into
//!   [`Session::finish`] collects every thread's spans into a
//!   [`HostReport`]: an inclusive/exclusive self-time tree with call
//!   counts, per-thread span event logs, and export helpers
//!   ([`export::to_markdown`], [`export::to_jsonl`],
//!   [`export::chrome_trace`] for Perfetto — all on host time).
//!
//! Span names use a `component.detail` convention (`ccnuma.touch`,
//! `vmm.place`, …); [`component_breakdown`] buckets exclusive time by the
//! prefix so regressions are attributable component-by-component.

pub mod export;
pub mod report;
mod span;

pub use report::{component_breakdown, component_of, HostReport, SpanEvent, SpanNode, ThreadSpans};
pub use span::{
    begin, enabled, end, exclusive, span, span_hot, span_named, start, Session, SpanGuard,
    EVENT_CAP,
};
