//! The collected profile: per-thread span trees, the cross-thread merge,
//! and the per-component exclusive-time breakdown.

/// One node of the span tree: a distinct span path with call count and
/// inclusive host time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name (`component.detail`, or `cell:<id>` for cell roots).
    pub name: String,
    /// Times this exact path was entered.
    pub calls: u64,
    /// Inclusive wall nanoseconds (children included).
    pub incl_ns: u64,
    /// Child spans, in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Exclusive (self) nanoseconds: inclusive minus the children's
    /// inclusive time, floored at zero against clock jitter.
    pub fn excl_ns(&self) -> u64 {
        self.incl_ns
            .saturating_sub(self.children.iter().map(|c| c.incl_ns).sum())
    }

    /// Inclusive seconds.
    pub fn incl_secs(&self) -> f64 {
        self.incl_ns as f64 * 1e-9
    }

    /// Exclusive seconds.
    pub fn excl_secs(&self) -> f64 {
        self.excl_ns() as f64 * 1e-9
    }
}

/// One completed span occurrence (event-log form, feeds the Perfetto
/// export). Hot spans are aggregated but not logged here.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Start offset from the session origin, host nanoseconds.
    pub start_ns: u64,
    /// Duration, host nanoseconds.
    pub dur_ns: u64,
    /// Stack depth at open time (0 = root).
    pub depth: u32,
}

/// Everything one thread collected during the session.
#[derive(Debug, Clone)]
pub struct ThreadSpans {
    /// Thread label (the OS thread name when set, e.g. `xp-worker-2`).
    pub label: String,
    /// The thread's root spans.
    pub roots: Vec<SpanNode>,
    /// The thread's span event log (capped; see [`crate::EVENT_CAP`]).
    pub events: Vec<SpanEvent>,
    /// Events dropped past the cap.
    pub dropped_events: u64,
}

/// A finished profiling session.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Per-thread span trees, in thread registration order.
    pub threads: Vec<ThreadSpans>,
    /// Host wall seconds the session was open.
    pub wall_secs: f64,
}

fn merge_into(dst: &mut Vec<SpanNode>, src: &SpanNode) {
    if let Some(d) = dst.iter_mut().find(|d| d.name == src.name) {
        d.calls += src.calls;
        d.incl_ns += src.incl_ns;
        for c in &src.children {
            merge_into(&mut d.children, c);
        }
    } else {
        dst.push(src.clone());
    }
}

fn sort_tree(nodes: &mut [SpanNode]) {
    nodes.sort_by(|a, b| b.incl_ns.cmp(&a.incl_ns).then(a.name.cmp(&b.name)));
    for n in nodes {
        sort_tree(&mut n.children);
    }
}

impl HostReport {
    /// The span forest merged across threads (same path ⇒ one node, calls
    /// and time summed), ordered by inclusive time.
    pub fn merged(&self) -> Vec<SpanNode> {
        let mut out = Vec::new();
        for thread in &self.threads {
            for root in &thread.roots {
                merge_into(&mut out, root);
            }
        }
        sort_tree(&mut out);
        out
    }

    /// The merged root span named `name`, if any thread recorded it.
    pub fn root(&self, name: &str) -> Option<SpanNode> {
        self.merged().into_iter().find(|n| n.name == name)
    }

    /// Total events dropped across threads (event cap overflow).
    pub fn dropped_events(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped_events).sum()
    }

    /// Sum of merged root inclusive nanoseconds (the profiled fraction of
    /// the session's wall time).
    pub fn total_span_ns(&self) -> u64 {
        self.merged().iter().map(|n| n.incl_ns).sum()
    }
}

/// The component a span name belongs to: the prefix before the first `.`
/// (`ccnuma.touch` → `ccnuma`); `cell:*` roots — the driver's own
/// bookkeeping around a cell — map to `driver`.
pub fn component_of(name: &str) -> &str {
    if name.starts_with("cell:") {
        "driver"
    } else {
        name.split('.').next().unwrap_or(name)
    }
}

/// Bucket every node's **exclusive** time by component, descending by
/// seconds. Exclusive time partitions the profiled wall time, so the
/// buckets sum to the root spans' inclusive time.
pub fn component_breakdown(roots: &[SpanNode]) -> Vec<(String, f64)> {
    fn walk(node: &SpanNode, acc: &mut Vec<(String, u64)>) {
        let component = component_of(&node.name);
        match acc.iter_mut().find(|(c, _)| c == component) {
            Some((_, ns)) => *ns += node.excl_ns(),
            None => acc.push((component.to_string(), node.excl_ns())),
        }
        for c in &node.children {
            walk(c, acc);
        }
    }
    let mut acc: Vec<(String, u64)> = Vec::new();
    for root in roots {
        walk(root, &mut acc);
    }
    let mut out: Vec<(String, f64)> = acc
        .into_iter()
        .map(|(c, ns)| (c, ns as f64 * 1e-9))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, calls: u64, incl_ns: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: name.into(),
            calls,
            incl_ns,
            children,
        }
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let n = node(
            "a",
            1,
            100,
            vec![node("a.b", 2, 30, vec![]), node("a.c", 1, 50, vec![])],
        );
        assert_eq!(n.excl_ns(), 20);
        // Children reported longer than the parent (clock jitter): floor.
        let weird = node("w", 1, 10, vec![node("w.x", 1, 15, vec![])]);
        assert_eq!(weird.excl_ns(), 0);
    }

    #[test]
    fn merge_sums_same_paths_across_threads() {
        let t0 = ThreadSpans {
            label: "main".into(),
            roots: vec![node(
                "cell:cg",
                1,
                100,
                vec![node("omp.region", 3, 60, vec![])],
            )],
            events: vec![],
            dropped_events: 0,
        };
        let t1 = ThreadSpans {
            label: "xp-worker-1".into(),
            roots: vec![node(
                "cell:cg",
                1,
                40,
                vec![node("omp.region", 1, 10, vec![])],
            )],
            events: vec![],
            dropped_events: 2,
        };
        let report = HostReport {
            threads: vec![t0, t1],
            wall_secs: 1.0,
        };
        let merged = report.merged();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].calls, 2);
        assert_eq!(merged[0].incl_ns, 140);
        assert_eq!(merged[0].children[0].calls, 4);
        assert_eq!(report.dropped_events(), 2);
        assert_eq!(report.total_span_ns(), 140);
        assert_eq!(report.root("cell:cg").unwrap().incl_ns, 140);
        assert!(report.root("nope").is_none());
    }

    #[test]
    fn components_bucket_exclusive_time() {
        assert_eq!(component_of("ccnuma.touch"), "ccnuma");
        assert_eq!(component_of("cell:cg"), "driver");
        assert_eq!(component_of("plain"), "plain");
        let roots = vec![node(
            "cell:cg",
            1,
            100,
            vec![
                node(
                    "ccnuma.touch",
                    10,
                    50,
                    vec![node("ccnuma.memory", 2, 20, vec![])],
                ),
                node("vmm.place", 1, 30, vec![]),
            ],
        )];
        let breakdown = component_breakdown(&roots);
        let get = |c: &str| {
            breakdown
                .iter()
                .find(|(name, _)| name == c)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert!((get("ccnuma") - 50e-9).abs() < 1e-15); // 30 excl + 20 leaf
        assert!((get("vmm") - 30e-9).abs() < 1e-15);
        assert!((get("driver") - 20e-9).abs() < 1e-15);
        let total: f64 = breakdown.iter().map(|(_, s)| s).sum();
        assert!((total - 100e-9).abs() < 1e-15);
    }
}
