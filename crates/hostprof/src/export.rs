//! Exporters for a [`HostReport`]: a markdown self-time table, JSON Lines
//! (schema-headed, one aggregate node per line), and a Chrome trace-event
//! document whose timeline is **host** time (`ts` = host microseconds
//! since the session origin) — the host-side twin of `obs::export`.

use crate::report::{component_breakdown, HostReport, SpanNode};
use obs::json::Value;

/// Schema identifier carried by the JSON Lines header line.
pub const HOSTPROF_SCHEMA_NAME: &str = "ddnomp-hostprof";
/// Major schema version (readers reject other majors).
pub const HOSTPROF_SCHEMA_MAJOR: u64 = 1;
/// Minor schema version (additive changes only).
pub const HOSTPROF_SCHEMA_MINOR: u64 = 0;

fn walk<'a>(nodes: &'a [SpanNode], depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
    for node in nodes {
        f(node, depth);
        walk(&node.children, depth + 1, f);
    }
}

/// The merged span tree as a markdown table (`Incl %` is relative to the
/// profiled root time), followed by the component breakdown.
pub fn to_markdown(report: &HostReport, title: &str) -> String {
    let merged = report.merged();
    let total_ns = report.total_span_ns().max(1);
    let mut out = format!("## {title}\n\n");
    out.push_str("| Span | Calls | Incl (ms) | Excl (ms) | Incl % |\n");
    out.push_str("|---|---|---|---|---|\n");
    walk(&merged, 0, &mut |node, depth| {
        out.push_str(&format!(
            "| {}{} | {} | {:.3} | {:.3} | {:.1}% |\n",
            "· ".repeat(depth),
            node.name,
            node.calls,
            node.incl_ns as f64 * 1e-6,
            node.excl_ns() as f64 * 1e-6,
            node.incl_ns as f64 * 100.0 / total_ns as f64,
        ));
    });
    out.push_str(&format!(
        "\nSession wall: {:.3} s; profiled root time: {:.3} s; threads: {}; dropped events: {}\n",
        report.wall_secs,
        report.total_span_ns() as f64 * 1e-9,
        report.threads.len(),
        report.dropped_events(),
    ));
    out.push_str("\nExclusive time by component:\n\n");
    for (component, secs) in component_breakdown(&merged) {
        out.push_str(&format!(
            "* {component}: {:.3} ms ({:.1}%)\n",
            secs * 1e3,
            secs * 1e9 * 100.0 / total_ns as f64,
        ));
    }
    out
}

/// The schema header object that leads a JSON Lines export.
pub fn schema_header(report: &HostReport) -> Value {
    Value::object(vec![
        ("schema", HOSTPROF_SCHEMA_NAME.into()),
        ("major", HOSTPROF_SCHEMA_MAJOR.into()),
        ("minor", HOSTPROF_SCHEMA_MINOR.into()),
        ("wall_secs", report.wall_secs.into()),
        ("threads", (report.threads.len() as u64).into()),
        ("dropped_events", report.dropped_events().into()),
    ])
}

/// JSON Lines: the schema header, then one line per merged aggregate node
/// (`path` is `/`-joined from the root), then one `thread` line per
/// registered thread.
pub fn to_jsonl(report: &HostReport) -> String {
    let mut out = String::new();
    out.push_str(&schema_header(report).to_string());
    out.push('\n');
    let merged = report.merged();
    let mut path: Vec<String> = Vec::new();
    fn emit(out: &mut String, path: &mut Vec<String>, nodes: &[SpanNode]) {
        for node in nodes {
            path.push(node.name.clone());
            let line = Value::object(vec![
                ("path", path.join("/").into()),
                ("name", node.name.as_str().into()),
                ("calls", node.calls.into()),
                ("incl_ns", node.incl_ns.into()),
                ("excl_ns", node.excl_ns().into()),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
            emit(out, path, &node.children);
            path.pop();
        }
    }
    emit(&mut out, &mut path, &merged);
    for thread in &report.threads {
        let line = Value::object(vec![
            ("thread", thread.label.as_str().into()),
            ("events", (thread.events.len() as u64).into()),
            ("dropped_events", thread.dropped_events.into()),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// The Chrome trace-event document on host time: per-thread tracks
/// (`thread_name` metadata from the OS thread names), one `X` complete
/// event per recorded span occurrence. Open in Perfetto.
pub fn chrome_trace(report: &HostReport, process_name: &str) -> Value {
    let mut entries: Vec<Value> = Vec::new();
    entries.push(Value::object(vec![
        ("name", "process_name".into()),
        ("ph", "M".into()),
        ("pid", 1u64.into()),
        ("args", Value::object(vec![("name", process_name.into())])),
    ]));
    for (tid, thread) in report.threads.iter().enumerate() {
        let tid = tid as u64;
        entries.push(Value::object(vec![
            ("name", "thread_name".into()),
            ("ph", "M".into()),
            ("pid", 1u64.into()),
            ("tid", tid.into()),
            (
                "args",
                Value::object(vec![("name", thread.label.as_str().into())]),
            ),
        ]));
        for event in &thread.events {
            entries.push(Value::object(vec![
                ("name", event.name.as_str().into()),
                ("ph", "X".into()),
                ("ts", (event.start_ns as f64 / 1000.0).into()),
                ("dur", (event.dur_ns as f64 / 1000.0).into()),
                ("pid", 1u64.into()),
                ("tid", tid.into()),
            ]));
        }
    }
    Value::object(vec![
        ("traceEvents", Value::Array(entries)),
        ("displayTimeUnit", "ms".into()),
        ("dropped_events", report.dropped_events().into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{SpanEvent, ThreadSpans};

    fn sample() -> HostReport {
        let tree = SpanNode {
            name: "cell:cg".into(),
            calls: 1,
            incl_ns: 2_000_000,
            children: vec![SpanNode {
                name: "ccnuma.touch".into(),
                calls: 100,
                incl_ns: 1_500_000,
                children: vec![],
            }],
        };
        HostReport {
            threads: vec![ThreadSpans {
                label: "main".into(),
                roots: vec![tree],
                events: vec![SpanEvent {
                    name: "cell:cg".into(),
                    start_ns: 5_000,
                    dur_ns: 2_000_000,
                    depth: 0,
                }],
                dropped_events: 1,
            }],
            wall_secs: 0.01,
        }
    }

    #[test]
    fn markdown_has_tree_rows_and_breakdown() {
        let md = to_markdown(&sample(), "selfprof cg");
        assert!(md.contains("| cell:cg | 1 | 2.000 |"));
        assert!(md.contains("| · ccnuma.touch | 100 |"));
        assert!(md.contains("Exclusive time by component"));
        assert!(md.contains("* ccnuma:"));
        assert!(md.contains("dropped events: 1"));
    }

    #[test]
    fn jsonl_is_header_plus_parseable_lines() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        // header + 2 nodes + 1 thread line
        assert_eq!(lines.len(), 4);
        let header = Value::parse(lines[0]).unwrap();
        assert_eq!(header["schema"], HOSTPROF_SCHEMA_NAME);
        assert_eq!(header["major"].as_u64(), Some(HOSTPROF_SCHEMA_MAJOR));
        let child = Value::parse(lines[2]).unwrap();
        assert_eq!(child["path"], "cell:cg/ccnuma.touch");
        assert_eq!(child["calls"].as_u64(), Some(100));
        let thread = Value::parse(lines[3]).unwrap();
        assert_eq!(thread["thread"], "main");
    }

    #[test]
    fn chrome_trace_uses_complete_events_on_host_microseconds() {
        let doc = chrome_trace(&sample(), "selfprof");
        let entries = doc["traceEvents"].as_array().unwrap();
        // process_name + thread_name + 1 span event
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1]["args"]["name"], "main");
        assert_eq!(entries[2]["ph"], "X");
        assert_eq!(entries[2]["ts"].as_f64(), Some(5.0));
        assert_eq!(entries[2]["dur"].as_f64(), Some(2000.0));
        assert_eq!(doc["dropped_events"].as_u64(), Some(1));
        assert!(Value::parse(&doc.to_string_pretty()).is_ok());
    }
}
