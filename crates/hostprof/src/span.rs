//! The span runtime: the enabled flag, per-thread span stacks, and the
//! session registry the report is collected from.
//!
//! Concurrency model: one profiling **session** at a time per process
//! ([`start`] holds a global lock). While a session is open, every thread
//! that opens a span lazily registers a [`ThreadLog`] keyed by the
//! session **epoch**; guards remember their epoch, so a guard that
//! outlives its session (or straddles an enable flip) closes as a no-op
//! instead of corrupting the next session's stacks.

use crate::report::{HostReport, SpanEvent, SpanNode, ThreadSpans};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Per-thread cap on recorded span events (aggregation is uncapped; the
/// event log feeds the Perfetto export and is bounded to keep long runs
/// from eating the host's memory). Overflow is counted, not silent.
pub const EVENT_CAP: usize = 1 << 15;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Whether a profiling session is currently collecting spans.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

type SharedLog = Arc<Mutex<ThreadLog>>;

struct Registry {
    t0: Instant,
    logs: Vec<SharedLog>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            t0: Instant::now(),
            logs: Vec::new(),
        })
    })
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One aggregation node: a distinct span path on one thread.
struct Node {
    name: Cow<'static, str>,
    calls: u64,
    incl_ns: u64,
    children: Vec<usize>,
}

/// One thread's span state for the current session.
struct ThreadLog {
    label: String,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    events: Vec<SpanEvent>,
    dropped_events: u64,
}

impl ThreadLog {
    fn new(label: String) -> Self {
        ThreadLog {
            label,
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Find-or-create the child of the current stack top named `name`,
    /// push it, and return `(node index, depth)`.
    fn open(&mut self, name: Cow<'static, str>) -> (usize, u32) {
        let parent = self.stack.last().copied();
        let siblings: &[usize] = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let idx = match found {
            Some(idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    calls: 0,
                    incl_ns: 0,
                    children: Vec::new(),
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        self.stack.push(idx);
        (idx, (self.stack.len() - 1) as u32)
    }

    fn close(&mut self, idx: usize, start_ns: u64, dur_ns: u64, depth: u32, record_event: bool) {
        // Guards close in LIFO order on a given thread, so the top of the
        // stack is this span — unless an enable flip perturbed things, in
        // which case unwind to (and including) the matching frame.
        if self.stack.last() == Some(&idx) {
            self.stack.pop();
        } else if let Some(pos) = self.stack.iter().rposition(|&n| n == idx) {
            self.stack.truncate(pos);
        }
        let node = &mut self.nodes[idx];
        node.calls += 1;
        node.incl_ns += dur_ns;
        if record_event {
            if self.events.len() < EVENT_CAP {
                self.events.push(SpanEvent {
                    name: node.name.to_string(),
                    start_ns,
                    dur_ns,
                    depth,
                });
            } else {
                self.dropped_events += 1;
            }
        }
    }

    fn to_spans(&self) -> ThreadSpans {
        fn build(log: &ThreadLog, idx: usize) -> SpanNode {
            let node = &log.nodes[idx];
            SpanNode {
                name: node.name.to_string(),
                calls: node.calls,
                incl_ns: node.incl_ns,
                children: node.children.iter().map(|&c| build(log, c)).collect(),
            }
        }
        ThreadSpans {
            label: self.label.clone(),
            roots: self.roots.iter().map(|&r| build(self, r)).collect(),
            events: self.events.clone(),
            dropped_events: self.dropped_events,
        }
    }
}

struct TlState {
    epoch: u64,
    log: SharedLog,
    t0: Instant,
}

thread_local! {
    static TL: RefCell<Option<TlState>> = const { RefCell::new(None) };
}

/// The calling thread's log for `epoch`, registering it on first use.
fn tl_log(epoch: u64) -> (SharedLog, Instant) {
    TL.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(s) = slot.as_ref() {
            if s.epoch == epoch {
                return (s.log.clone(), s.t0);
            }
        }
        let label = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
        let log = Arc::new(Mutex::new(ThreadLog::new(label)));
        let mut reg = lock_ignoring_poison(registry());
        reg.logs.push(log.clone());
        let t0 = reg.t0;
        drop(reg);
        *slot = Some(TlState {
            epoch,
            log: log.clone(),
            t0,
        });
        (log, t0)
    })
}

/// An open span; closing happens on drop. Inert (and cost-free past one
/// atomic load) when profiling is disabled.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

struct OpenSpan {
    epoch: u64,
    node: usize,
    depth: u32,
    log: SharedLog,
    t0: Instant,
    start: Instant,
    record_event: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        let dur_ns = open.start.elapsed().as_nanos() as u64;
        // A guard from a finished session closes as a no-op: its log is
        // already detached and the next session must not see it.
        if EPOCH.load(Ordering::Acquire) != open.epoch {
            return;
        }
        let start_ns = open.start.saturating_duration_since(open.t0).as_nanos() as u64;
        lock_ignoring_poison(&open.log).close(
            open.node,
            start_ns,
            dur_ns,
            open.depth,
            open.record_event,
        );
    }
}

#[inline]
fn open(name: Cow<'static, str>, record_event: bool) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { inner: None };
    }
    let epoch = EPOCH.load(Ordering::Acquire);
    let (log, t0) = tl_log(epoch);
    let (node, depth) = lock_ignoring_poison(&log).open(name);
    SpanGuard {
        inner: Some(OpenSpan {
            epoch,
            node,
            depth,
            log,
            t0,
            start: Instant::now(),
            record_event,
        }),
    }
}

/// Open a span named by a static string, recorded in both the aggregate
/// tree and the per-thread event log.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open(Cow::Borrowed(name), true)
}

/// Open a **hot** span: aggregated (calls + time) but kept out of the
/// event log, so per-access instrumentation does not flood the Perfetto
/// export or burn the event cap.
#[inline]
pub fn span_hot(name: &'static str) -> SpanGuard {
    open(Cow::Borrowed(name), false)
}

/// Open a span with a runtime-built name (e.g. `cell:<id>` roots). The
/// allocation only happens when profiling is enabled.
#[inline]
pub fn span_named(name: impl FnOnce() -> String) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { inner: None };
    }
    open(Cow::Owned(name()), true)
}

/// The process-wide session lock: callers that run profiling sessions
/// from tests (which share one process) take this to serialize them.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    lock_ignoring_poison(SESSION.get_or_init(|| Mutex::new(())))
}

/// Reset all state and start collecting spans. Prefer [`start`], which
/// also takes the session lock.
pub fn begin() {
    let mut reg = lock_ignoring_poison(registry());
    reg.logs.clear();
    reg.t0 = Instant::now();
    drop(reg);
    EPOCH.fetch_add(1, Ordering::AcqRel);
    ENABLED.store(true, Ordering::Release);
}

/// Stop collecting and build the report. Spans still open when `end` runs
/// are discarded (their guards observe a bumped epoch).
pub fn end() -> HostReport {
    ENABLED.store(false, Ordering::Release);
    EPOCH.fetch_add(1, Ordering::AcqRel);
    let (t0, logs) = {
        let mut reg = lock_ignoring_poison(registry());
        (reg.t0, std::mem::take(&mut reg.logs))
    };
    let wall_secs = t0.elapsed().as_secs_f64();
    let threads = logs
        .iter()
        .map(|log| lock_ignoring_poison(log).to_spans())
        .collect();
    HostReport { threads, wall_secs }
}

/// An exclusive profiling session: [`start`] locks out other sessions and
/// begins collecting; [`Session::finish`] ends collection and returns the
/// report.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

/// Start an exclusive profiling session.
pub fn start() -> Session {
    let guard = exclusive();
    begin();
    Session { _guard: guard }
}

impl Session {
    /// End the session and collect the report.
    pub fn finish(self) -> HostReport {
        end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let _outer = exclusive();
        assert!(!enabled());
        let g = span("never.recorded");
        assert!(g.inner.is_none());
        drop(g);
    }

    #[test]
    fn nesting_aggregates_inclusive_time_and_calls() {
        let guard = exclusive();
        begin();
        for _ in 0..3 {
            let _a = span("a");
            for _ in 0..2 {
                let _b = span_hot("a.b");
                std::hint::black_box(0u64);
            }
        }
        let report = end();
        drop(guard);
        let merged = report.merged();
        assert_eq!(merged.len(), 1);
        let a = &merged[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls, 3);
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.children[0].name, "a.b");
        assert_eq!(a.children[0].calls, 6);
        assert!(a.incl_ns >= a.children[0].incl_ns);
        // Only `a` records events (`a.b` is hot): 3 of them.
        let events: usize = report.threads.iter().map(|t| t.events.len()).sum();
        assert_eq!(events, 3);
    }

    #[test]
    fn guard_outliving_its_session_is_discarded() {
        let guard = exclusive();
        begin();
        let stale = span("stale");
        let _ = end();
        begin();
        drop(stale); // closes against a bumped epoch: must not register
        let report = end();
        drop(guard);
        assert!(report.merged().is_empty());
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let guard = exclusive();
        begin();
        for _ in 0..(EVENT_CAP + 10) {
            let _s = span("spin");
        }
        let report = end();
        drop(guard);
        assert_eq!(report.dropped_events(), 10);
        let merged = report.merged();
        assert_eq!(merged[0].calls, (EVENT_CAP + 10) as u64);
    }
}
