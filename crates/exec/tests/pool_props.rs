//! Property tests for the work-stealing pool — the determinism contract
//! the differential `parallel ≡ serial` experiment suite stands on:
//!
//! * every submitted job runs exactly once;
//! * the merged result order is the submission order, independent of
//!   worker count and stealing schedule;
//! * a panicking job never poisons its siblings.

use exec::{Job, Pool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Build jobs that tally their own execution count and return `i * 7`,
/// sleeping `delays_us[i]` first so different cases exercise different
/// stealing schedules.
fn tallied_jobs<'a>(
    counts: &'a [AtomicUsize],
    delays_us: &'a [u64],
    panic_at: Option<usize>,
) -> Vec<Job<'a, usize>> {
    (0..counts.len())
        .map(|i| {
            let counts = &counts[i];
            let delay = delays_us[i];
            Box::new(move || {
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(delay));
                }
                counts.fetch_add(1, Ordering::SeqCst);
                if panic_at == Some(i) {
                    panic!("planned failure in job {i}");
                }
                i * 7
            }) as Job<'a, usize>
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_job_runs_exactly_once(
        workers in 1usize..9,
        njobs in 0usize..40,
        delay_seed in 0u64..1000,
    ) {
        let counts: Vec<AtomicUsize> = (0..njobs).map(|_| AtomicUsize::new(0)).collect();
        let delays: Vec<u64> = (0..njobs as u64)
            .map(|i| (delay_seed.wrapping_mul(i + 1)) % 50)
            .collect();
        let out = Pool::new(workers).run(tallied_jobs(&counts, &delays, None));
        prop_assert_eq!(out.len(), njobs);
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "job {} ran a wrong number of times", i);
        }
    }

    #[test]
    fn merge_order_is_independent_of_workers_and_schedule(
        workers in 2usize..9,
        njobs in 1usize..40,
        delay_seed in 0u64..1000,
    ) {
        let counts: Vec<AtomicUsize> = (0..njobs).map(|_| AtomicUsize::new(0)).collect();
        let zero: Vec<u64> = vec![0; njobs];
        let serial = Pool::new(1).run(tallied_jobs(&counts, &zero, None));
        let delays: Vec<u64> = (0..njobs as u64)
            .map(|i| (delay_seed.wrapping_mul(7 * i + 3)) % 50)
            .collect();
        let parallel = Pool::new(workers).run(tallied_jobs(&counts, &delays, None));
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn a_panicking_job_never_poisons_siblings(
        workers in 1usize..9,
        njobs in 1usize..30,
        which in 0usize..30,
    ) {
        let panic_at = which % njobs;
        let counts: Vec<AtomicUsize> = (0..njobs).map(|_| AtomicUsize::new(0)).collect();
        let zero: Vec<u64> = vec![0; njobs];
        let out = Pool::new(workers).run(tallied_jobs(&counts, &zero, Some(panic_at)));
        for (i, slot) in out.iter().enumerate() {
            if i == panic_at {
                let err = slot.as_ref().expect_err("planned panic must surface as Err");
                prop_assert_eq!(err.index, i);
                prop_assert!(
                    err.message.contains("planned failure"),
                    "unexpected payload: {}", err.message
                );
            } else {
                prop_assert_eq!(slot.as_ref().ok().copied(), Some(i * 7), "sibling {} poisoned", i);
            }
            prop_assert_eq!(counts[i].load(Ordering::SeqCst), 1);
        }
    }
}
