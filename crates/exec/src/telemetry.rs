//! Pool telemetry: what every worker actually did during one `run`.
//!
//! Two consumers with different lifetimes:
//!
//! * **Post-run accounting** — [`PoolTelemetry`], returned by
//!   [`crate::Pool::run_timed`]: per-worker busy seconds, job counts,
//!   steal hit/miss counters, and queue-depth statistics (sampled at each
//!   job start). Report footers are built from this.
//! * **Live observation** — [`PoolMonitor`], a cloneable handle a caller
//!   passes into `run_timed`; a dashboard thread polls
//!   [`PoolMonitor::status`] while the run is in flight and sees
//!   done/running/failed counts and per-worker utilization. The handle
//!   reads `None` once the run finishes.
//!
//! All counters are relaxed atomics: they are statistics, not
//! synchronization — the pool's result slots carry the actual data
//! dependencies.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const R: Ordering = Ordering::Relaxed;

/// One worker's live counters for the current run.
pub(crate) struct WorkerState {
    pub(crate) busy_ns: AtomicU64,
    pub(crate) jobs: AtomicU64,
    pub(crate) steals_ok: AtomicU64,
    pub(crate) steals_fail: AtomicU64,
    /// Current length of the worker's own deque.
    pub(crate) queue_len: AtomicUsize,
    pub(crate) qdepth_sum: AtomicU64,
    pub(crate) qdepth_samples: AtomicU64,
    pub(crate) qdepth_max: AtomicUsize,
    /// Nanoseconds-since-`t0` **plus one** when the worker is running a
    /// job, 0 when idle (the +1 keeps 0 unambiguous).
    pub(crate) busy_since_ns: AtomicU64,
}

impl WorkerState {
    fn new() -> Self {
        WorkerState {
            busy_ns: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            steals_ok: AtomicU64::new(0),
            steals_fail: AtomicU64::new(0),
            queue_len: AtomicUsize::new(0),
            qdepth_sum: AtomicU64::new(0),
            qdepth_samples: AtomicU64::new(0),
            qdepth_max: AtomicUsize::new(0),
            busy_since_ns: AtomicU64::new(0),
        }
    }
}

/// Shared state of one in-flight `run_timed`.
pub(crate) struct RunState {
    pub(crate) t0: Instant,
    pub(crate) total: usize,
    pub(crate) started: AtomicUsize,
    pub(crate) finished: AtomicUsize,
    pub(crate) failed: AtomicUsize,
    pub(crate) workers: Vec<WorkerState>,
}

impl RunState {
    pub(crate) fn new(total: usize, workers: usize) -> Arc<Self> {
        Arc::new(RunState {
            t0: Instant::now(),
            total,
            started: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            workers: (0..workers).map(|_| WorkerState::new()).collect(),
        })
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    pub(crate) fn telemetry(&self, wall_secs: f64) -> PoolTelemetry {
        PoolTelemetry {
            wall_secs,
            jobs_total: self.total,
            jobs_failed: self.failed.load(R),
            workers: self
                .workers
                .iter()
                .map(|w| {
                    let samples = w.qdepth_samples.load(R);
                    WorkerTelemetry {
                        jobs: w.jobs.load(R),
                        busy_secs: w.busy_ns.load(R) as f64 * 1e-9,
                        steals_ok: w.steals_ok.load(R),
                        steals_fail: w.steals_fail.load(R),
                        queue_depth_mean: if samples > 0 {
                            w.qdepth_sum.load(R) as f64 / samples as f64
                        } else {
                            0.0
                        },
                        queue_depth_max: w.qdepth_max.load(R),
                    }
                })
                .collect(),
        }
    }

    fn status(&self) -> PoolStatus {
        let now_ns = self.now_ns();
        PoolStatus {
            total: self.total,
            started: self.started.load(R),
            finished: self.finished.load(R),
            failed: self.failed.load(R),
            elapsed_secs: now_ns as f64 * 1e-9,
            workers: self
                .workers
                .iter()
                .map(|w| {
                    let since = w.busy_since_ns.load(R);
                    let mut busy_ns = w.busy_ns.load(R);
                    if since > 0 {
                        busy_ns += now_ns.saturating_sub(since - 1);
                    }
                    WorkerStatus {
                        busy: since > 0,
                        busy_fraction: if now_ns > 0 {
                            (busy_ns as f64 / now_ns as f64).min(1.0)
                        } else {
                            0.0
                        },
                        queue_len: w.queue_len.load(R),
                    }
                })
                .collect(),
        }
    }
}

/// Per-worker accounting for one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerTelemetry {
    /// Jobs this worker completed (panicking jobs included).
    pub jobs: u64,
    /// Seconds spent inside jobs.
    pub busy_secs: f64,
    /// Steals that found a job on a sibling deque.
    pub steals_ok: u64,
    /// Full steal scans that found every deque empty.
    pub steals_fail: u64,
    /// Mean own-deque depth sampled at each job start.
    pub queue_depth_mean: f64,
    /// Max own-deque depth sampled at each job start.
    pub queue_depth_max: usize,
}

/// Whole-pool accounting for one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolTelemetry {
    /// Wall seconds the pool was open (deal to join).
    pub wall_secs: f64,
    /// Jobs submitted.
    pub jobs_total: usize,
    /// Jobs that panicked.
    pub jobs_failed: usize,
    /// One entry per worker, index = worker id.
    pub workers: Vec<WorkerTelemetry>,
}

impl PoolTelemetry {
    /// Total seconds all workers spent inside jobs.
    pub fn busy_secs(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_secs).sum()
    }

    /// Busy seconds over worker-seconds available: 1.0 means every worker
    /// ran jobs the whole time the pool was open.
    pub fn busy_fraction(&self) -> f64 {
        let slots = self.wall_secs * self.workers.len() as f64;
        if slots > 0.0 {
            (self.busy_secs() / slots).min(1.0)
        } else {
            0.0
        }
    }

    /// `(hits, misses)` summed over workers.
    pub fn steals(&self) -> (u64, u64) {
        self.workers.iter().fold((0, 0), |(ok, fail), w| {
            (ok + w.steals_ok, fail + w.steals_fail)
        })
    }

    /// Max sampled queue depth over workers.
    pub fn queue_depth_max(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.queue_depth_max)
            .max()
            .unwrap_or(0)
    }
}

/// A point-in-time view of one worker during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStatus {
    /// Whether the worker is inside a job right now.
    pub busy: bool,
    /// Busy time (including the in-flight job) over elapsed time.
    pub busy_fraction: f64,
    /// Current own-deque length.
    pub queue_len: usize,
}

/// A point-in-time view of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStatus {
    /// Jobs submitted.
    pub total: usize,
    /// Jobs a worker has picked up.
    pub started: usize,
    /// Jobs finished (ok or panicked).
    pub finished: usize,
    /// Jobs that panicked.
    pub failed: usize,
    /// Seconds since the pool opened.
    pub elapsed_secs: f64,
    /// One entry per worker, index = worker id.
    pub workers: Vec<WorkerStatus>,
}

/// A cloneable handle a dashboard polls while a `run_timed` it was passed
/// to is in flight. Reads `None` before the run installs it and after the
/// run finishes.
#[derive(Clone, Default)]
pub struct PoolMonitor {
    inner: Arc<Mutex<Option<Arc<RunState>>>>,
}

impl PoolMonitor {
    /// A fresh, unattached monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current run's status, or `None` when no run is attached.
    pub fn status(&self) -> Option<PoolStatus> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|state| state.status())
    }

    pub(crate) fn install(&self, state: Arc<RunState>) {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner()) = Some(state);
    }

    pub(crate) fn clear(&self) {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

impl std::fmt::Debug for PoolMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolMonitor")
            .field("attached", &self.status().is_some())
            .finish()
    }
}
