//! The resident pool: long-lived worker threads for a resident service.
//!
//! [`Pool`](crate::Pool) is scoped — workers are born and joined inside
//! one `run` call, which is exactly right for a single experiment plan
//! borrowing the caller's data. A *server* has the opposite shape: one
//! pool that outlives every request, fed batches from many connection
//! threads concurrently. [`ResidentPool`] serves that shape:
//!
//! * Workers are spawned once and live until the pool drops; jobs must
//!   therefore be `'static` (the server's jobs own their specs).
//! * [`ResidentPool::submit`] enqueues a batch and returns a
//!   [`BatchHandle`]; jobs from different batches interleave on the shared
//!   queue in FIFO submission order, so concurrent clients share the
//!   workers fairly instead of serializing batch-by-batch.
//! * [`BatchHandle::wait`] blocks on one slot, enabling *streaming*: the
//!   submitter can forward cell 3's result the moment it lands while
//!   cells 4..n are still running.
//! * Panic isolation matches the scoped pool: a panicking job fills its
//!   slot with a [`JobPanic`] and its siblings keep running.

use crate::pool::{JobPanic, TimedResult};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A resident job: owned closure, run once on some resident worker.
pub type ResidentJob<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// One submitted batch's result slots.
struct Batch<T> {
    slots: Mutex<Vec<Option<TimedResult<T>>>>,
    filled: Condvar,
}

/// A handle onto one submitted batch. Results are claimed slot-by-slot
/// ([`BatchHandle::wait`]) or all at once ([`BatchHandle::wait_all`]).
pub struct BatchHandle<T> {
    batch: Arc<Batch<T>>,
    len: usize,
}

impl<T> BatchHandle<T> {
    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block until slot `index` is filled and take its result. Each slot
    /// yields its result exactly once; a second wait on the same slot
    /// panics (the caller claimed it already).
    pub fn wait(&self, index: usize) -> TimedResult<T> {
        let mut slots = self.batch.slots.lock().unwrap();
        loop {
            if let Some(result) = slots[index].take() {
                return result;
            }
            slots = self.batch.filled.wait(slots).unwrap();
        }
    }

    /// Claim every slot, in submission order.
    pub fn wait_all(self) -> Vec<TimedResult<T>> {
        (0..self.len).map(|i| self.wait(i)).collect()
    }
}

/// Work queue shared by the resident workers.
struct Shared<T> {
    queue: Mutex<QueueState<T>>,
    ready: Condvar,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    batches: AtomicU64,
    t0: Instant,
    live: Vec<WorkerLive>,
}

/// One resident worker's live counters, updated by the worker itself and
/// read by [`ResidentPool::status`] at any moment of the pool's life —
/// the resident-shape analogue of the scoped pool's `WorkerState`
/// (periodic snapshots instead of one end-of-run telemetry record).
struct WorkerLive {
    busy_ns: AtomicU64,
    jobs: AtomicU64,
    /// Nanoseconds-since-`t0` **plus one** while inside a job, 0 when
    /// idle (the +1 keeps 0 unambiguous).
    busy_since_ns: AtomicU64,
}

impl WorkerLive {
    fn new() -> Self {
        WorkerLive {
            busy_ns: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            busy_since_ns: AtomicU64::new(0),
        }
    }
}

struct QueueState<T> {
    jobs: VecDeque<(Arc<Batch<T>>, usize, ResidentJob<T>)>,
    shutdown: bool,
}

/// Counters over a resident pool's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentStats {
    /// Jobs completed (panicked jobs included).
    pub jobs_done: u64,
    /// Jobs that panicked.
    pub jobs_failed: u64,
    /// Batches submitted.
    pub batches: u64,
}

/// A point-in-time view of one resident worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentWorkerStatus {
    /// Whether the worker is inside a job right now.
    pub busy: bool,
    /// Seconds spent inside jobs so far (the in-flight job included).
    pub busy_secs: f64,
    /// Busy seconds over the pool's uptime.
    pub busy_fraction: f64,
    /// Jobs this worker completed.
    pub jobs: u64,
}

/// A point-in-time view of one resident pool: the periodic-snapshot
/// counterpart of [`ResidentStats`], cheap enough to publish on every
/// telemetry scrape instead of only at end of run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentStatus {
    /// Seconds since the pool was created.
    pub uptime_secs: f64,
    /// Jobs queued and not yet picked up by a worker.
    pub queue_len: usize,
    /// One entry per worker, index = worker id.
    pub workers: Vec<ResidentWorkerStatus>,
}

impl ResidentStatus {
    /// Workers currently inside a job.
    pub fn busy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.busy).count()
    }
}

/// A pool of long-lived worker threads. Dropping the pool shuts it down:
/// queued jobs still drain, then the workers retire and are joined.
pub struct ResidentPool<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl<T: Send + 'static> ResidentPool<T> {
    /// A resident pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            t0: Instant::now(),
            live: (0..workers).map(|_| WorkerLive::new()).collect(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{me}"))
                    .spawn(move || worker_loop(me, &shared))
                    .expect("spawning a resident worker thread")
            })
            .collect();
        ResidentPool {
            shared,
            handles,
            workers,
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ResidentStats {
        ResidentStats {
            jobs_done: self.shared.jobs_done.load(Relaxed),
            jobs_failed: self.shared.jobs_failed.load(Relaxed),
            batches: self.shared.batches.load(Relaxed),
        }
    }

    /// A live snapshot: queue depth and per-worker utilization right now.
    /// Safe to call from any thread at any cadence — counters are relaxed
    /// atomics and the queue lock is held only to read its length.
    pub fn status(&self) -> ResidentStatus {
        let now_ns = self.shared.t0.elapsed().as_nanos() as u64;
        let queue_len = self.shared.queue.lock().unwrap().jobs.len();
        ResidentStatus {
            uptime_secs: now_ns as f64 * 1e-9,
            queue_len,
            workers: self
                .shared
                .live
                .iter()
                .map(|w| {
                    let since = w.busy_since_ns.load(Relaxed);
                    let mut busy_ns = w.busy_ns.load(Relaxed);
                    if since > 0 {
                        busy_ns += now_ns.saturating_sub(since - 1);
                    }
                    ResidentWorkerStatus {
                        busy: since > 0,
                        busy_secs: busy_ns as f64 * 1e-9,
                        busy_fraction: if now_ns > 0 {
                            (busy_ns as f64 / now_ns as f64).min(1.0)
                        } else {
                            0.0
                        },
                        jobs: w.jobs.load(Relaxed),
                    }
                })
                .collect(),
        }
    }

    /// Enqueue a batch. Jobs join the shared FIFO queue immediately (they
    /// interleave with other live batches) and results land in the
    /// returned handle's slots in this batch's submission order.
    pub fn submit(&self, jobs: Vec<ResidentJob<T>>) -> BatchHandle<T> {
        let len = jobs.len();
        let batch = Arc::new(Batch {
            slots: Mutex::new((0..len).map(|_| None).collect()),
            filled: Condvar::new(),
        });
        self.shared.batches.fetch_add(1, Relaxed);
        if len > 0 {
            let mut state = self.shared.queue.lock().unwrap();
            for (i, job) in jobs.into_iter().enumerate() {
                state.jobs.push_back((Arc::clone(&batch), i, job));
            }
            drop(state);
            self.shared.ready.notify_all();
        }
        BatchHandle { batch, len }
    }
}

impl<T: Send + 'static> Drop for ResidentPool<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(me: usize, shared: &Shared<T>) {
    loop {
        let next = {
            let mut state = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.ready.wait(state).unwrap();
            }
        };
        let Some((batch, index, job)) = next else {
            return;
        };
        let live = &shared.live[me];
        live.busy_since_ns
            .store(shared.t0.elapsed().as_nanos() as u64 + 1, Relaxed);
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobPanic {
            index,
            message: crate::pool::panic_message(payload.as_ref()),
        });
        let wall = t0.elapsed().as_secs_f64();
        live.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Relaxed);
        live.busy_since_ns.store(0, Relaxed);
        live.jobs.fetch_add(1, Relaxed);
        shared.jobs_done.fetch_add(1, Relaxed);
        if result.is_err() {
            shared.jobs_failed.fetch_add(1, Relaxed);
        }
        let mut slots = batch.slots.lock().unwrap();
        slots[index] = Some(TimedResult {
            result,
            wall_secs: wall,
            worker: me,
        });
        drop(slots);
        batch.filled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_complete_in_submission_order() {
        let pool: ResidentPool<usize> = ResidentPool::new(3);
        let jobs: Vec<ResidentJob<usize>> = (0..17usize)
            .map(|i| Box::new(move || i * 7) as ResidentJob<usize>)
            .collect();
        let out = pool.submit(jobs).wait_all();
        let values: Vec<usize> = out.into_iter().map(|t| t.result.unwrap()).collect();
        assert_eq!(values, (0..17).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool: ResidentPool<()> = ResidentPool::new(2);
        assert!(pool.submit(Vec::new()).wait_all().is_empty());
    }

    #[test]
    fn concurrent_batches_each_get_their_own_complete_results() {
        let pool = Arc::new(ResidentPool::<usize>::new(4));
        let mut joins = Vec::new();
        for b in 0..6usize {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let jobs: Vec<ResidentJob<usize>> = (0..9)
                    .map(|i| Box::new(move || b * 100 + i) as ResidentJob<usize>)
                    .collect();
                pool.submit(jobs)
                    .wait_all()
                    .into_iter()
                    .map(|t| t.result.unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        for (b, join) in joins.into_iter().enumerate() {
            let values = join.join().unwrap();
            assert_eq!(values, (0..9).map(|i| b * 100 + i).collect::<Vec<_>>());
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_done, 54);
        assert_eq!(stats.batches, 6);
    }

    #[test]
    fn a_panicking_job_fills_its_slot_and_spares_siblings() {
        let pool: ResidentPool<usize> = ResidentPool::new(2);
        let jobs: Vec<ResidentJob<usize>> = (0..5usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("resident job {i} exploded");
                    }
                    i
                }) as ResidentJob<usize>
            })
            .collect();
        let out = pool.submit(jobs).wait_all();
        for (i, t) in out.iter().enumerate() {
            if i == 2 {
                let err = t.result.as_ref().unwrap_err();
                assert_eq!(err.index, 2);
                assert!(err.message.contains("exploded"));
            } else {
                assert_eq!(t.result.as_ref().unwrap(), &i);
            }
        }
        assert_eq!(pool.stats().jobs_failed, 1);
    }

    #[test]
    fn per_slot_waits_stream_out_of_order() {
        let pool: ResidentPool<usize> = ResidentPool::new(1);
        let jobs: Vec<ResidentJob<usize>> = (0..3usize)
            .map(|i| Box::new(move || i) as ResidentJob<usize>)
            .collect();
        let handle = pool.submit(jobs);
        // Waiting on the last slot first must not deadlock.
        assert_eq!(handle.wait(2).result.unwrap(), 2);
        assert_eq!(handle.wait(0).result.unwrap(), 0);
        assert_eq!(handle.wait(1).result.unwrap(), 1);
    }

    #[test]
    fn status_sees_busy_workers_and_queue_depth_live() {
        let pool: ResidentPool<usize> = ResidentPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut jobs: Vec<ResidentJob<usize>> = Vec::new();
        for i in 0..3usize {
            let gate = Arc::clone(&gate);
            jobs.push(Box::new(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                i
            }));
        }
        let handle = pool.submit(jobs);
        // The single worker picks up job 0 and blocks on the gate; the
        // other two jobs stay queued.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let s = pool.status();
            if s.busy_workers() == 1 && s.queue_len == 2 {
                assert_eq!(s.workers.len(), 1);
                assert!(s.workers[0].busy);
                assert_eq!(s.workers[0].jobs, 0, "no job finished yet");
                break;
            }
            assert!(Instant::now() < deadline, "worker never picked up job 0");
            std::thread::yield_now();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let out = handle.wait_all();
        assert_eq!(out.len(), 3);
        let s = pool.status();
        assert_eq!(s.queue_len, 0);
        assert_eq!(s.busy_workers(), 0);
        assert_eq!(s.workers[0].jobs, 3);
        assert!(s.workers[0].busy_secs >= 0.0);
        assert!(s.workers[0].busy_fraction <= 1.0);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let done = Arc::new(AtomicU64::new(0));
        let handle = {
            let pool: ResidentPool<()> = ResidentPool::new(1);
            let jobs: Vec<ResidentJob<()>> = (0..8)
                .map(|_| {
                    let done = Arc::clone(&done);
                    Box::new(move || {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        done.fetch_add(1, Relaxed);
                    }) as ResidentJob<()>
                })
                .collect();
            let handle = pool.submit(jobs);
            drop(pool); // shutdown: queued jobs still drain
            handle
        };
        let out = handle.wait_all();
        assert_eq!(out.len(), 8);
        assert_eq!(done.load(Relaxed), 8);
    }
}
