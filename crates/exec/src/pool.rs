//! The scoped-thread work-stealing pool.
//!
//! Jobs are dealt round-robin onto per-worker deques. A worker pops from
//! the back of its own deque (LIFO — the most recently dealt job is the
//! most cache-warm) and steals from the front of the other deques (FIFO —
//! stealing the oldest job minimizes contention with the owner). Because
//! submitted jobs never enqueue new jobs, "every deque is empty" is a
//! stable exit condition: a worker that observes it can retire while
//! in-flight jobs finish on their own workers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A unit of work: runs once, on some worker thread, producing a `T`.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// One worker's deque of `(submission index, job)` pairs.
type JobDeque<'a, T> = Mutex<VecDeque<(usize, Job<'a, T>)>>;

/// One job's result slot, filled exactly once by whichever worker ran it.
type ResultSlot<T> = Mutex<Option<Result<T, JobPanic>>>;

/// A job that panicked instead of producing a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The job's submission index.
    pub index: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// The worker-count policy of one executor instance.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The host's available parallelism (1 when it cannot be probed).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every job and return the results **in submission order**,
    /// regardless of worker count or stealing schedule. Slot `i` holds
    /// `Ok` with job `i`'s value, or `Err` with its panic payload.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<Result<T, JobPanic>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let queues: Vec<JobDeque<'a, T>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, job));
        }
        let slots: Vec<ResultSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            // The calling thread doubles as worker 0; extra workers are
            // scoped threads joined before `run` returns.
            for me in 1..workers {
                let queues = &queues;
                let slots = &slots;
                s.spawn(move || worker_loop(me, queues, slots));
            }
            worker_loop(0, &queues, &slots);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every submitted job runs exactly once")
            })
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(Pool::available())
    }
}

fn worker_loop<T: Send>(me: usize, queues: &[JobDeque<'_, T>], slots: &[ResultSlot<T>]) {
    loop {
        let job = queues[me]
            .lock()
            .unwrap()
            .pop_back()
            .or_else(|| steal(me, queues));
        let Some((index, job)) = job else { return };
        let result = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobPanic {
            index,
            message: panic_message(payload.as_ref()),
        });
        *slots[index].lock().unwrap() = Some(result);
    }
}

/// Steal the oldest job from the first non-empty sibling deque, scanning
/// from the thief's right-hand neighbour around the ring.
fn steal<'a, T>(me: usize, queues: &[JobDeque<'a, T>]) -> Option<(usize, Job<'a, T>)> {
    let n = queues.len();
    (1..n)
        .map(|d| (me + d) % n)
        .find_map(|victim| queues[victim].lock().unwrap().pop_front())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed_jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * 3) as Job<'static, usize>)
            .collect()
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(Pool::new(4).run::<()>(Vec::new()).is_empty());
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = Pool::new(workers).run(boxed_jobs(23));
            let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert!(Pool::available() >= 1);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Pool::new(16).run(boxed_jobs(3));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn caller_thread_participates() {
        // With one worker there is no spawned thread at all: the job runs
        // on the calling thread.
        let caller = std::thread::current().id();
        let out = Pool::new(1).run(vec![
            Box::new(move || std::thread::current().id() == caller) as Job<'static, bool>,
        ]);
        assert_eq!(out, vec![Ok(true)]);
    }

    #[test]
    fn a_panicking_job_does_not_poison_siblings() {
        let ran = AtomicUsize::new(0);
        let jobs: Vec<Job<'_, usize>> = (0..10usize)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 4 {
                        panic!("cell {i} exploded");
                    }
                    i
                }) as Job<'_, usize>
            })
            .collect();
        let out = Pool::new(3).run(jobs);
        // Hide the expected panic's backtrace noise is not worth a global
        // hook; just check the contract.
        assert_eq!(ran.load(Ordering::SeqCst), 10, "siblings must all run");
        for (i, slot) in out.iter().enumerate() {
            if i == 4 {
                let err = slot.as_ref().unwrap_err();
                assert_eq!(err.index, 4);
                assert!(err.message.contains("cell 4 exploded"), "{}", err.message);
            } else {
                assert_eq!(slot.as_ref().unwrap(), &i);
            }
        }
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        // The 'a lifetime on Job lets cells capture &data from the caller.
        let data = [10usize, 20, 30];
        let jobs: Vec<Job<'_, usize>> = data
            .iter()
            .map(|&v| Box::new(move || v + 1) as Job<'_, usize>)
            .collect();
        let out = Pool::new(2).run(jobs);
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![11, 21, 31]);
    }
}
