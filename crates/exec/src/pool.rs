//! The scoped-thread work-stealing pool.
//!
//! Jobs are dealt round-robin onto per-worker deques. A worker pops from
//! the back of its own deque (LIFO — the most recently dealt job is the
//! most cache-warm) and steals from the front of the other deques (FIFO —
//! stealing the oldest job minimizes contention with the owner). Because
//! submitted jobs never enqueue new jobs, "every deque is empty" is a
//! stable exit condition: a worker that observes it can retire while
//! in-flight jobs finish on their own workers.

use crate::telemetry::{PoolMonitor, PoolTelemetry, RunState};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Mutex;
use std::time::Instant;

/// A unit of work: runs once, on some worker thread, producing a `T`.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// One worker's deque of `(submission index, job)` pairs.
type JobDeque<'a, T> = Mutex<VecDeque<(usize, Job<'a, T>)>>;

/// One job's result slot, filled exactly once by whichever worker ran it.
type ResultSlot<T> = Mutex<Option<TimedResult<T>>>;

/// One job's outcome plus its host-side timing: the wall time is measured
/// around the job on its worker, so it is recorded **even when the job
/// panics** — a dead cell still gets a timing row.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedResult<T> {
    /// The job's value, or its panic.
    pub result: Result<T, JobPanic>,
    /// Wall seconds the job ran on its worker.
    pub wall_secs: f64,
    /// The worker that ran the job.
    pub worker: usize,
}

/// A job that panicked instead of producing a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The job's submission index.
    pub index: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// The worker-count policy of one executor instance.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The host's available parallelism (1 when it cannot be probed).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every job and return the results **in submission order**,
    /// regardless of worker count or stealing schedule. Slot `i` holds
    /// `Ok` with job `i`'s value, or `Err` with its panic payload.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<Result<T, JobPanic>> {
        self.run_timed(jobs, None)
            .0
            .into_iter()
            .map(|t| t.result)
            .collect()
    }

    /// [`Pool::run`] plus accounting: each result carries its on-worker
    /// wall time (panics included) and the pool returns its
    /// [`PoolTelemetry`]. A [`PoolMonitor`] handle, when given, observes
    /// the run live until the pool closes.
    pub fn run_timed<'a, T: Send>(
        &self,
        jobs: Vec<Job<'a, T>>,
        monitor: Option<&PoolMonitor>,
    ) -> (Vec<TimedResult<T>>, PoolTelemetry) {
        let n = jobs.len();
        let workers = self.workers.min(n.max(1));
        let state = RunState::new(n, workers);
        if n == 0 {
            return (Vec::new(), state.telemetry(0.0));
        }
        if let Some(m) = monitor {
            m.install(state.clone());
        }
        let queues: Vec<JobDeque<'a, T>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, job));
        }
        for (w, queue) in queues.iter().enumerate() {
            state.workers[w]
                .queue_len
                .store(queue.lock().unwrap().len(), Relaxed);
        }
        let slots: Vec<ResultSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            // The calling thread doubles as worker 0; extra workers are
            // scoped threads joined before `run_timed` returns.
            for me in 1..workers {
                let queues = &queues;
                let slots = &slots;
                let state = &state;
                std::thread::Builder::new()
                    .name(format!("xp-worker-{me}"))
                    .spawn_scoped(s, move || worker_loop(me, queues, slots, state))
                    .expect("spawning a pool worker thread");
            }
            worker_loop(0, &queues, &slots, &state);
        });
        let telemetry = state.telemetry(state.t0.elapsed().as_secs_f64());
        if let Some(m) = monitor {
            m.clear();
        }
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every submitted job runs exactly once")
            })
            .collect();
        (results, telemetry)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(Pool::available())
    }
}

fn worker_loop<T: Send>(
    me: usize,
    queues: &[JobDeque<'_, T>],
    slots: &[ResultSlot<T>],
    state: &RunState,
) {
    let ws = &state.workers[me];
    loop {
        let popped = {
            let mut queue = queues[me].lock().unwrap();
            let job = queue.pop_back();
            ws.queue_len.store(queue.len(), Relaxed);
            job
        };
        let job = popped.or_else(|| steal(me, queues, state));
        let Some((index, job)) = job else { return };
        // Sample the worker's own queue depth at each job start: the mean
        // over samples tells whether the round-robin deal left work parked
        // behind long jobs.
        let depth = ws.queue_len.load(Relaxed);
        ws.qdepth_sum.fetch_add(depth as u64, Relaxed);
        ws.qdepth_samples.fetch_add(1, Relaxed);
        ws.qdepth_max.fetch_max(depth, Relaxed);
        state.started.fetch_add(1, Relaxed);
        ws.busy_since_ns.store(state.now_ns() + 1, Relaxed);
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobPanic {
            index,
            message: panic_message(payload.as_ref()),
        });
        let wall = t0.elapsed();
        ws.busy_ns.fetch_add(wall.as_nanos() as u64, Relaxed);
        ws.busy_since_ns.store(0, Relaxed);
        ws.jobs.fetch_add(1, Relaxed);
        if result.is_err() {
            state.failed.fetch_add(1, Relaxed);
        }
        state.finished.fetch_add(1, Relaxed);
        *slots[index].lock().unwrap() = Some(TimedResult {
            result,
            wall_secs: wall.as_secs_f64(),
            worker: me,
        });
    }
}

/// Steal the oldest job from the first non-empty sibling deque, scanning
/// from the thief's right-hand neighbour around the ring. A hit counts on
/// the thief; a full empty scan counts one miss (the thief retires).
fn steal<'a, T>(
    me: usize,
    queues: &[JobDeque<'a, T>],
    state: &RunState,
) -> Option<(usize, Job<'a, T>)> {
    let n = queues.len();
    for d in 1..n {
        let victim = (me + d) % n;
        let mut queue = queues[victim].lock().unwrap();
        if let Some(job) = queue.pop_front() {
            state.workers[victim].queue_len.store(queue.len(), Relaxed);
            drop(queue);
            state.workers[me].steals_ok.fetch_add(1, Relaxed);
            return Some(job);
        }
    }
    state.workers[me].steals_fail.fetch_add(1, Relaxed);
    None
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed_jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * 3) as Job<'static, usize>)
            .collect()
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(Pool::new(4).run::<()>(Vec::new()).is_empty());
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = Pool::new(workers).run(boxed_jobs(23));
            let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert!(Pool::available() >= 1);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Pool::new(16).run(boxed_jobs(3));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn caller_thread_participates() {
        // With one worker there is no spawned thread at all: the job runs
        // on the calling thread.
        let caller = std::thread::current().id();
        let out = Pool::new(1).run(vec![
            Box::new(move || std::thread::current().id() == caller) as Job<'static, bool>,
        ]);
        assert_eq!(out, vec![Ok(true)]);
    }

    #[test]
    fn a_panicking_job_does_not_poison_siblings() {
        let ran = AtomicUsize::new(0);
        let jobs: Vec<Job<'_, usize>> = (0..10usize)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 4 {
                        panic!("cell {i} exploded");
                    }
                    i
                }) as Job<'_, usize>
            })
            .collect();
        let out = Pool::new(3).run(jobs);
        // Hide the expected panic's backtrace noise is not worth a global
        // hook; just check the contract.
        assert_eq!(ran.load(Ordering::SeqCst), 10, "siblings must all run");
        for (i, slot) in out.iter().enumerate() {
            if i == 4 {
                let err = slot.as_ref().unwrap_err();
                assert_eq!(err.index, 4);
                assert!(err.message.contains("cell 4 exploded"), "{}", err.message);
            } else {
                assert_eq!(slot.as_ref().unwrap(), &i);
            }
        }
    }

    #[test]
    fn a_panicking_job_still_gets_a_wall_time() {
        let jobs: Vec<Job<'static, ()>> = vec![
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                panic!("late panic");
            }),
            Box::new(|| ()),
        ];
        let (out, telemetry) = Pool::new(1).run_timed(jobs, None);
        assert!(out[0].result.is_err());
        assert!(
            out[0].wall_secs >= 0.004,
            "panicking job must report the time it ran, got {}",
            out[0].wall_secs
        );
        assert!(out[1].result.is_ok());
        assert_eq!(telemetry.jobs_total, 2);
        assert_eq!(telemetry.jobs_failed, 1);
    }

    #[test]
    fn telemetry_accounts_every_job_to_a_worker() {
        let (out, telemetry) = Pool::new(3).run_timed(boxed_jobs(20), None);
        assert_eq!(telemetry.jobs_total, 20);
        assert_eq!(telemetry.jobs_failed, 0);
        assert_eq!(telemetry.workers.len(), 3);
        let counted: u64 = telemetry.workers.iter().map(|w| w.jobs).sum();
        assert_eq!(counted, 20);
        assert!(telemetry.busy_secs() >= 0.0);
        assert!(telemetry.wall_secs > 0.0);
        assert!(telemetry.busy_fraction() <= 1.0);
        // Every result's worker id is in range and its wall is sane.
        for t in &out {
            assert!(t.worker < 3);
            assert!(t.wall_secs >= 0.0);
        }
    }

    #[test]
    fn empty_run_yields_empty_telemetry() {
        let (out, telemetry) = Pool::new(4).run_timed(Vec::<Job<'static, ()>>::new(), None);
        assert!(out.is_empty());
        assert_eq!(telemetry.jobs_total, 0);
        assert_eq!(telemetry.busy_secs(), 0.0);
    }

    #[test]
    fn monitor_attaches_during_the_run_and_detaches_after() {
        let monitor = crate::PoolMonitor::new();
        assert!(monitor.status().is_none(), "no run attached yet");
        let seen = Mutex::new(None);
        let jobs: Vec<Job<'_, ()>> = (0..4)
            .map(|_| {
                let monitor = monitor.clone();
                let seen = &seen;
                Box::new(move || {
                    // Sampled from inside a job: the run is in flight.
                    if let Some(status) = monitor.status() {
                        *seen.lock().unwrap() = Some(status);
                    }
                }) as Job<'_, ()>
            })
            .collect();
        let (_, telemetry) = Pool::new(2).run_timed(jobs, Some(&monitor));
        let status = seen.into_inner().unwrap().expect("status sampled mid-run");
        assert_eq!(status.total, 4);
        assert!(status.started >= 1);
        assert_eq!(status.workers.len(), telemetry.workers.len());
        assert!(monitor.status().is_none(), "monitor detaches at close");
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        // The 'a lifetime on Job lets cells capture &data from the caller.
        let data = [10usize, 20, 30];
        let jobs: Vec<Job<'_, usize>> = data
            .iter()
            .map(|&v| Box::new(move || v + 1) as Job<'_, usize>)
            .collect();
        let out = Pool::new(2).run(jobs);
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![11, 21, 31]);
    }
}
