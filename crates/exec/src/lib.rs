//! Host-parallel experiment executor.
//!
//! The experiment grids of the paper — benchmark x placement x engine x
//! scale x seed — are embarrassingly parallel on the host: every cell
//! builds its own simulated machine and never touches another cell's
//! state. This crate supplies the one missing piece, a dependency-free
//! work-stealing thread pool whose contract is built around the
//! repository's determinism guarantee:
//!
//! * **Deterministic merge order.** [`Pool::run`] returns results in
//!   submission order, whatever the worker count or stealing schedule.
//!   Downstream report builders consume the merged vector, so a
//!   single-threaded and a `--jobs N` run produce byte-identical output.
//! * **Panic isolation.** Each job runs under `catch_unwind`; a panicking
//!   job yields a [`JobPanic`] in its slot while sibling jobs keep
//!   running. A failed experiment cell becomes a failed row, not a dead
//!   run.
//! * **No unscoped threads.** Workers are `std::thread::scope` threads,
//!   joined before [`Pool::run`] returns — no detached threads outliving
//!   the experiment, nothing to leak on the error path.
//!
//! The pool is deliberately a *vendored-shim style* implementation: plain
//! `Mutex<VecDeque>` per-worker queues with FIFO stealing, not lock-free
//! Chase–Lev deques. Experiment cells run for milliseconds to minutes, so
//! queue overhead is noise; simplicity and auditability win.
//!
//! A second executor, [`ResidentPool`], trades the scoped shape for
//! longevity: workers spawned once and joined on drop, fed `'static` job
//! batches from concurrent submitters, with per-slot streaming waits. It
//! exists for the resident experiment server (`xp serve`), which owns one
//! pool across many client requests.

pub mod pool;
pub mod resident;
pub mod telemetry;

pub use pool::{Job, JobPanic, Pool, TimedResult};
pub use resident::{
    BatchHandle, ResidentJob, ResidentPool, ResidentStats, ResidentStatus, ResidentWorkerStatus,
};
pub use telemetry::{PoolMonitor, PoolStatus, PoolTelemetry, WorkerStatus, WorkerTelemetry};
