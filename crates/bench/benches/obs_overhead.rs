//! Tracing overhead on the simulator's hottest path: `Machine::touch` with
//! the default `TraceSink::Null` (one not-taken branch per instrumentation
//! site) versus an active sink recording latency samples and events.
//!
//! The Null rows are directly comparable to the `touch/*` rows of
//! `simulator_fastpath` — the acceptance bar for the instrumentation is a
//! Null-sink regression under 2% against those.

use ccnuma::{AccessKind, Machine, MachineConfig, PAGE_SIZE};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn machine_with_sink(active: bool) -> Machine {
    let mut m = Machine::new(MachineConfig::origin2000_16p_scaled());
    if active {
        m.set_trace(obs::TraceSink::enabled(1 << 16));
    }
    m
}

fn bench_null_vs_active(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_touch");
    group.throughput(Throughput::Elements(1));

    for (label, active) in [("null_sink", false), ("active_sink", true)] {
        group.bench_function(format!("l1_hit/{label}"), |b| {
            let mut m = machine_with_sink(active);
            m.touch(0, 0, AccessKind::Read);
            b.iter(|| black_box(m.touch(0, 0, AccessKind::Read)))
        });

        group.bench_function(format!("memory_streaming/{label}"), |b| {
            let mut m = machine_with_sink(active);
            let span = 256 * PAGE_SIZE;
            let base = m.reserve_vspace(span);
            let mut addr = base;
            b.iter(|| {
                addr += 128;
                if addr >= base + span {
                    addr = base;
                }
                black_box(m.touch(0, addr, AccessKind::Read))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_null_vs_active);
criterion_main!(benches);
