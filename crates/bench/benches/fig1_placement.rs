//! Figure 1 bench: one full benchmark run per placement scheme x kernel
//! migration setting, at Tiny scale so Criterion can sample repeatedly.
//! The simulated-seconds outputs are the Figure 1 series; Criterion times
//! how long regenerating each bar takes on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nas::{BenchName, EngineMode, RunConfig, Scale};
use std::hint::black_box;
use vmm::{KernelMigrationConfig, PlacementScheme};
use xp::run_one;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for bench in [BenchName::Cg, BenchName::Mg] {
        for placement in PlacementScheme::all(20000) {
            for engine in [
                EngineMode::None,
                EngineMode::IrixMig(KernelMigrationConfig::default()),
            ] {
                let id = format!("{}-{}-{}", bench.label(), placement.label(), engine.label());
                group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                    b.iter(|| {
                        let cfg = RunConfig {
                            placement: placement.clone(),
                            engine: engine.clone(),
                            ..RunConfig::paper_default()
                        };
                        let r = run_one(bench, Scale::Tiny, &cfg);
                        assert!(r.verification.passed);
                        black_box(r.total_secs)
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
