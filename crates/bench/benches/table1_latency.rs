//! Table 1 bench: regenerates the memory-hierarchy latency probe and
//! verifies the measured values against the paper's numbers on every
//! iteration, timing the probe itself.

use ccnuma::{Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("latency_probe", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::origin2000_16p());
            let t = xp::table1::measure(&mut machine);
            assert_eq!(t.l1_ns, 5.5);
            assert_eq!(t.remote_ns, vec![564.0, 759.0, 862.0]);
            black_box(t)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
