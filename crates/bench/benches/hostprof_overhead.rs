//! Host-span profiler overhead on the simulator's hottest path.
//!
//! The contract (DESIGN.md §14): with no session open, an instrumented
//! site costs one relaxed atomic load — `touch/span_disabled` must sit
//! within noise of `simulator_fastpath`'s uninstrumented `touch` rows.
//! With a session open, `span_hot` pays a thread-local stack push/pop
//! and an aggregate update; that cost is visible here so regressions in
//! the *enabled* path are caught too (tests/host_spans.rs carries the
//! CI-armed disabled-path assert).

use ccnuma::{AccessKind, Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_span_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hostprof");
    group.throughput(Throughput::Elements(1));

    // The bare guard, disabled: the near-zero-cost path.
    group.bench_function("span/disabled", |b| {
        b.iter(|| {
            let _hp = hostprof::span_hot("bench.raw");
            black_box(0u64)
        })
    });

    // The bare guard with a session open: stack push/pop + aggregate.
    group.bench_function("span/enabled", |b| {
        let session = hostprof::start();
        b.iter(|| {
            let _hp = hostprof::span_hot("bench.raw");
            black_box(0u64)
        });
        drop(session.finish());
    });

    // The instrumented hot path end to end: an L1-hit touch, with the
    // profiler disabled and enabled.
    group.bench_function("touch/span_disabled", |b| {
        let mut m = Machine::new(MachineConfig::origin2000_16p_scaled());
        m.touch(0, 0, AccessKind::Read);
        b.iter(|| black_box(m.touch(0, 0, AccessKind::Read)))
    });
    group.bench_function("touch/span_enabled", |b| {
        let mut m = Machine::new(MachineConfig::origin2000_16p_scaled());
        m.touch(0, 0, AccessKind::Read);
        let session = hostprof::start();
        b.iter(|| black_box(m.touch(0, 0, AccessKind::Read)));
        drop(session.finish());
    });

    group.finish();
}

criterion_group!(benches, bench_span_paths);
criterion_main!(benches);
