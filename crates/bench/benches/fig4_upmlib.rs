//! Figure 4 bench: the UPMlib distribution-emulation runs (the `*-upmlib`
//! bars) regenerated at Tiny scale under Criterion timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nas::{BenchName, EngineMode, RunConfig, Scale};
use std::hint::black_box;
use upmlib::UpmOptions;
use vmm::PlacementScheme;
use xp::run_one;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for bench in [BenchName::Cg, BenchName::Ft] {
        for placement in PlacementScheme::all(20000) {
            let id = format!("{}-{}-upmlib", bench.label(), placement.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                b.iter(|| {
                    let cfg = RunConfig {
                        placement: placement.clone(),
                        engine: EngineMode::Upmlib(UpmOptions::default()),
                        ..RunConfig::paper_default()
                    };
                    let r = run_one(bench, Scale::Tiny, &cfg);
                    assert!(r.verification.passed);
                    black_box((r.total_secs, r.upm))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
