//! Figure 5 bench: the four first-touch configurations on BT (plain,
//! kernel migration, UPMlib, record-replay), regenerated at Tiny scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nas::{BenchName, EngineMode, RunConfig, Scale};
use std::hint::black_box;
use upmlib::UpmOptions;
use vmm::{KernelMigrationConfig, PlacementScheme};
use xp::run_one;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let engines = [
        EngineMode::None,
        EngineMode::IrixMig(KernelMigrationConfig::default()),
        EngineMode::Upmlib(UpmOptions::default()),
        EngineMode::RecRep(UpmOptions::default()),
    ];
    for engine in engines {
        let id = format!("bt-ft-{}", engine.label());
        group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
            b.iter(|| {
                let cfg = RunConfig {
                    placement: PlacementScheme::FirstTouch,
                    engine: engine.clone(),
                    ..RunConfig::paper_default()
                };
                let r = run_one(BenchName::Bt, Scale::Tiny, &cfg);
                assert!(r.verification.passed);
                black_box((r.total_secs, r.recrep_overhead_secs))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
