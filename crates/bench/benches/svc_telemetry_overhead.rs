//! Service-telemetry overhead on the server's per-request path.
//!
//! The contract (DESIGN.md §18): the tracing spans around every request
//! use the same gated profiler as the simulator, so with no `--spans`
//! session open a request pays only relaxed atomic loads for its spans —
//! `span_named/disabled` must not even build its name string. The
//! always-on metrics side (`inc`, `observe_us`, `request`) is a mutex
//! plus a map update per request — microseconds against a protocol
//! round-trip that costs milliseconds — and this bench keeps that cost
//! visible so regressions are caught before they reach the service.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use svc::telemetry::{RequestRecord, Telemetry, TraceCtx};

fn bench_telemetry_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("svc_telemetry");
    group.throughput(Throughput::Elements(1));

    // The per-request span, no session open: the near-zero-cost path the
    // server runs when started without `--spans`. The closure allocating
    // the trace-suffixed name must not run.
    group.bench_function("span_named/disabled", |b| {
        let trace = TraceCtx::fresh();
        b.iter(|| {
            let _hp = hostprof::span_named(|| format!("svc.run:{}", trace.trace_id));
            black_box(0u64)
        })
    });

    // The same span with a session open: name allocation + stack push/pop
    // + aggregate update, i.e. what `xp serve --spans DIR` pays.
    group.bench_function("span_named/enabled", |b| {
        let trace = TraceCtx::fresh();
        let session = hostprof::start();
        b.iter(|| {
            let _hp = hostprof::span_named(|| format!("svc.run:{}", trace.trace_id));
            black_box(0u64)
        });
        drop(session.finish());
    });

    // Always-on metrics: one counter bump, one histogram sample.
    group.bench_function("metrics/inc", |b| {
        let tel = Telemetry::new();
        b.iter(|| tel.inc(black_box("svc.cells.hit"), 1))
    });
    group.bench_function("metrics/observe_us", |b| {
        let tel = Telemetry::new();
        b.iter(|| tel.observe_us(black_box("svc.compute_us"), black_box(137)))
    });

    // The full request record: op counter + two latency histograms + a
    // bounded log-ring push (steady state, ring at capacity).
    group.bench_function("metrics/request", |b| {
        let tel = Telemetry::new();
        let trace = TraceCtx::fresh();
        b.iter(|| {
            tel.request(RequestRecord {
                trace_id: trace.trace_id.clone(),
                op: "run",
                ok: true,
                detail: "8 cells: 8 cached, 0 computed".into(),
                wall_secs: black_box(0.0042),
            })
        })
    });

    // Trace propagation: minting a context and the wire round-trip the
    // client and server each pay once per frame.
    group.bench_function("trace/fresh", |b| b.iter(|| black_box(TraceCtx::fresh())));
    group.bench_function("trace/json_roundtrip", |b| {
        let trace = TraceCtx::fresh();
        b.iter(|| {
            let json = trace.to_json();
            black_box(TraceCtx::from_json(&json).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_paths);
criterion_main!(benches);
