//! Microbenchmarks of the simulator's hot paths: the `touch` access
//! pipeline (L1 hit, L2 hit, memory+counter), page migration, and the
//! worksharing schedule dispatch — the components every experiment's host
//! runtime is made of.

use ccnuma::{AccessKind, Machine, MachineConfig, SimArray, PAGE_SIZE};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use omp::{Runtime, Schedule};
use std::hint::black_box;

fn bench_touch(c: &mut Criterion) {
    let mut group = c.benchmark_group("touch");
    group.throughput(Throughput::Elements(1));

    group.bench_function("l1_hit", |b| {
        let mut m = Machine::new(MachineConfig::origin2000_16p());
        m.touch(0, 0, AccessKind::Read);
        b.iter(|| black_box(m.touch(0, 0, AccessKind::Read)))
    });

    group.bench_function("memory_streaming", |b| {
        // Sweep a large range so most touches miss both caches.
        let mut m = Machine::new(MachineConfig::origin2000_16p_scaled());
        let span = 256 * PAGE_SIZE;
        let base = m.reserve_vspace(span);
        let mut addr = base;
        b.iter(|| {
            addr += 128;
            if addr >= base + span {
                addr = base;
            }
            black_box(m.touch(0, addr, AccessKind::Read))
        })
    });

    group.bench_function("write_with_coherence", |b| {
        let mut m = Machine::new(MachineConfig::origin2000_16p());
        let base = m.reserve_vspace(PAGE_SIZE);
        b.iter(|| black_box(m.touch(0, base, AccessKind::Write)))
    });
    group.finish();
}

fn bench_migration(c: &mut Criterion) {
    c.bench_function("page_migration", |b| {
        let mut m = Machine::new(MachineConfig::origin2000_16p());
        let base = m.reserve_vspace(PAGE_SIZE);
        m.touch(0, base, AccessKind::Read);
        let vp = ccnuma::vpage_of(base);
        let mut target = 1usize;
        b.iter(|| {
            target = (target % 7) + 1;
            black_box(m.migrate_page(vp, target).unwrap())
        })
    });
}

fn bench_parallel_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_for");
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic4", Schedule::Dynamic(4)),
        ("guided", Schedule::Guided(1)),
    ] {
        group.bench_function(name, |b| {
            let mut rt = Runtime::new(Machine::new(MachineConfig::origin2000_16p()));
            let a = SimArray::new(rt.machine_mut(), "a", 4096, 0.0f64);
            b.iter(|| {
                rt.parallel_for(4096, schedule, |par, i| {
                    par.update(&a, i, |v| v + 1.0);
                });
                black_box(rt.machine().clock().now_ns())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_touch, bench_migration, bench_parallel_for);
criterion_main!(benches);
