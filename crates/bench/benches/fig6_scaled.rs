//! Figure 6 bench: BT with synthetically lengthened phases under UPMlib vs
//! record-replay, regenerated at Tiny scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nas::{EngineMode, Scale};
use std::hint::black_box;
use upmlib::UpmOptions;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for phase_scale in [1usize, 4] {
        for (label, engine) in [
            ("upmlib", EngineMode::Upmlib(UpmOptions::default())),
            ("recrep", EngineMode::RecRep(UpmOptions::default())),
        ] {
            let id = format!("bt-{phase_scale}x-{label}");
            group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                b.iter(|| {
                    let r = xp::fig6::run_bt_at(Scale::Tiny, phase_scale, engine.clone());
                    assert!(r.verification.passed);
                    black_box(r.total_secs)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
