//! Table 2 bench: regenerates the residual-slowdown / first-invocation
//! statistics rows for one benchmark at Tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use nas::{BenchName, Scale};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("mg_rows", |b| {
        b.iter(|| {
            let rows = xp::table2::rows_for(BenchName::Mg, Scale::Tiny);
            assert_eq!(rows.len(), 3);
            for row in &rows {
                assert!(row.first_iter_fraction >= 0.0 && row.first_iter_fraction <= 1.0);
            }
            black_box(rows)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
