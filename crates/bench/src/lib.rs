//! The bench crate holds only Criterion benches; see `benches/`.
