//! The `/proc`-style user-level view of the hardware reference counters.
//!
//! Paper §3.1: *"The hardware counters attached to the physical memory
//! frames of the Origin2000 can be accessed via the /proc interface."*
//!
//! This module is the entire user/kernel information boundary of UPMlib:
//! user code may *read* per-page counters and homes through it, and nothing
//! else. Mutation goes through MLD migration requests, which the OS is free
//! to redirect.

use ccnuma::{Machine, NodeId};

/// Snapshot of one page's counters as user code sees them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageView {
    /// Virtual page number.
    pub vpage: u64,
    /// Node currently hosting the page.
    pub home: NodeId,
    /// Accesses from each node since the page last changed frames
    /// (kernel-extended values; the 11-bit hardware counters spill into
    /// software counters on overflow, as in IRIX).
    pub counts: Vec<u64>,
}

impl PageView {
    /// `(local, max_remote, argmax node)` — the competitive-criterion view.
    /// Remote ties break toward the lower node id.
    pub fn competitive_view(&self) -> (u64, u64, NodeId) {
        let local = self.counts[self.home];
        let mut best = 0u64;
        let mut best_node = self.home;
        for (n, &c) in self.counts.iter().enumerate() {
            if n != self.home && c > best {
                best = c;
                best_node = n;
            }
        }
        (local, best, best_node)
    }

    /// Total accesses recorded for the page.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Read-only accessor over the machine's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcCounters;

impl ProcCounters {
    /// Read the counters of one virtual page; `None` if unmapped.
    pub fn read(&self, machine: &Machine, vpage: u64) -> Option<PageView> {
        let frame = machine.frame_of(vpage)?;
        let home = machine.memory().node_of_frame(frame);
        Some(PageView {
            vpage,
            home,
            counts: machine.counters().snapshot(frame),
        })
    }

    /// Read every mapped page of a byte range.
    pub fn read_range(&self, machine: &Machine, base: u64, len: u64) -> Vec<PageView> {
        let first = ccnuma::vpage_of(base);
        let last = ccnuma::vpage_of(base + len.saturating_sub(1));
        (first..=last)
            .filter_map(|vp| self.read(machine, vp))
            .collect()
    }

    /// Zero the counters of one mapped page (UPMlib does this between
    /// observation windows; the hardware exposes counter reset to the OS).
    pub fn reset(&self, machine: &Machine, vpage: u64) -> bool {
        match machine.frame_of(vpage) {
            Some(frame) => {
                machine.counters().reset_frame(frame);
                true
            }
            None => false,
        }
    }

    /// Zero the counters of every mapped page in a byte range.
    pub fn reset_range(&self, machine: &Machine, base: u64, len: u64) {
        let first = ccnuma::vpage_of(base);
        let last = ccnuma::vpage_of(base + len.saturating_sub(1));
        for vp in first..=last {
            self.reset(machine, vp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{AccessKind, MachineConfig, PAGE_SIZE};

    #[test]
    fn reads_counts_and_home() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(PAGE_SIZE);
        // cpu0 (node0) faults it in, then cpu6 (node3) hammers it.
        m.touch(0, base, AccessKind::Read);
        for i in 0..5 {
            // Different lines so they all reach memory.
            m.touch(6, base + i * 128, AccessKind::Read);
        }
        let view = ProcCounters.read(&m, ccnuma::vpage_of(base)).unwrap();
        assert_eq!(view.home, 0);
        assert_eq!(view.counts[0], 1);
        // cpu6 hit line 0 from cache? No: cpu6 has its own cache, first
        // access of each line goes to memory.
        assert_eq!(view.counts[3], 5);
        let (local, rmax, rnode) = view.competitive_view();
        assert_eq!((local, rmax, rnode), (1, 5, 3));
        assert_eq!(view.total(), 6);
    }

    #[test]
    fn unmapped_reads_none() {
        let m = Machine::new(MachineConfig::tiny_test());
        assert!(ProcCounters.read(&m, 17).is_none());
    }

    #[test]
    fn reset_range_zeroes() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(2 * PAGE_SIZE);
        m.touch(0, base, AccessKind::Read);
        m.touch(0, base + PAGE_SIZE, AccessKind::Read);
        ProcCounters.reset_range(&m, base, 2 * PAGE_SIZE);
        for view in ProcCounters.read_range(&m, base, 2 * PAGE_SIZE) {
            assert_eq!(view.total(), 0);
        }
    }

    #[test]
    fn read_range_spans_partial_pages() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(2 * PAGE_SIZE);
        m.touch(0, base, AccessKind::Read);
        m.touch(0, base + PAGE_SIZE, AccessKind::Read);
        // A range that starts mid-page and ends mid-page still sees both.
        let views = ProcCounters.read_range(&m, base + 8, PAGE_SIZE);
        assert_eq!(views.len(), 2);
    }
}
