//! The IRIX kernel's competitive page-migration engine.
//!
//! Paper §2.1: *"The IRIX kernel includes a competitive page migration
//! engine which can be activated on a per-program basis by setting the
//! DSM_MIGRATION environment variable ... The additional circuitry detects
//! when the number of accesses from a remote node exceeds the number of
//! accesses from the node that hosts the page by more than a predefined
//! threshold and delivers an interrupt in that case. The interrupt handler
//! runs a page migration policy, which evaluates if migrating the page that
//! caused the interrupt satisfies a set of resource management constraints."*
//!
//! The real engine is interrupt-driven; the simulator evaluates candidates
//! when the `omp` runtime closes a parallel region (the granularity at which
//! simulated time advances — a documented approximation in DESIGN.md). The
//! policy itself is faithful:
//!
//! * **trigger** — `max_remote > local + threshold` on the page's hardware
//!   counters;
//! * **constraints** — per-page dampening (a page recently migrated is left
//!   alone for a few regions), a bound on migrations per scan (the daemon's
//!   bounded work), and memory availability (the machine's best-effort
//!   allocator);
//! * **aging** — counters decay geometrically each scan so the comparison
//!   reflects recent behaviour;
//! * **cost** — every migration pays the full coherent-movement price
//!   (page copy + machine-wide TLB shootdown), charged to the simulated
//!   clock by the machine.

use ccnuma::Machine;
use std::collections::HashMap;

/// Tunables of the kernel engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMigrationConfig {
    /// A remote node must beat the home node by this many counted accesses
    /// to trigger the migration interrupt.
    pub threshold: u16,
    /// Competitive factor: the winning remote node must additionally have
    /// at least `competitive_factor * local` accesses (the Black–Sleator
    /// flavour of the FLASH/IRIX policy). Keeps genuinely shared pages —
    /// where local and remote traffic are comparable — in place, which is
    /// why the paper measures the IRIX engine as a near-no-op under
    /// first-touch.
    pub competitive_factor: f64,
    /// Simulated time a freshly migrated page is exempt from re-evaluation.
    pub dampening_ns: f64,
    /// Upper bound on migrations performed per scan.
    pub max_per_scan: usize,
    /// Whether counters decay (halve) after each scan.
    pub aging: bool,
    /// The daemon wakes up once per this much *simulated* time (the real
    /// IRIX daemon is time-periodic, not per-construct).
    pub scan_period_ns: f64,
}

impl Default for KernelMigrationConfig {
    fn default() -> Self {
        Self {
            threshold: 64,
            competitive_factor: 2.0,
            dampening_ns: 40e6,
            max_per_scan: 6,
            aging: true,
            scan_period_ns: 4e6,
        }
    }
}

/// Per-run statistics of the kernel engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelMigrationStats {
    /// Scans performed.
    pub scans: u64,
    /// Pages migrated.
    pub migrations: u64,
    /// Candidates suppressed by dampening.
    pub dampened: u64,
    /// Candidates dropped by the per-scan bound.
    pub truncated: u64,
}

/// The engine itself. One instance per run; driven by the runtime at region
/// boundaries via [`KernelMigrationEngine::scan`].
#[derive(Debug)]
pub struct KernelMigrationEngine {
    config: KernelMigrationConfig,
    enabled: bool,
    last_scan_ns: f64,
    last_migrated_ns: HashMap<u64, f64>,
    stats: KernelMigrationStats,
}

impl KernelMigrationEngine {
    /// A disabled engine (the `DSM_MIGRATION=OFF` default).
    pub fn disabled() -> Self {
        Self::new(KernelMigrationConfig::default(), false)
    }

    /// An enabled engine with the given tunables.
    pub fn enabled(config: KernelMigrationConfig) -> Self {
        Self::new(config, true)
    }

    fn new(config: KernelMigrationConfig, enabled: bool) -> Self {
        Self {
            config,
            enabled,
            last_scan_ns: 0.0,
            last_migrated_ns: HashMap::new(),
            stats: KernelMigrationStats::default(),
        }
    }

    /// Whether the engine is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Statistics so far.
    pub fn stats(&self) -> KernelMigrationStats {
        self.stats
    }

    /// Evaluate every mapped page and migrate the qualifying ones. Called by
    /// the runtime after each parallel region; acts only on every
    /// `scan_interval`-th call (the daemon's period). Returns the number of
    /// pages migrated.
    pub fn scan(&mut self, machine: &mut Machine) -> usize {
        if !self.enabled {
            return 0;
        }
        let now = machine.clock().now_ns();
        if now - self.last_scan_ns < self.config.scan_period_ns {
            return 0;
        }
        let _hp = hostprof::span_hot("vmm.kernel_scan");
        self.last_scan_ns = now;
        self.stats.scans += 1;
        // Collect candidates: (priority, vpage, target-node).
        let mut candidates: Vec<(u64, u64, usize)> = Vec::new();
        let mut dampened = 0u64;
        let mut scanned = 0usize;
        for (vpage, frame) in machine.mapped_pages() {
            scanned += 1;
            let home = machine.memory().node_of_frame(frame);
            let (local, rmax, rnode) = machine.counters().competitive_view(frame, home);
            let crosses = rmax > local.saturating_add(self.config.threshold as u64);
            let competitive = rmax as f64 > self.config.competitive_factor * local as f64;
            if crosses && competitive {
                if let Some(&when) = self.last_migrated_ns.get(&vpage) {
                    if now - when <= self.config.dampening_ns {
                        dampened += 1;
                        continue;
                    }
                }
                candidates.push((rmax - local, vpage, rnode));
            }
        }
        self.stats.dampened += dampened;
        // Strongest imbalance first; ties break by vpage for determinism.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        if candidates.len() > self.config.max_per_scan {
            self.stats.truncated += (candidates.len() - self.config.max_per_scan) as u64;
            candidates.truncate(self.config.max_per_scan);
        }
        let mut migrated = 0;
        for (_, vpage, target) in candidates {
            if machine.migrate_page(vpage, target).is_ok() {
                self.last_migrated_ns.insert(vpage, now);
                migrated += 1;
            }
        }
        machine.trace_event(|| obs::EventKind::KernelScan { scanned, migrated });
        machine.trace_mut().inc("kernel_scans", 1);
        if self.config.aging {
            let frames: Vec<_> = machine.mapped_pages().map(|(_, f)| f).collect();
            for frame in frames {
                machine.counters().decay_frame(frame);
            }
        }
        self.stats.migrations += migrated as u64;
        migrated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{AccessKind, MachineConfig, PAGE_SIZE};

    fn hammer_remote(machine: &mut Machine, base: u64, times: u64) {
        // cpu6 lives on node 3 in the tiny 4x2 topology; stride over whole
        // pages' lines so every access reaches memory.
        for t in 0..times {
            for line in 0..(PAGE_SIZE / 128) {
                machine.touch(6, base + line * 128, AccessKind::Read);
                // Re-write from cpu0 occasionally so nothing stays cached?
                // Not needed: cpu6's own cache is bypassed by distinct lines
                // only on the first sweep; write to force version bumps.
                machine.touch(6, base + line * 128, AccessKind::Write);
            }
            let _ = t;
        }
    }

    #[test]
    fn disabled_engine_never_migrates() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(PAGE_SIZE);
        m.touch(0, base, AccessKind::Read); // home = node 0
        hammer_remote(&mut m, base, 3);
        let mut engine = KernelMigrationEngine::disabled();
        assert_eq!(engine.scan(&mut m), 0);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(0));
    }

    #[test]
    fn migrates_remotely_hammered_page() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(PAGE_SIZE);
        m.touch(0, base, AccessKind::Read); // first-touch: node 0
        hammer_remote(&mut m, base, 3); // node 3 dominates
        let mut engine = KernelMigrationEngine::enabled(KernelMigrationConfig {
            threshold: 16,
            scan_period_ns: 0.0,
            ..Default::default()
        });
        let moved = engine.scan(&mut m);
        assert_eq!(moved, 1);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(3));
        assert_eq!(engine.stats().migrations, 1);
    }

    #[test]
    fn threshold_suppresses_weak_imbalance() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(PAGE_SIZE);
        m.touch(0, base, AccessKind::Read);
        // Only a handful of remote accesses: below threshold.
        for line in 0..4 {
            m.touch(6, base + line * 128, AccessKind::Read);
        }
        let mut engine = KernelMigrationEngine::enabled(KernelMigrationConfig {
            threshold: 64,
            scan_period_ns: 0.0,
            ..Default::default()
        });
        assert_eq!(engine.scan(&mut m), 0);
    }

    #[test]
    fn dampening_blocks_immediate_remigration() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(PAGE_SIZE);
        m.touch(0, base, AccessKind::Read);
        let mut engine = KernelMigrationEngine::enabled(KernelMigrationConfig {
            threshold: 16,
            dampening_ns: 1e15,
            scan_period_ns: 0.0,
            ..Default::default()
        });
        hammer_remote(&mut m, base, 2);
        assert_eq!(engine.scan(&mut m), 1); // -> node 3
                                            // Now node 0 hammers it back hard; dampening must hold it on node 3.
        for line in 0..(PAGE_SIZE / 128) {
            m.touch(0, base + line * 128, AccessKind::Write);
            m.touch(0, base + line * 128, AccessKind::Read);
        }
        assert_eq!(engine.scan(&mut m), 0);
        assert!(engine.stats().dampened >= 1);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(3));
    }

    #[test]
    fn per_scan_bound_truncates() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(4 * PAGE_SIZE);
        for p in 0..4 {
            m.touch(0, base + p * PAGE_SIZE, AccessKind::Read);
        }
        for p in 0..4 {
            hammer_remote(&mut m, base + p * PAGE_SIZE, 2);
        }
        let mut engine = KernelMigrationEngine::enabled(KernelMigrationConfig {
            threshold: 16,
            max_per_scan: 2,
            scan_period_ns: 0.0,
            ..Default::default()
        });
        assert_eq!(engine.scan(&mut m), 2);
        assert!(engine.stats().truncated >= 2);
    }
}
