//! Memory Locality Domains — the IRIX `mmci` user-level placement API.
//!
//! Paper §2.1: *"IRIX enables the user to virtualize the physical memory of
//! the system and use a namespace for placing virtual memory pages to
//! specific nodes in the system. The namespace is composed of entities
//! called Memory Locality Domains (MLDs). A MLD is the abstract
//! representation of the physical memory of a node in the system. The user
//! can associate one MLD with each node and then place or migrate pages
//! between MLDs to implement application-specific memory management
//! schemes."*
//!
//! This is the only OS service UPMlib needs for *moving* pages (it reads
//! counters through [`crate::procfs`]). Placement/migration through an MLD
//! is **best-effort**: if the target node is out of memory, "IRIX ... forwards
//! the page to another node as physically close as possible to the target
//! node" — the machine's allocator implements exactly that, and the return
//! value reports where the page actually landed.

use ccnuma::machine::MemError;
use ccnuma::{Machine, NodeId};

/// One MLD: a handle on the physical memory of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mld {
    node: NodeId,
}

impl Mld {
    /// The node this MLD represents.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// The per-process MLD namespace: one MLD per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MldSet {
    mlds: Vec<Mld>,
}

impl MldSet {
    /// Create the full namespace for a machine (one MLD per node, as the
    /// paper's runtime does).
    pub fn for_machine(machine: &Machine) -> Self {
        Self {
            mlds: (0..machine.topology().nodes())
                .map(|node| Mld { node })
                .collect(),
        }
    }

    /// Number of MLDs (= nodes).
    pub fn len(&self) -> usize {
        self.mlds.len()
    }

    /// Whether the namespace is empty (never, for a real machine).
    pub fn is_empty(&self) -> bool {
        self.mlds.is_empty()
    }

    /// MLD handle for a node.
    pub fn mld(&self, node: NodeId) -> Mld {
        self.mlds[node]
    }

    /// Place an *unmapped* virtual page onto an MLD (used by the paper's
    /// SIGSEGV-handler emulation of random placement). Best-effort; returns
    /// the node actually used.
    pub fn place_page(
        &self,
        machine: &mut Machine,
        vpage: u64,
        mld: Mld,
    ) -> Result<NodeId, MemError> {
        machine.map_page(vpage, mld.node)
    }

    /// Migrate a mapped virtual page to an MLD. Best-effort; returns the
    /// node actually used. The full coherent-migration cost (page copy +
    /// TLB shootdown on every CPU) is charged to the simulated clock.
    pub fn migrate_page(
        &self,
        machine: &mut Machine,
        vpage: u64,
        mld: Mld,
    ) -> Result<NodeId, MemError> {
        machine.migrate_page(vpage, mld.node)
    }

    /// Migrate every mapped page of a byte range to an MLD; unmapped pages
    /// are skipped. Returns the number of pages moved.
    pub fn migrate_range(
        &self,
        machine: &mut Machine,
        base: u64,
        len: u64,
        mld: Mld,
    ) -> Result<usize, MemError> {
        let first = ccnuma::vpage_of(base);
        let last = ccnuma::vpage_of(base + len.saturating_sub(1));
        let mut moved = 0;
        for vp in first..=last {
            match machine.migrate_page(vp, mld.node) {
                Ok(_) => moved += 1,
                Err(MemError::Unmapped) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{AccessKind, MachineConfig, PAGE_SIZE};

    #[test]
    fn namespace_covers_all_nodes() {
        let m = Machine::new(MachineConfig::tiny_test());
        let mlds = MldSet::for_machine(&m);
        assert_eq!(mlds.len(), 4);
        assert_eq!(mlds.mld(3).node(), 3);
    }

    #[test]
    fn place_and_migrate_through_mlds() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let mlds = MldSet::for_machine(&m);
        assert_eq!(mlds.place_page(&mut m, 5, mlds.mld(1)), Ok(1));
        assert_eq!(m.node_of_vpage(5), Some(1));
        assert_eq!(mlds.migrate_page(&mut m, 5, mlds.mld(3)), Ok(3));
        assert_eq!(m.node_of_vpage(5), Some(3));
    }

    #[test]
    fn migrate_range_skips_unmapped() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let mlds = MldSet::for_machine(&m);
        let base = m.reserve_vspace(4 * PAGE_SIZE);
        // Map only pages 0 and 2 of the range by touching them.
        m.touch(0, base, AccessKind::Read);
        m.touch(0, base + 2 * PAGE_SIZE, AccessKind::Read);
        let moved = mlds
            .migrate_range(&mut m, base, 4 * PAGE_SIZE, mlds.mld(2))
            .unwrap();
        assert_eq!(moved, 2);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(2));
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base) + 1), None);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base) + 2), Some(2));
    }
}
