//! The four page-placement schemes of the paper's sensitivity study, plus
//! a fifth the paper could not run: a statically synthesized placement.
//!
//! Paper §2.1: *"Assuming that first-touch is the best page placement
//! strategy for the benchmarks, we ran the codes using three alternative
//! page placement schemes, namely round-robin, random and worst-case page
//! placement."*
//!
//! * **First-touch** — each page lands on the node of the first CPU to touch
//!   it (IRIX default; the NAS codes run a discarded cold-start iteration to
//!   exploit it).
//! * **Round-robin** — pages are dealt to nodes cyclically in fault order
//!   (IRIX `DSM_PLACEMENT=ROUND_ROBIN`).
//! * **Random** — each page lands on a uniformly random node. The paper
//!   emulated this with an `mprotect(PROT_NONE)` + SIGSEGV handler placing
//!   pages through MLDs; in the simulator the fault hook *is* programmable,
//!   so the policy is expressed directly. Seeded, hence reproducible.
//! * **Worst-case** — every page lands on a single node, "the allocation
//!   performed by a buddy system which would allocate the pages with a
//!   best-fit strategy on a node with sufficient free memory". Maximizes
//!   both remote accesses and contention.
//! * **Static** — an explicit page→node map synthesized offline from the
//!   kernels' access models (`lint::synth`); pages outside the map fall
//!   back to first-touch. The head-to-head the paper left open: does
//!   dynamic migration still matter when a compiler-style tool hands the
//!   OS the right initial distribution for free?

use ccnuma::machine::Placer;
use ccnuma::{CpuId, Machine, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An explicit, immutable page→node assignment for the static scheme.
///
/// The fingerprint is computed once from the full content (FNV-1a over the
/// sorted `(vpage, node)` pairs), so two maps compare equal exactly when
/// they place every page identically; the `Debug` form is compact (length
/// plus fingerprint) because run-configuration fingerprints hash the
/// `Debug` output of everything they contain.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StaticMap {
    pages: BTreeMap<u64, NodeId>,
    fingerprint: String,
}

impl StaticMap {
    /// Build a map from explicit `vpage → node` assignments.
    pub fn new(pages: BTreeMap<u64, NodeId>) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (&vpage, &node) in &pages {
            eat(vpage);
            eat(node as u64);
        }
        Self {
            pages,
            fingerprint: format!("{h:016x}"),
        }
    }

    /// The node assigned to `vpage`, if the map covers it.
    pub fn node_of(&self, vpage: u64) -> Option<NodeId> {
        self.pages.get(&vpage).copied()
    }

    /// Number of pages the map assigns.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the map assigns nothing.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The content fingerprint (16 hex chars), stable across processes.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The full assignment, sorted by vpage.
    pub fn pages(&self) -> &BTreeMap<u64, NodeId> {
        &self.pages
    }
}

impl std::fmt::Debug for StaticMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StaticMap {{ pages: {}, fp: {} }}",
            self.pages.len(),
            self.fingerprint
        )
    }
}

/// Which placement scheme to install — the experiment-level knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementScheme {
    /// IRIX default: place on the faulting CPU's node.
    FirstTouch,
    /// Deal pages to nodes cyclically.
    RoundRobin,
    /// Uniform random node, from the given seed.
    Random {
        /// RNG seed (fixed seeds keep experiments reproducible).
        seed: u64,
    },
    /// All pages on one node (buddy-allocator behaviour).
    WorstCase {
        /// The node that receives everything.
        node: NodeId,
    },
    /// Explicit synthesized placement; unmapped pages fall back to
    /// first-touch. Shared via `Arc`: one synthesized map serves every run
    /// configuration cloned from it.
    Static {
        /// The page→node map to install.
        map: Arc<StaticMap>,
    },
}

impl PlacementScheme {
    /// Short label used in experiment output, matching the paper's figure
    /// labels (`ft-`, `rr-`, `rand-`, `wc-`).
    pub fn label(&self) -> &'static str {
        match self {
            PlacementScheme::FirstTouch => "ft",
            PlacementScheme::RoundRobin => "rr",
            PlacementScheme::Random { .. } => "rand",
            PlacementScheme::WorstCase { .. } => "wc",
            PlacementScheme::Static { .. } => "static",
        }
    }

    /// All four schemes with defaults, in the paper's figure order.
    pub fn all(seed: u64) -> [PlacementScheme; 4] {
        [
            PlacementScheme::FirstTouch,
            PlacementScheme::RoundRobin,
            PlacementScheme::Random { seed },
            PlacementScheme::WorstCase { node: 0 },
        ]
    }
}

/// Install the chosen scheme as the machine's fault-time placer.
pub fn install_placement(machine: &mut Machine, scheme: PlacementScheme) {
    let placer: Box<dyn Placer> = match scheme {
        PlacementScheme::FirstTouch => Box::new(FirstTouch),
        PlacementScheme::RoundRobin => Box::new(RoundRobin {
            next: 0,
            nodes: machine.topology().nodes(),
        }),
        PlacementScheme::Random { seed } => Box::new(RandomPlace {
            rng: SmallRng::seed_from_u64(seed),
            nodes: machine.topology().nodes(),
        }),
        PlacementScheme::WorstCase { node } => {
            assert!(node < machine.topology().nodes());
            Box::new(WorstCase { node })
        }
        PlacementScheme::Static { map } => {
            let nodes = machine.topology().nodes();
            assert!(
                map.pages().values().all(|&n| n < nodes),
                "static map assigns a node beyond the machine's {nodes}"
            );
            Box::new(StaticPlace { map })
        }
    };
    machine.set_placer(placer);
}

#[derive(Debug, Clone, Copy)]
struct FirstTouch;

impl Placer for FirstTouch {
    fn place(&mut self, _vpage: u64, _cpu: CpuId, cpu_node: NodeId) -> NodeId {
        cpu_node
    }

    fn name(&self) -> &'static str {
        "first-touch"
    }
}

#[derive(Debug, Clone, Copy)]
struct RoundRobin {
    next: NodeId,
    nodes: usize,
}

impl Placer for RoundRobin {
    fn place(&mut self, _vpage: u64, _cpu: CpuId, _cpu_node: NodeId) -> NodeId {
        let n = self.next;
        self.next = (self.next + 1) % self.nodes;
        n
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

struct RandomPlace {
    rng: SmallRng,
    nodes: usize,
}

impl Placer for RandomPlace {
    fn place(&mut self, _vpage: u64, _cpu: CpuId, _cpu_node: NodeId) -> NodeId {
        self.rng.gen_range(0..self.nodes)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[derive(Debug, Clone, Copy)]
struct WorstCase {
    node: NodeId,
}

impl Placer for WorstCase {
    fn place(&mut self, _vpage: u64, _cpu: CpuId, _cpu_node: NodeId) -> NodeId {
        self.node
    }

    fn name(&self) -> &'static str {
        "worst-case"
    }
}

#[derive(Debug)]
struct StaticPlace {
    map: Arc<StaticMap>,
}

impl Placer for StaticPlace {
    fn place(&mut self, vpage: u64, _cpu: CpuId, cpu_node: NodeId) -> NodeId {
        // Pages the synthesis never saw (runtime scratch, reductions)
        // behave like first-touch.
        self.map.node_of(vpage).unwrap_or(cpu_node)
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{AccessKind, MachineConfig, PAGE_SIZE};

    fn touch_pages(machine: &mut Machine, cpu: CpuId, pages: usize) -> Vec<NodeId> {
        (0..pages)
            .map(|_| {
                let addr = machine.reserve_vspace(PAGE_SIZE);
                machine.touch(cpu, addr, AccessKind::Read);
                machine.node_of_vpage(addr >> ccnuma::PAGE_SHIFT).unwrap()
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::RoundRobin);
        let homes = touch_pages(&mut m, 0, 8);
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn worst_case_stacks_one_node() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::WorstCase { node: 2 });
        let homes = touch_pages(&mut m, 0, 6);
        assert!(homes.iter().all(|&n| n == 2));
    }

    #[test]
    fn random_is_seeded_and_reasonably_balanced() {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig::tiny_test());
            install_placement(&mut m, PlacementScheme::Random { seed });
            touch_pages(&mut m, 0, 64)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same placement");
        let c = run(7);
        assert_ne!(a, c, "different seeds should differ");
        // Balance: every node gets something out of 64 pages over 4 nodes.
        for node in 0..4 {
            let got = a.iter().filter(|&&n| n == node).count();
            assert!(got > 0, "node {node} starved: {a:?}");
        }
    }

    #[test]
    fn first_touch_follows_the_faulting_cpu() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::FirstTouch);
        let a = m.reserve_vspace(PAGE_SIZE);
        let b = m.reserve_vspace(PAGE_SIZE);
        m.touch(0, a, AccessKind::Read); // cpu0 -> node0
        m.touch(7, b, AccessKind::Read); // cpu7 -> node3
        assert_eq!(m.node_of_vpage(a >> ccnuma::PAGE_SHIFT), Some(0));
        assert_eq!(m.node_of_vpage(b >> ccnuma::PAGE_SHIFT), Some(3));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PlacementScheme::FirstTouch.label(), "ft");
        assert_eq!(PlacementScheme::RoundRobin.label(), "rr");
        assert_eq!(PlacementScheme::Random { seed: 0 }.label(), "rand");
        assert_eq!(PlacementScheme::WorstCase { node: 0 }.label(), "wc");
        let map = Arc::new(StaticMap::new(BTreeMap::new()));
        assert_eq!(PlacementScheme::Static { map }.label(), "static");
    }

    #[test]
    fn static_map_places_mapped_pages_and_falls_back_to_first_touch() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = m.reserve_vspace(PAGE_SIZE);
        let b = m.reserve_vspace(PAGE_SIZE);
        let map = StaticMap::new([(a >> ccnuma::PAGE_SHIFT, 3usize)].into_iter().collect());
        install_placement(&mut m, PlacementScheme::Static { map: Arc::new(map) });
        m.touch(0, a, AccessKind::Read); // mapped: node 3 regardless of cpu
        m.touch(0, b, AccessKind::Read); // unmapped: first-touch (cpu0 -> node0)
        assert_eq!(m.node_of_vpage(a >> ccnuma::PAGE_SHIFT), Some(3));
        assert_eq!(m.node_of_vpage(b >> ccnuma::PAGE_SHIFT), Some(0));
    }

    #[test]
    fn static_map_fingerprint_tracks_content() {
        let m1 = StaticMap::new([(1u64, 0usize), (2, 1)].into_iter().collect());
        let m2 = StaticMap::new([(1u64, 0usize), (2, 1)].into_iter().collect());
        let m3 = StaticMap::new([(1u64, 0usize), (2, 2)].into_iter().collect());
        assert_eq!(m1.fingerprint(), m2.fingerprint());
        assert_ne!(m1.fingerprint(), m3.fingerprint());
        assert_eq!(m1.fingerprint().len(), 16);
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
        // Debug stays compact: fingerprints of run configurations hash it.
        let dbg = format!("{m1:?}");
        assert!(dbg.contains(m1.fingerprint()), "{dbg}");
        assert!(dbg.len() < 64, "{dbg}");
    }
}
