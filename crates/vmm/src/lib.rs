//! An IRIX-like virtual memory subsystem for the simulated ccNUMA machine.
//!
//! This crate is the *policy* layer over the `ccnuma` mechanism crate,
//! reproducing the pieces of cellular IRIX the paper exercises:
//!
//! * [`placement`] — the four page-placement schemes of the paper's
//!   sensitivity study (§2): first-touch (IRIX's default), round-robin
//!   (IRIX `DSM_PLACEMENT=ROUND_ROBIN`), random (emulated in the paper with
//!   `mprotect`/SIGSEGV + MLDs), and worst-case (the placement a best-fit
//!   buddy allocator produces: every page on one node).
//! * [`mld`] — Memory Locality Domains, the IRIX `mmci` user-level placement
//!   and migration namespace that makes a *user-level* page migration engine
//!   possible at all.
//! * [`kernel_migrate`] — the IRIX kernel's competitive page-migration
//!   engine (`DSM_MIGRATION=ON`), modeled after the FLASH/Verghese scheme
//!   the paper describes: per-page counter comparison against a threshold,
//!   with resource-management constraints and TLB-shootdown costs.
//! * [`procfs`] — the read-only `/proc` view of the per-frame hardware
//!   reference counters, which is how user-level code (UPMlib) observes the
//!   machine.

pub mod kernel_migrate;
pub mod mld;
pub mod placement;
pub mod procfs;

pub use kernel_migrate::{KernelMigrationConfig, KernelMigrationEngine};
pub use mld::MldSet;
pub use placement::{install_placement, PlacementScheme, StaticMap};
pub use procfs::{PageView, ProcCounters};
