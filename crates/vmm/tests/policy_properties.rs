//! Property-based tests of the VM policy layer.

use ccnuma::{AccessKind, Machine, MachineConfig, PAGE_SIZE};
use proptest::prelude::*;
use vmm::{install_placement, KernelMigrationConfig, KernelMigrationEngine, PlacementScheme};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-robin placement never lets any node get more than one page
    /// ahead of any other, for any fault order.
    #[test]
    fn round_robin_is_maximally_balanced(
        fault_cpus in proptest::collection::vec(0usize..8, 1..64),
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::RoundRobin);
        let base = m.reserve_vspace(fault_cpus.len() as u64 * PAGE_SIZE);
        for (p, &cpu) in fault_cpus.iter().enumerate() {
            m.touch(cpu, base + p as u64 * PAGE_SIZE, AccessKind::Read);
        }
        let mut per_node = vec![0i64; 4];
        for p in 0..fault_cpus.len() as u64 {
            per_node[m.node_of_vpage(ccnuma::vpage_of(base) + p).unwrap()] += 1;
        }
        let max = per_node.iter().max().unwrap();
        let min = per_node.iter().min().unwrap();
        prop_assert!(max - min <= 1, "{per_node:?}");
    }

    /// First-touch always places on the faulting CPU's node (when memory is
    /// available there).
    #[test]
    fn first_touch_places_on_the_faulting_node(
        fault_cpus in proptest::collection::vec(0usize..8, 1..64),
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::FirstTouch);
        let base = m.reserve_vspace(fault_cpus.len() as u64 * PAGE_SIZE);
        for (p, &cpu) in fault_cpus.iter().enumerate() {
            m.touch(cpu, base + p as u64 * PAGE_SIZE, AccessKind::Read);
            let home = m.node_of_vpage(ccnuma::vpage_of(base) + p as u64).unwrap();
            prop_assert_eq!(home, m.topology().node_of_cpu(cpu));
        }
    }

    /// Whatever the traffic, the kernel engine respects its per-scan bound
    /// and only moves pages toward nodes that dominate them competitively.
    #[test]
    fn kernel_engine_moves_are_justified(
        traffic in proptest::collection::vec((0usize..8, 0usize..6, 0u64..128), 1..400),
        max_per_scan in 1usize..8,
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::WorstCase { node: 0 });
        let base = m.reserve_vspace(6 * PAGE_SIZE);
        for &(cpu, page, line) in &traffic {
            m.touch(cpu, base + page as u64 * PAGE_SIZE + line * 128, AccessKind::Read);
        }
        // Snapshot the competitive view before the scan.
        let factor = 2.0;
        let mut justified = std::collections::HashMap::new();
        for (vpage, frame) in m.mapped_pages() {
            let home = m.memory().node_of_frame(frame);
            let (local, rmax, rnode) = m.counters().competitive_view(frame, home);
            if rmax > local.saturating_add(64) && rmax as f64 > factor * local as f64 {
                justified.insert(vpage, rnode);
            }
        }
        let before: std::collections::HashMap<u64, usize> = m
            .mapped_pages()
            .map(|(vp, f)| (vp, m.memory().node_of_frame(f)))
            .collect();
        let mut engine = KernelMigrationEngine::enabled(KernelMigrationConfig {
            threshold: 64,
            max_per_scan,
            scan_period_ns: 0.0,
            ..Default::default()
        });
        let moved = engine.scan(&mut m);
        prop_assert!(moved <= max_per_scan);
        for (vp, f) in m.mapped_pages() {
            let now = m.memory().node_of_frame(f);
            if now != before[&vp] {
                prop_assert_eq!(
                    Some(&now),
                    justified.get(&vp),
                    "page {} moved without competitive justification",
                    vp
                );
            }
        }
    }

    /// A disabled engine is a strict no-op on placement, for any traffic.
    #[test]
    fn disabled_engine_never_changes_placement(
        traffic in proptest::collection::vec((0usize..8, 0usize..4, 0u64..128), 1..200),
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let base = m.reserve_vspace(4 * PAGE_SIZE);
        for &(cpu, page, line) in &traffic {
            m.touch(cpu, base + page as u64 * PAGE_SIZE + line * 128, AccessKind::Write);
        }
        let before: Vec<_> = m.mapped_pages().collect();
        let mut engine = KernelMigrationEngine::disabled();
        for _ in 0..5 {
            prop_assert_eq!(engine.scan(&mut m), 0);
        }
        let after: Vec<_> = m.mapped_pages().collect();
        prop_assert_eq!(before, after);
    }

    /// Random placement distributes pages over all nodes for large counts,
    /// regardless of who faults them.
    #[test]
    fn random_placement_touches_every_node(seed in any::<u64>()) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::Random { seed });
        let pages = 48u64;
        let base = m.reserve_vspace(pages * PAGE_SIZE);
        for p in 0..pages {
            m.touch(0, base + p * PAGE_SIZE, AccessKind::Read);
        }
        let mut seen = [false; 4];
        for p in 0..pages {
            seen[m.node_of_vpage(ccnuma::vpage_of(base) + p).unwrap()] = true;
        }
        // With 48 pages over 4 nodes, every node is hit with probability
        // 1 - (3/4)^48 per node; treat a miss as a real failure.
        prop_assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
