//! Protocol error paths and telemetry ops, end to end over real sockets.
//!
//! The contract under test: every malformed input — bad JSON, unknown op,
//! a stream truncated mid-`run`, a version-mismatched hello — produces a
//! *typed* error (an `error` event on the wire, or a typed `Err` on the
//! client) and never a hang or a silent close; and the telemetry surface
//! (`stats.runs_failed`, the `metrics` and `log` ops) sees what happened.

use obs::json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use svc::server::{Compute, Server};
use svc::{Cache, CellSpec, Client};

fn spec(bench: &str, seed: u64) -> CellSpec {
    CellSpec {
        bench: bench.into(),
        placement: "rand".into(),
        placement_fp: String::new(),
        engine: "upmlib".into(),
        scale: "tiny".into(),
        seed,
        variant: String::new(),
        config_fp: "fefefefefefefefe".into(),
        code_version: "test-code".into(),
    }
}

/// Start a server whose compute panics for bench `boom`, refuses bench
/// `refuse`, and answers everything else.
fn start(tag: &str) -> (Client, std::thread::JoinHandle<()>) {
    let compute: Compute = Arc::new(|spec: &CellSpec| match spec.bench.as_str() {
        "boom" => panic!("cell exploded on purpose"),
        "refuse" => Err("spec refused on purpose".to_string()),
        _ => Ok(Value::object(vec![("seed", spec.seed.into())])),
    });
    let root =
        std::env::temp_dir().join(format!("ddnomp-proto-errors-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = Server::bind("127.0.0.1:0", 2, Cache::new(root), compute, "test-code").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let join = std::thread::spawn(move || server.run().unwrap());
    (Client::new(&addr, "test-code"), join)
}

/// Open a raw protocol connection: consume the hello, return the pair.
fn raw_connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    let hello = Value::parse(hello.trim()).unwrap();
    assert_eq!(hello["event"].as_str(), Some("hello"));
    (reader, stream)
}

fn read_event(reader: &mut BufReader<TcpStream>) -> Value {
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap();
    assert!(n > 0, "server closed instead of answering");
    Value::parse(line.trim()).unwrap()
}

#[test]
fn malformed_json_yields_typed_error_and_keeps_the_connection() {
    let (client, join) = start("badjson");
    let (mut reader, mut stream) = raw_connect(client.addr());
    writeln!(stream, "{{this is not json").unwrap();
    let event = read_event(&mut reader);
    assert_eq!(event["event"].as_str(), Some("error"));
    assert!(
        event["message"]
            .as_str()
            .unwrap()
            .contains("bad request JSON"),
        "{event}"
    );
    // Same connection still serves well-formed requests.
    writeln!(stream, "{{\"op\":\"ping\"}}").unwrap();
    assert_eq!(read_event(&mut reader)["event"].as_str(), Some("pong"));
    // Close the raw connection before shutdown: the server joins its
    // connection threads, and ours lives until this stream closes.
    drop((reader, stream));
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn unknown_and_missing_ops_yield_typed_errors() {
    let (client, join) = start("unknownop");
    let (mut reader, mut stream) = raw_connect(client.addr());
    writeln!(stream, "{{\"op\":\"frobnicate\"}}").unwrap();
    let event = read_event(&mut reader);
    assert_eq!(event["event"].as_str(), Some("error"));
    assert!(event["message"].as_str().unwrap().contains("frobnicate"));
    writeln!(stream, "{{\"payload\":1}}").unwrap();
    let event = read_event(&mut reader);
    assert_eq!(event["event"].as_str(), Some("error"));
    assert!(event["message"].as_str().unwrap().contains("unknown op"));
    // A run frame without cells is an error event too, not a stream.
    writeln!(stream, "{{\"op\":\"run\"}}").unwrap();
    let event = read_event(&mut reader);
    assert_eq!(event["event"].as_str(), Some("error"));
    assert!(event["message"].as_str().unwrap().contains("cells"));
    drop((reader, stream));
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn truncated_stream_mid_run_does_not_wedge_the_server() {
    let (client, join) = start("truncated");
    {
        let (_reader, mut stream) = raw_connect(client.addr());
        // Half a run request, no newline — then the client vanishes.
        write!(stream, "{{\"op\":\"run\",\"cells\":[").unwrap();
        stream.flush().unwrap();
        drop(stream);
    }
    // The server must shrug that connection off and keep serving.
    assert!(client.ping(), "server wedged after a truncated stream");
    let outcomes = client.run_cells(&[spec("cg", 1)], |_| {}).unwrap();
    assert!(outcomes[0].result.is_ok());
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn version_mismatch_hello_is_a_typed_client_error() {
    let (client, join) = start("vermismatch");
    let wrong = Client::new(client.addr(), "some-other-build");
    assert!(!wrong.ping());
    let err = wrong.run_cells(&[spec("cg", 1)], |_| {}).unwrap_err();
    assert!(err.contains("code version mismatch"), "{err}");
    let err = wrong.metrics(false).unwrap_err();
    assert!(err.contains("code version mismatch"), "{err}");
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn panicking_cells_are_counted_in_runs_failed() {
    let (client, join) = start("runsfailed");
    let specs = vec![spec("cg", 1), spec("boom", 2), spec("refuse", 3)];
    let outcomes = client.run_cells(&specs, |_| {}).unwrap();
    assert!(outcomes[0].result.is_ok());
    let boom = outcomes[1].result.as_ref().unwrap_err();
    assert!(boom.contains("panicked"), "{boom}");
    let refused = outcomes[2].result.as_ref().unwrap_err();
    assert!(refused.contains("refused"), "{refused}");
    let stats = client.stats().unwrap();
    assert_eq!(
        stats["runs_failed"].as_u64(),
        Some(2),
        "panicked + refused cells must both be visible: {stats}"
    );
    // The pool's own jobs_failed stays 0: the flight-resolution wrapper
    // catches the unwind before the pool sees it — exactly why stats
    // needs its own counter.
    assert_eq!(stats["pool"]["jobs_failed"].as_u64(), Some(0));
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn metrics_and_log_ops_see_the_request_history() {
    let (client, join) = start("metrics");
    let specs = vec![spec("cg", 10), spec("cg", 11)];
    client.run_cells(&specs, |_| {}).unwrap();
    client.run_cells(&specs, |_| {}).unwrap(); // warm: all hits
    assert!(client.ping());

    let m = client.metrics(false).unwrap();
    assert_eq!(m["schema"].as_str(), Some("ddnomp-metrics v1"));
    assert_eq!(m["counters"]["svc.requests.run.ok"].as_u64(), Some(2));
    assert_eq!(m["counters"]["svc.cells.computed"].as_u64(), Some(2));
    assert_eq!(m["counters"]["svc.cells.hit"].as_u64(), Some(2));
    assert_eq!(m["counters"]["svc.cache.hits"].as_u64(), Some(2));
    assert_eq!(m["counters"]["svc.cache.stores"].as_u64(), Some(2));
    assert_eq!(m["gauges"]["svc.cache.entries"].as_f64(), Some(2.0));
    assert!(m["gauges"]["svc.cache.bytes"].as_f64().unwrap() > 0.0);
    assert_eq!(m["gauges"]["svc.queue_depth"].as_f64(), Some(0.0));
    assert_eq!(m["workers"].as_array().unwrap().len(), 2);
    assert_eq!(m["histograms"]["svc.run_us"]["count"].as_u64(), Some(2));
    assert!(m["histograms"]["svc.compute_us"]["count"].as_u64() == Some(2));
    assert!(m["histograms"]["svc.cache_lookup_us"]["count"].as_u64() == Some(4));

    let p = client.metrics(true).unwrap();
    assert_eq!(p["format"].as_str(), Some("prometheus"));
    let text = p["text"].as_str().unwrap();
    assert!(text.contains("# TYPE svc_cache_hits counter\nsvc_cache_hits 2\n"));
    assert!(text.contains("# TYPE svc_run_us histogram"));
    assert!(text.contains("svc_run_us_bucket{le=\"+Inf\"}"));

    let log = client.log_tail(10).unwrap();
    let records = log["records"].as_array().unwrap();
    assert!(records.len() >= 3, "{log}");
    let runs: Vec<&Value> = records
        .iter()
        .filter(|r| r["op"].as_str() == Some("run"))
        .collect();
    assert_eq!(runs.len(), 2);
    assert!(runs[0]["ok"].as_bool().unwrap());
    assert!(runs[1]["detail"]
        .as_str()
        .unwrap()
        .contains("2 cached, 0 computed"));
    let tid = runs[0]["trace_id"].as_str().unwrap();
    assert_eq!(tid.len(), 16, "trace id propagated from the client: {tid}");
    client.shutdown().unwrap();
    join.join().unwrap();
}
