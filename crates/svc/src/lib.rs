//! The resident experiment service: exact result caching and a thin
//! server/client pair over the experiment cell pipeline.
//!
//! The repository's determinism guarantee (`tests/parallel_determinism.rs`:
//! cell outputs are byte-identical at any worker count) makes an experiment
//! cell a *pure function* of its specification. This crate exploits that
//! three ways:
//!
//! * [`CellSpec`] — the canonical, hashable identity of one cell:
//!   `(bench, placement, engine, scale, seed, variant, config fingerprint,
//!   code version)`. Its stable serialization is the cache key; two cells
//!   with equal specs have byte-identical results, so a cache hit is
//!   *exact*, not approximate.
//! * [`Cache`] — a content-addressed on-disk result store under
//!   `results/cache/`: atomic write-rename publication, an integrity hash
//!   over the stored payload bytes, hit/miss/corruption statistics, and
//!   `gc` by age and total size.
//! * [`Server`]/[`Client`] — a JSONL-over-TCP protocol on `127.0.0.1`: a
//!   resident server owns one long-lived [`exec::ResidentPool`], accepts
//!   batches of specs from concurrent clients, dedupes identical cached
//!   *and in-flight* cells, and streams per-cell results plus progress
//!   events back. The client degrades gracefully: when no server listens,
//!   callers fall back to in-process execution.
//!
//! The crate is domain-agnostic: payloads are [`obs::json::Value`]s and
//! the server is handed an opaque *compute* function. The `xp` crate binds
//! the domain — building specs from experiment grids, reconstructing run
//! configurations from specs, and encoding/decoding `RunResult`s.

#![deny(missing_docs)]

pub mod cache;
pub mod hash;
pub mod proto;
pub mod server;
pub mod spec;
pub mod telemetry;

pub use cache::{Cache, CacheStatsSnapshot, GcOutcome, ScanReport, VerifyOutcome};
pub use proto::Client;
pub use server::{Compute, Server};
pub use spec::CellSpec;
pub use telemetry::{RequestRecord, Telemetry, TraceCtx};

/// Default TCP port of `xp serve` (`127.0.0.1` only).
pub const DEFAULT_PORT: u16 = 46137;

/// Protocol schema tag sent in the server's hello event. The major (the
/// integer before the dot-less `v`..) gates compatibility: a client that
/// reads a different major falls back to local execution. Minor 1 added
/// the `metrics`/`log` ops and the per-frame trace context — all
/// additive, so v1.0 clients interoperate unchanged.
pub const PROTO_SCHEMA: &str = "ddnomp-svc v1.1";

/// Schema tag of the `metrics` op's JSON response body.
pub const METRICS_SCHEMA: &str = "ddnomp-metrics v1";
