//! The content-addressed on-disk result cache.
//!
//! One file per cell result, under `<root>/<first 2 key hex>/<key>.json`
//! (the fan-out directory keeps listings shallow). Each entry is a single
//! JSON document:
//!
//! ```json
//! {
//!   "schema": "ddnomp-cache v1",
//!   "key": "<32 hex>",
//!   "canonical": "bench=cg;placement=wc;...",
//!   "spec": { ... },
//!   "created_unix": 1754650000,
//!   "payload_hash": "<32 hex>",
//!   "payload": { ... }
//! }
//! ```
//!
//! Publication is atomic: entries are written to a `.tmp` sibling and
//! `rename`d into place, so readers never observe a half-written file and
//! concurrent writers of the same key settle on one winner (the payloads
//! are byte-identical by determinism, so the winner does not matter).
//!
//! Integrity: `payload_hash` is a 128-bit digest over the *compact*
//! serialization of `payload`, and `canonical` must equal the requesting
//! spec's canonical string. A lookup that fails any check — unparseable
//! file, foreign schema major, key/spec mismatch, hash mismatch — counts
//! as corruption, **removes the entry**, and reports a miss, so a damaged
//! entry is recomputed and never served.

use crate::hash::digest128;
use crate::spec::CellSpec;
use obs::json::Value;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Entry schema tag; the major (the integer in `v1`) gates compatibility.
pub const CACHE_SCHEMA: &str = "ddnomp-cache v1";

/// In-process cache counters, shared by clones of one [`Cache`].
#[derive(Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
}

/// A point-in-time copy of one cache's in-process counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries found damaged and removed during lookup or verify.
    pub corrupt: u64,
}

/// What one on-disk scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Number of entry files.
    pub entries: u64,
    /// Total entry bytes.
    pub bytes: u64,
    /// Oldest entry's `created_unix`, when any.
    pub oldest_unix: Option<u64>,
    /// Newest entry's `created_unix`, when any.
    pub newest_unix: Option<u64>,
}

/// Outcome of [`Cache::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Entries whose integrity checks all passed.
    pub ok: u64,
    /// Damaged entries (removed).
    pub corrupt: Vec<PathBuf>,
}

/// Outcome of [`Cache::gc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries removed.
    pub evicted: u64,
    /// Bytes those entries occupied.
    pub evicted_bytes: u64,
    /// Entries kept.
    pub kept: u64,
    /// Bytes the kept entries occupy.
    pub kept_bytes: u64,
}

/// The content-addressed result cache rooted at one directory. Cloning
/// shares the statistics counters (the clones are views of one cache).
#[derive(Clone)]
pub struct Cache {
    root: PathBuf,
    stats: Arc<Stats>,
}

impl Cache {
    /// A cache rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Cache {
            root: root.into(),
            stats: Arc::new(Stats::default()),
        }
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The in-process counters so far.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Relaxed),
            misses: self.stats.misses.load(Relaxed),
            stores: self.stats.stores.load(Relaxed),
            corrupt: self.stats.corrupt.load(Relaxed),
        }
    }

    /// The entry path for a key.
    fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join(&key[..2]).join(format!("{key}.json"))
    }

    /// Look `spec` up. `Some(payload)` only when the entry exists and
    /// passes every integrity check; a damaged entry is removed and
    /// reported as a miss (the caller recomputes).
    pub fn lookup(&self, spec: &CellSpec) -> Option<Value> {
        let path = self.entry_path(&spec.key());
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.stats.misses.fetch_add(1, Relaxed);
                return None;
            }
        };
        match validate_entry(&text, Some(spec)) {
            Ok(payload) => {
                self.stats.hits.fetch_add(1, Relaxed);
                Some(payload)
            }
            Err(_) => {
                // Detected corruption: never serve it, drop the entry so
                // the recomputed result can be stored cleanly.
                self.stats.corrupt.fetch_add(1, Relaxed);
                self.stats.misses.fetch_add(1, Relaxed);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Store `payload` as `spec`'s result. Atomic: the entry appears
    /// complete or not at all.
    pub fn store(&self, spec: &CellSpec, payload: &Value) -> std::io::Result<PathBuf> {
        let key = spec.key();
        let path = self.entry_path(&key);
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let doc = Value::object(vec![
            ("schema", CACHE_SCHEMA.into()),
            ("key", key.as_str().into()),
            ("canonical", spec.canonical().as_str().into()),
            ("spec", spec.to_json()),
            ("created_unix", (now_unix() as f64).into()),
            (
                "payload_hash",
                digest128(payload.to_string().as_bytes()).as_str().into(),
            ),
            ("payload", payload.clone()),
        ]);
        // Unique tmp name per writer so concurrent stores of one key never
        // interleave inside a file; rename publishes atomically.
        let tmp = dir.join(format!(
            ".tmp-{key}-{}-{:x}",
            std::process::id(),
            &payload as *const _ as usize
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(doc.to_string_pretty().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.stats.stores.fetch_add(1, Relaxed);
        Ok(path)
    }

    /// Every entry file currently on disk.
    fn entry_files(&self) -> Vec<PathBuf> {
        let mut files = Vec::new();
        let Ok(fanout) = std::fs::read_dir(&self.root) else {
            return files;
        };
        for dir in fanout.flatten() {
            if !dir.path().is_dir() {
                continue;
            }
            if let Ok(entries) = std::fs::read_dir(dir.path()) {
                for e in entries.flatten() {
                    let p = e.path();
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    if name.ends_with(".json") && !name.starts_with(".tmp-") {
                        files.push(p);
                    }
                }
            }
        }
        files.sort();
        files
    }

    /// Size and age statistics from a full directory scan.
    pub fn scan(&self) -> ScanReport {
        let mut report = ScanReport::default();
        for path in self.entry_files() {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            report.entries += 1;
            report.bytes += text.len() as u64;
            if let Some(created) = created_unix_of(&text) {
                report.oldest_unix = Some(report.oldest_unix.map_or(created, |o| o.min(created)));
                report.newest_unix = Some(report.newest_unix.map_or(created, |n| n.max(created)));
            }
        }
        report
    }

    /// Re-hash every entry; damaged ones are removed and reported.
    pub fn verify(&self) -> VerifyOutcome {
        let mut outcome = VerifyOutcome::default();
        for path in self.entry_files() {
            let ok = std::fs::read_to_string(&path)
                .ok()
                .is_some_and(|text| validate_entry(&text, None).is_ok());
            if ok {
                outcome.ok += 1;
            } else {
                self.stats.corrupt.fetch_add(1, Relaxed);
                let _ = std::fs::remove_file(&path);
                outcome.corrupt.push(path);
            }
        }
        outcome
    }

    /// Evict entries older than `max_age_secs` (against `now_unix`), then
    /// evict oldest-first until the remainder fits `max_bytes`.
    pub fn gc(&self, max_bytes: Option<u64>, max_age_secs: Option<u64>) -> GcOutcome {
        let now = now_unix();
        // (created, size, path); unreadable/undated entries count as oldest
        // so damage is reclaimed first.
        let mut entries: Vec<(u64, u64, PathBuf)> = self
            .entry_files()
            .into_iter()
            .map(|path| {
                let (created, size) = match std::fs::read_to_string(&path) {
                    Ok(text) => (created_unix_of(&text).unwrap_or(0), text.len() as u64),
                    Err(_) => (0, 0),
                };
                (created, size, path)
            })
            .collect();
        entries.sort();
        let mut outcome = GcOutcome::default();
        let total: u64 = entries.iter().map(|(_, size, _)| size).sum();
        let mut remaining = total;
        for (created, size, path) in entries {
            let too_old = max_age_secs.is_some_and(|max| now.saturating_sub(created) > max);
            let too_big = max_bytes.is_some_and(|max| remaining > max);
            if too_old || too_big {
                let _ = std::fs::remove_file(&path);
                outcome.evicted += 1;
                outcome.evicted_bytes += size;
                remaining -= size;
            } else {
                outcome.kept += 1;
                outcome.kept_bytes += size;
            }
        }
        outcome
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("root", &self.root)
            .field("stats", &self.stats())
            .finish()
    }
}

impl std::fmt::Debug for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} stores={} corrupt={}",
            self.hits.load(Relaxed),
            self.misses.load(Relaxed),
            self.stores.load(Relaxed),
            self.corrupt.load(Relaxed)
        )
    }
}

/// Parse and integrity-check one entry's text; `Ok` returns the payload.
/// `expect` additionally pins the entry to a specific requesting spec.
fn validate_entry(text: &str, expect: Option<&CellSpec>) -> Result<Value, String> {
    let doc = Value::parse(text).map_err(|e| format!("unparseable entry: {e:?}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("entry has no schema tag")?;
    let major_ok = schema
        .strip_prefix("ddnomp-cache v")
        .and_then(|v| v.split('.').next())
        .and_then(|v| v.parse::<u64>().ok())
        == Some(1);
    if !major_ok {
        return Err(format!("foreign schema '{schema}'"));
    }
    let canonical = doc
        .get("canonical")
        .and_then(Value::as_str)
        .ok_or("entry has no canonical spec")?;
    let key = doc
        .get("key")
        .and_then(Value::as_str)
        .ok_or("entry has no key")?;
    if key != digest128(canonical.as_bytes()) {
        return Err("key does not hash the canonical spec".into());
    }
    if let Some(spec) = expect {
        // The full-string comparison makes even a 128-bit digest collision
        // unable to cross results between specs.
        if canonical != spec.canonical() {
            return Err("entry stores a different spec".into());
        }
    }
    let payload = doc.get("payload").ok_or("entry has no payload")?;
    let stored_hash = doc
        .get("payload_hash")
        .and_then(Value::as_str)
        .ok_or("entry has no payload hash")?;
    if stored_hash != digest128(payload.to_string().as_bytes()) {
        return Err("payload hash mismatch".into());
    }
    Ok(payload.clone())
}

/// `created_unix` of an entry's text, when parseable.
fn created_unix_of(text: &str) -> Option<u64> {
    Value::parse(text)
        .ok()?
        .get("created_unix")
        .and_then(Value::as_u64)
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bench: &str) -> CellSpec {
        CellSpec {
            bench: bench.into(),
            placement: "wc".into(),
            placement_fp: String::new(),
            engine: "upmlib".into(),
            scale: "tiny".into(),
            seed: 0,
            variant: String::new(),
            config_fp: "0123456789abcdef".into(),
            code_version: "c1".into(),
        }
    }

    fn payload(x: f64) -> Value {
        Value::object(vec![("total_secs", x.into()), ("ok", true.into())])
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("ddnomp-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = Cache::new(tmp_root("roundtrip"));
        assert!(cache.lookup(&spec("cg")).is_none(), "cold cache misses");
        cache.store(&spec("cg"), &payload(1.25)).unwrap();
        let got = cache.lookup(&spec("cg")).expect("stored entry hits");
        assert_eq!(got, payload(1.25));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.corrupt), (1, 1, 1, 0));
        // A different spec does not hit the same entry.
        assert!(cache.lookup(&spec("mg")).is_none());
    }

    #[test]
    fn damaged_entries_are_never_served_and_get_removed() {
        let cache = Cache::new(tmp_root("damage"));
        let path = cache.store(&spec("cg"), &payload(2.0)).unwrap();
        // Flip payload bytes without updating the hash.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("1.25", "9.99").replace("2", "3")).unwrap();
        assert!(cache.lookup(&spec("cg")).is_none(), "corruption => miss");
        assert!(!path.exists(), "damaged entry removed for recompute");
        assert_eq!(cache.stats().corrupt, 1);
        // Truncation likewise.
        let path = cache.store(&spec("cg"), &payload(2.0)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.lookup(&spec("cg")).is_none());
        assert_eq!(cache.stats().corrupt, 2);
    }

    #[test]
    fn verify_reports_and_removes_damage() {
        let cache = Cache::new(tmp_root("verify"));
        cache.store(&spec("cg"), &payload(1.0)).unwrap();
        let bad = cache.store(&spec("mg"), &payload(2.0)).unwrap();
        let text = std::fs::read_to_string(&bad).unwrap();
        std::fs::write(&bad, text.replace("payload_hash", "payload_hush")).unwrap();
        let outcome = cache.verify();
        assert_eq!(outcome.ok, 1);
        assert_eq!(outcome.corrupt, vec![bad.clone()]);
        assert!(!bad.exists());
    }

    #[test]
    fn scan_counts_entries_and_bytes() {
        let cache = Cache::new(tmp_root("scan"));
        assert_eq!(cache.scan(), ScanReport::default());
        cache.store(&spec("cg"), &payload(1.0)).unwrap();
        cache.store(&spec("mg"), &payload(2.0)).unwrap();
        let report = cache.scan();
        assert_eq!(report.entries, 2);
        assert!(report.bytes > 0);
        assert!(report.oldest_unix.is_some());
        assert!(report.oldest_unix <= report.newest_unix);
    }

    #[test]
    fn gc_by_size_evicts_oldest_first() {
        let cache = Cache::new(tmp_root("gc-size"));
        let first = cache.store(&spec("cg"), &payload(1.0)).unwrap();
        // Backdate the first entry so eviction order is deterministic even
        // within one wall-clock second.
        let text = std::fs::read_to_string(&first).unwrap();
        let backdated = backdate(&text, 1_000_000);
        std::fs::write(&first, backdated).unwrap();
        let second = cache.store(&spec("mg"), &payload(2.0)).unwrap();
        let one_entry = std::fs::metadata(&second).unwrap().len();
        let outcome = cache.gc(Some(one_entry), None);
        assert_eq!(outcome.evicted, 1);
        assert_eq!(outcome.kept, 1);
        assert!(!first.exists(), "older entry evicted");
        assert!(second.exists(), "newer entry kept");
    }

    #[test]
    fn gc_by_age_evicts_only_stale_entries() {
        let cache = Cache::new(tmp_root("gc-age"));
        let old = cache.store(&spec("cg"), &payload(1.0)).unwrap();
        let text = std::fs::read_to_string(&old).unwrap();
        std::fs::write(&old, backdate(&text, 10_000)).unwrap();
        let fresh = cache.store(&spec("mg"), &payload(2.0)).unwrap();
        let outcome = cache.gc(None, Some(3_600));
        assert_eq!((outcome.evicted, outcome.kept), (1, 1));
        assert!(!old.exists());
        assert!(fresh.exists());
    }

    /// Rewrite an entry's `created_unix` to `secs` seconds in the past.
    /// (GC trusts the header date; the payload hash stays valid because it
    /// covers only the payload.)
    fn backdate(text: &str, secs: u64) -> String {
        let doc = Value::parse(text).unwrap();
        let created = doc.get("created_unix").and_then(Value::as_u64).unwrap();
        text.replace(
            &format!("\"created_unix\": {created}"),
            &format!("\"created_unix\": {}", created.saturating_sub(secs)),
        )
    }
}
