//! The resident experiment server.
//!
//! One [`Server`] owns one long-lived [`exec::ResidentPool`] and one
//! [`Cache`], and listens for JSONL requests on a local TCP port. For a
//! `run` request (a batch of [`CellSpec`]s) each cell resolves through
//! three tiers:
//!
//! 1. **in-flight join** — an identical cell already being computed for
//!    any client (this batch included) is joined, never recomputed;
//! 2. **cache** — a valid on-disk entry is served directly;
//! 3. **compute** — the cell is queued on the resident pool, stored into
//!    the cache on success, and its in-flight entry resolved for joiners.
//!
//! Results stream back as one `cell` event per cell, interleaved with
//! `progress` events, terminated by a `done` summary — so a client
//! renders progress live while long cells still run. The in-flight entry
//! is registered *before* the cache lookup and resolved *inside* the pool
//! job, so two clients racing on the same cold cell agree on one owner
//! and the loser unblocks the moment the result exists (not when the
//! owner's connection gets around to reporting it).
//!
//! The compute function is opaque to this crate: the `xp` binary binds it
//! to spec reconstruction + `run_one`, including the config-fingerprint
//! check (a spec whose fingerprint does not match the server's own
//! reconstruction is answered with an error, and the client falls back to
//! local execution for that cell).

use crate::cache::Cache;
use crate::spec::CellSpec;
use crate::telemetry::{RequestRecord, Telemetry, TraceCtx};
use exec::{ResidentJob, ResidentPool};
use obs::json::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The server's cell evaluator: spec in, result payload (or a refusal
/// message) out. Must be pure per the determinism guarantee.
pub type Compute = Arc<dyn Fn(&CellSpec) -> Result<Value, String> + Send + Sync>;

/// One cell being computed right now, joinable by later requests.
struct Flight {
    done: Mutex<Option<Result<Value, String>>>,
    resolved: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            resolved: Condvar::new(),
        }
    }

    fn resolve(&self, result: Result<Value, String>) {
        *self.done.lock().unwrap() = Some(result);
        self.resolved.notify_all();
    }

    fn wait(&self) -> Result<Value, String> {
        let mut done = self.done.lock().unwrap();
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.resolved.wait(done).unwrap();
        }
    }
}

/// State shared by the accept loop, connection threads and pool jobs.
struct Shared {
    cache: Cache,
    compute: Compute,
    pool: ResidentPool<Result<Value, String>>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    code_version: String,
    stop: AtomicBool,
    started: Instant,
    telemetry: Telemetry,
    /// Cells whose compute resolved to an error — panics converted by the
    /// flight-resolution wrapper included, which the pool's own
    /// `jobs_failed` can never see (the wrapper catches the unwind before
    /// the pool does).
    runs_failed: AtomicU64,
}

/// The resident experiment server. [`Server::bind`] claims the port;
/// [`Server::run`] serves until a client sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:46137`, port 0 for ephemeral) with a
    /// resident pool of `workers` threads.
    pub fn bind(
        addr: &str,
        workers: usize,
        cache: Cache,
        compute: Compute,
        code_version: &str,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache,
                compute,
                pool: ResidentPool::new(workers),
                inflight: Mutex::new(HashMap::new()),
                code_version: code_version.to_string(),
                stop: AtomicBool::new(false),
                started: Instant::now(),
                telemetry: Telemetry::new(),
                runs_failed: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request arrives. Connection threads are
    /// joined before returning, so in-flight batches complete.
    pub fn run(&self) -> std::io::Result<()> {
        let mut connections = Vec::new();
        while !self.shared.stop.load(Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let handle = std::thread::Builder::new()
                        .name("svc-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(&shared, stream);
                        })
                        .expect("spawning a connection thread");
                    connections.push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
            connections.retain(|h| !h.is_finished());
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Ask the accept loop to stop (same effect as a client `shutdown`).
    pub fn stop(&self) {
        self.shared.stop.store(true, Relaxed);
    }
}

/// Serve one client connection: hello, then one request line per op until
/// the client closes (or asks for shutdown).
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = BufWriter::new(stream);
    {
        let _hp = hostprof::span("svc.accept");
        emit(
            &mut out,
            Value::object(vec![
                ("event", "hello".into()),
                ("schema", crate::PROTO_SCHEMA.into()),
                ("code_version", shared.code_version.as_str().into()),
                ("workers", shared.pool.workers().into()),
            ]),
        )?;
    }
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let request = match Value::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                let message = format!("bad request JSON: {e}");
                let sent = emit(&mut out, error_event(&message));
                record(shared, TraceCtx::fresh(), "bad", false, message, t0);
                sent?;
                continue;
            }
        };
        // The trace context rides on the frame; frames from older clients
        // carry none and get a server-minted root so every request still
        // has exactly one trace id.
        let trace = request
            .get("trace")
            .and_then(TraceCtx::from_json)
            .unwrap_or_else(TraceCtx::fresh);
        match request.get("op").and_then(Value::as_str) {
            Some("run") => {
                let _hp = hostprof::span_named(|| format!("svc.run:{}", trace.trace_id));
                match handle_run(shared, &mut out, &request, &trace) {
                    Ok((ok, detail)) => record(shared, trace, "run", ok, detail, t0),
                    Err(e) => {
                        record(
                            shared,
                            trace,
                            "run",
                            false,
                            format!("client io error: {e}"),
                            t0,
                        );
                        return Err(e);
                    }
                }
            }
            Some("ping") => {
                let sent = emit(&mut out, Value::object(vec![("event", "pong".into())]));
                record(shared, trace, "ping", true, String::new(), t0);
                sent?;
            }
            Some("stats") => {
                let sent = emit(&mut out, stats_event(shared));
                record(shared, trace, "stats", true, String::new(), t0);
                sent?;
            }
            Some("metrics") => {
                let format = request.get("format").and_then(Value::as_str);
                let sent = emit(&mut out, metrics_event(shared, format));
                let detail = format.unwrap_or("json").to_string();
                record(shared, trace, "metrics", true, detail, t0);
                sent?;
            }
            Some("log") => {
                let n = request.get("n").and_then(Value::as_u64).unwrap_or(50) as usize;
                let sent = emit(&mut out, log_event(shared, n));
                record(shared, trace, "log", true, format!("n={n}"), t0);
                sent?;
            }
            Some("shutdown") => {
                shared.stop.store(true, Relaxed);
                let sent = emit(&mut out, Value::object(vec![("event", "bye".into())]));
                record(shared, trace, "shutdown", true, String::new(), t0);
                sent?;
                break;
            }
            other => {
                let message = format!("unknown op {:?}", other.unwrap_or("<none>"));
                let sent = emit(&mut out, error_event(&message));
                record(shared, trace, "unknown", false, message, t0);
                sent?;
            }
        }
    }
    Ok(())
}

/// Record one finished request into the telemetry store.
fn record(
    shared: &Shared,
    trace: TraceCtx,
    op: &'static str,
    ok: bool,
    detail: String,
    t0: Instant,
) {
    shared.telemetry.request(RequestRecord {
        trace_id: trace.trace_id,
        op,
        ok,
        detail,
        wall_secs: t0.elapsed().as_secs_f64(),
    });
}

/// How one cell of a batch resolves.
enum Resolution {
    /// Served from the cache.
    Hit(Value),
    /// This request owns the computation; the value is the pool slot.
    Compute(usize),
    /// Joined onto a computation some other request owns.
    Joined(Arc<Flight>),
}

fn handle_run(
    shared: &Arc<Shared>,
    out: &mut BufWriter<TcpStream>,
    request: &Value,
    trace: &TraceCtx,
) -> std::io::Result<(bool, String)> {
    let t0 = Instant::now();
    let Some(cells) = request.get("cells").and_then(Value::as_array) else {
        let message = "run request has no 'cells' array".to_string();
        emit(out, error_event(&message))?;
        return Ok((false, message));
    };
    let mut specs = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        match CellSpec::from_json(cell) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                let message = format!("cell {i}: {e}");
                emit(out, error_event(&message))?;
                return Ok((false, message));
            }
        }
    }
    let total = specs.len();
    let mut resolutions = Vec::with_capacity(total);
    let mut jobs: Vec<ResidentJob<Result<Value, String>>> = Vec::new();
    for spec in &specs {
        let key = spec.key();
        // Register the flight under the map lock *before* the cache
        // lookup: racing requests agree on exactly one owner per key.
        let owned = {
            let mut inflight = shared.inflight.lock().unwrap();
            match inflight.get(&key) {
                Some(flight) => {
                    resolutions.push(Resolution::Joined(Arc::clone(flight)));
                    None
                }
                None => {
                    let flight = Arc::new(Flight::new());
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    Some(flight)
                }
            }
        };
        let Some(flight) = owned else { continue };
        let looked_up = {
            let _hp = hostprof::span("svc.cache_lookup");
            let t = Instant::now();
            let payload = shared.cache.lookup(spec);
            shared
                .telemetry
                .observe_us("svc.cache_lookup_us", t.elapsed().as_micros() as u64);
            payload
        };
        if let Some(payload) = looked_up {
            flight.resolve(Ok(payload.clone()));
            shared.inflight.lock().unwrap().remove(&key);
            resolutions.push(Resolution::Hit(payload));
        } else {
            resolutions.push(Resolution::Compute(jobs.len()));
            let shared = Arc::clone(shared);
            let spec = spec.clone();
            let trace_id = trace.trace_id.clone();
            jobs.push(Box::new(move || {
                // The compute span carries the request's trace id, tying
                // the worker thread's subtree (this span plus the cell
                // spans the compute binding opens under it) back to the
                // connection thread's `svc.run:<id>` root.
                let _hp = hostprof::span_named(|| format!("svc.compute:{trace_id}"));
                let t = Instant::now();
                // The compute binding may panic (a cell's own panic
                // isolation lives a layer down); convert to Err here so
                // the flight is ALWAYS resolved — a joiner must never
                // hang on a dead computation.
                let result = catch_unwind(AssertUnwindSafe(|| (shared.compute)(&spec)))
                    .unwrap_or_else(|p| Err(format!("compute panicked: {}", panic_text(&*p))));
                shared
                    .telemetry
                    .observe_us("svc.compute_us", t.elapsed().as_micros() as u64);
                if result.is_err() {
                    shared.runs_failed.fetch_add(1, Relaxed);
                    shared.telemetry.inc("svc.cells.failed", 1);
                }
                if let Ok(payload) = &result {
                    if let Err(e) = shared.cache.store(&spec, payload) {
                        // A failed store is a warning, not a failure: the
                        // result is still valid and still returned.
                        eprintln!("[svc] cache store failed for {spec}: {e}");
                    }
                }
                let mut inflight = shared.inflight.lock().unwrap();
                if let Some(flight) = inflight.remove(&spec.key()) {
                    flight.resolve(result.clone());
                }
                result
            }));
        }
    }
    let batch = shared.pool.submit(jobs);
    // Stream results: hits immediately, computed cells as their slots
    // fill, joined cells as their owners resolve them.
    let _hp = hostprof::span("svc.stream");
    let mut done = 0usize;
    let mut counts = (0u64, 0u64, 0u64, 0u64); // hits, computed, joined, errors
    let order = |r: &Resolution| match r {
        Resolution::Hit(_) => 0,
        Resolution::Compute(_) => 1,
        Resolution::Joined(_) => 2,
    };
    let mut indices: Vec<usize> = (0..total).collect();
    indices.sort_by_key(|&i| (order(&resolutions[i]), i));
    for i in indices {
        let (source, wall, result) = match &resolutions[i] {
            Resolution::Hit(payload) => {
                counts.0 += 1;
                ("cache", 0.0, Ok(payload.clone()))
            }
            Resolution::Compute(slot) => {
                counts.1 += 1;
                let timed = batch.wait(*slot);
                let result = match timed.result {
                    Ok(inner) => inner,
                    Err(panic) => Err(panic.to_string()),
                };
                ("computed", timed.wall_secs, result)
            }
            Resolution::Joined(flight) => {
                counts.2 += 1;
                let _hp = hostprof::span("svc.flight_wait");
                ("inflight", 0.0, flight.wait())
            }
        };
        done += 1;
        let mut fields = vec![
            ("event", "cell".into()),
            ("index", i.into()),
            ("id", specs[i].cell_id().as_str().into()),
            ("source", source.into()),
            ("wall_secs", wall.into()),
        ];
        match result {
            Ok(payload) => {
                fields.push(("ok", true.into()));
                fields.push(("result", payload));
            }
            Err(message) => {
                counts.3 += 1;
                fields.push(("ok", false.into()));
                fields.push(("error", message.as_str().into()));
            }
        }
        emit(
            out,
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        )?;
        emit(
            out,
            Value::object(vec![
                ("event", "progress".into()),
                ("done", done.into()),
                ("total", total.into()),
                ("hits", counts.0.into()),
                ("computed", counts.1.into()),
                ("joined", counts.2.into()),
            ]),
        )?;
    }
    shared.telemetry.inc("svc.cells.hit", counts.0);
    shared.telemetry.inc("svc.cells.computed", counts.1);
    shared.telemetry.inc("svc.flight.joins", counts.2);
    shared.telemetry.inc("svc.cells.refused", counts.3);
    emit(
        out,
        Value::object(vec![
            ("event", "done".into()),
            ("total", total.into()),
            ("hits", counts.0.into()),
            ("computed", counts.1.into()),
            ("joined", counts.2.into()),
            ("errors", counts.3.into()),
            ("wall_secs", t0.elapsed().as_secs_f64().into()),
            ("trace_id", trace.trace_id.as_str().into()),
        ]),
    )?;
    let detail = format!(
        "{total} cells — {} cached, {} computed, {} joined, {} errors",
        counts.0, counts.1, counts.2, counts.3
    );
    Ok((counts.3 == 0, detail))
}

fn stats_event(shared: &Shared) -> Value {
    let cache = shared.cache.stats();
    let pool = shared.pool.stats();
    Value::object(vec![
        ("event", "stats".into()),
        (
            "cache",
            Value::object(vec![
                ("hits", cache.hits.into()),
                ("misses", cache.misses.into()),
                ("stores", cache.stores.into()),
                ("corrupt", cache.corrupt.into()),
            ]),
        ),
        (
            "pool",
            Value::object(vec![
                ("workers", shared.pool.workers().into()),
                ("jobs_done", pool.jobs_done.into()),
                ("jobs_failed", pool.jobs_failed.into()),
                ("batches", pool.batches.into()),
            ]),
        ),
        ("inflight", shared.inflight.lock().unwrap().len().into()),
        ("runs_failed", shared.runs_failed.load(Relaxed).into()),
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
    ])
}

/// The `metrics` op's response: the telemetry registry merged with
/// scrape-time counters (cache) and gauges (queue, workers, cache size,
/// in-flight cells), as JSON or as Prometheus text exposition.
fn metrics_event(shared: &Shared, format: Option<&str>) -> Value {
    let mut reg = shared.telemetry.registry();
    // The cache keeps its own counters; copy them into the snapshot so
    // one scrape carries every number (the clone starts these at 0).
    let cache = shared.cache.stats();
    reg.inc("svc.cache.hits", cache.hits);
    reg.inc("svc.cache.misses", cache.misses);
    reg.inc("svc.cache.stores", cache.stores);
    reg.inc("svc.cache.corrupt", cache.corrupt);
    reg.inc("svc.runs_failed", shared.runs_failed.load(Relaxed));
    let scan = shared.cache.scan();
    reg.set_gauge("svc.cache.bytes", scan.bytes as f64);
    reg.set_gauge("svc.cache.entries", scan.entries as f64);
    let status = shared.pool.status();
    reg.set_gauge("svc.queue_depth", status.queue_len as f64);
    reg.set_gauge("svc.workers_busy", status.busy_workers() as f64);
    reg.set_gauge(
        "svc.inflight_cells",
        shared.inflight.lock().unwrap().len() as f64,
    );
    reg.set_gauge("svc.uptime_secs", shared.started.elapsed().as_secs_f64());
    if format == Some("prometheus") {
        return Value::object(vec![
            ("event", "metrics".into()),
            ("format", "prometheus".into()),
            ("text", obs::expo::prometheus_text(&reg).into()),
        ]);
    }
    let workers = Value::Array(
        status
            .workers
            .iter()
            .map(|w| {
                Value::object(vec![
                    ("busy", w.busy.into()),
                    ("busy_fraction", w.busy_fraction.into()),
                    ("busy_secs", w.busy_secs.into()),
                    ("jobs", w.jobs.into()),
                ])
            })
            .collect(),
    );
    let mut fields = vec![
        ("event".to_string(), Value::from("metrics")),
        ("schema".to_string(), crate::METRICS_SCHEMA.into()),
        (
            "uptime_secs".to_string(),
            shared.started.elapsed().as_secs_f64().into(),
        ),
        ("workers".to_string(), workers),
    ];
    if let Value::Object(parts) = reg.to_json() {
        fields.extend(parts);
    }
    Value::Object(fields)
}

/// The `log` op's response: the newest `n` request-log records.
fn log_event(shared: &Shared, n: usize) -> Value {
    let records = shared.telemetry.log_tail(n);
    Value::object(vec![
        ("event", "log".into()),
        ("count", records.len().into()),
        ("records", Value::Array(records)),
    ])
}

fn error_event(message: &str) -> Value {
    Value::object(vec![("event", "error".into()), ("message", message.into())])
}

/// Write one JSONL event and flush it out immediately (streaming).
fn emit(out: &mut BufWriter<TcpStream>, event: Value) -> std::io::Result<()> {
    writeln!(out, "{event}")?;
    out.flush()
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
