//! The service's content hash: two independent FNV-1a 64-bit lanes
//! concatenated into a 128-bit hex digest.
//!
//! The workspace builds with no external dependencies, so the hash is
//! in-tree. FNV-1a is not cryptographic — the cache does not defend
//! against an adversary writing into its own directory — but a 128-bit
//! digest makes accidental collisions between distinct cell specs (a few
//! hundred per sweep) vanishingly unlikely, and every cache lookup
//! additionally compares the full canonical spec string stored in the
//! entry, so even a digest collision cannot serve a wrong result.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Second-lane offset: the FNV offset basis XORed with an arbitrary
/// constant so the two lanes decorrelate from the first byte on.
const LANE2_OFFSET: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over `bytes` from the given offset basis.
fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit content digest of `bytes`, as 32 lowercase hex characters.
pub fn digest128(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(bytes, FNV_OFFSET),
        fnv1a(bytes, LANE2_OFFSET)
    )
}

/// 64-bit content digest of `bytes`, as 16 lowercase hex characters —
/// used for the compact config fingerprint inside a [`crate::CellSpec`].
pub fn digest64(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes, FNV_OFFSET))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_input_sensitive() {
        let a = digest128(b"cg:wc-upmlib");
        assert_eq!(a, digest128(b"cg:wc-upmlib"), "must be deterministic");
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, digest128(b"cg:wc-upmlib "), "input-sensitive");
        assert_ne!(a, digest128(b"cg:wc-upmliB"));
    }

    #[test]
    fn lanes_are_independent() {
        // If both lanes collapsed to the same function the digest would be
        // its first half repeated.
        let d = digest128(b"anything");
        assert_ne!(&d[..16], &d[16..]);
    }

    #[test]
    fn digest64_is_the_first_lane() {
        let d128 = digest128(b"x");
        assert_eq!(digest64(b"x"), &d128[..16]);
    }
}
