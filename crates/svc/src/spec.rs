//! The canonical experiment-cell specification.
//!
//! A [`CellSpec`] names one experiment cell precisely enough that its
//! result is a pure function of the spec. The fields are the identity the
//! paper's grids sweep — benchmark, placement, engine, scale, seed — plus
//! two that pin everything else down:
//!
//! * `variant` — an opaque token naming any deviation from the paper's
//!   default run configuration (e.g. `4x` for Figure 6's lengthened
//!   phases, `-lat8` for a latency-ratio ablation point). Empty for plain
//!   grid cells.
//! * `config_fp` — a 64-bit fingerprint of the *full* run configuration
//!   (engine tunables, machine geometry, problem config). The variant
//!   token is human-readable documentation; the fingerprint is the
//!   machine-checked truth. A server recomputes the fingerprint from its
//!   own reconstruction of the config and refuses cells whose fingerprint
//!   does not match — so a stale or unsupported variant can never be
//!   served a wrong result.
//!
//! `code_version` folds the simulator's code generation into the key:
//! results from an older code version are never served (see DESIGN.md
//! §15 for the bump policy).
//!
//! The canonical serialization ([`CellSpec::canonical`]) is a fixed-order
//! `key=value` line; [`CellSpec::key`] hashes it into the 128-bit cache
//! key. JSON conversion round-trips exactly.

use obs::json::Value;

/// The canonical, hashable identity of one experiment cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// Benchmark label, lower-case (`bt`, `sp`, `cg`, `mg`, `ft`).
    pub bench: String,
    /// Placement label (`ft`, `rr`, `rand`, `wc`, `static`).
    pub placement: String,
    /// Content fingerprint of a synthesized placement map (16 hex chars),
    /// empty for the closed-form placement schemes. Two `static` cells with
    /// different maps must never alias in the cache.
    pub placement_fp: String,
    /// Engine label (`IRIX`, `IRIXmig`, `upmlib`, `recrep`).
    pub engine: String,
    /// Scale label (`tiny`, `small`, `medium`).
    pub scale: String,
    /// Seed feeding the cell's seeded components. 0 when the cell draws
    /// on no seed (non-random placements), so seed sweeps reuse their
    /// seed-independent cells.
    pub seed: u64,
    /// Deviation token, empty for the paper-default configuration.
    pub variant: String,
    /// 64-bit hex fingerprint of the full run configuration.
    pub config_fp: String,
    /// Simulator code generation the result is valid for.
    pub code_version: String,
}

impl CellSpec {
    /// The canonical serialization — the string the cache key hashes.
    /// Fixed field order, `;`-separated `key=value` pairs. Field values
    /// are labels and hex digits (no `;`/`=`), so the form is unambiguous.
    pub fn canonical(&self) -> String {
        format!(
            "bench={};placement={};pmap={};engine={};scale={};seed={};variant={};cfg={};code={}",
            self.bench,
            self.placement,
            self.placement_fp,
            self.engine,
            self.scale,
            self.seed,
            self.variant,
            self.config_fp,
            self.code_version,
        )
    }

    /// The 128-bit cache key (32 hex chars) of this spec.
    pub fn key(&self) -> String {
        crate::hash::digest128(self.canonical().as_bytes())
    }

    /// The cell id used in plans, reports and diagnostics, matching the
    /// paper's chart labels: `cg:wc-upmlib`, `bt4x:ft-recrep`,
    /// `cg-thr16:rand-upmlib`. The variant token is spliced between the
    /// benchmark and the colon verbatim.
    pub fn cell_id(&self) -> String {
        format!(
            "{}{}:{}-{}",
            self.bench, self.variant, self.placement, self.engine
        )
    }

    /// JSON form (all fields, fixed order).
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("bench", self.bench.as_str().into()),
            ("placement", self.placement.as_str().into()),
            ("placement_fp", self.placement_fp.as_str().into()),
            ("engine", self.engine.as_str().into()),
            ("scale", self.scale.as_str().into()),
            ("seed", (self.seed as f64).into()),
            ("variant", self.variant.as_str().into()),
            ("config_fp", self.config_fp.as_str().into()),
            ("code_version", self.code_version.as_str().into()),
        ])
    }

    /// Parse the JSON form back. Every field is required.
    pub fn from_json(v: &Value) -> Result<CellSpec, String> {
        let text = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell spec missing string field '{k}'"))
        };
        Ok(CellSpec {
            bench: text("bench")?,
            placement: text("placement")?,
            // Tolerant default: specs written before placement maps existed
            // carry no fingerprint (equivalent to the empty one).
            placement_fp: text("placement_fp").unwrap_or_default(),
            engine: text("engine")?,
            scale: text("scale")?,
            seed: v
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or("cell spec missing integer field 'seed'")?,
            variant: text("variant")?,
            config_fp: text("config_fp")?,
            code_version: text("code_version")?,
        })
    }
}

impl std::fmt::Display for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.cell_id(), self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            bench: "cg".into(),
            placement: "wc".into(),
            placement_fp: String::new(),
            engine: "upmlib".into(),
            scale: "tiny".into(),
            seed: 20000,
            variant: String::new(),
            config_fp: "00d1f2e3a4b5c697".into(),
            code_version: "c1".into(),
        }
    }

    #[test]
    fn canonical_and_key_are_stable() {
        let s = spec();
        assert_eq!(
            s.canonical(),
            "bench=cg;placement=wc;pmap=;engine=upmlib;scale=tiny;seed=20000;variant=;\
             cfg=00d1f2e3a4b5c697;code=c1"
                .replace(";\n             ", ";")
        );
        assert_eq!(s.key(), spec().key(), "same spec, same key");
        assert_eq!(s.key().len(), 32);
    }

    #[test]
    fn every_field_feeds_the_key() {
        let base = spec().key();
        let mut s = spec();
        s.bench = "mg".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.placement = "ft".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.placement_fp = "a1b2c3d4e5f60718".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.engine = "IRIX".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.scale = "small".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.seed = 7;
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.variant = "4x".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.config_fp = "ffffffffffffffff".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.code_version = "c2".into();
        assert_ne!(s.key(), base);
    }

    #[test]
    fn cell_ids_match_the_chart_label_style() {
        assert_eq!(spec().cell_id(), "cg:wc-upmlib");
        let mut s = spec();
        s.bench = "bt".into();
        s.variant = "4x".into();
        s.placement = "ft".into();
        s.engine = "recrep".into();
        assert_eq!(s.cell_id(), "bt4x:ft-recrep");
    }

    #[test]
    fn json_round_trips() {
        let s = spec();
        let v = s.to_json();
        assert_eq!(CellSpec::from_json(&v).unwrap(), s);
        // Through an actual serialization and re-parse too.
        let reparsed = Value::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(CellSpec::from_json(&reparsed).unwrap(), s);
    }

    /// Two `static` cells differing only in their synthesized map can never
    /// alias: the map fingerprint feeds the canonical string and the key —
    /// and stays byte-stable so recorded caches keep hitting.
    #[test]
    fn placement_map_fingerprint_prevents_cache_aliasing() {
        let mut a = spec();
        a.placement = "static".into();
        a.placement_fp = "0123456789abcdef".into();
        let mut b = a.clone();
        b.placement_fp = "fedcba9876543210".into();
        assert_ne!(a.key(), b.key(), "different maps must key differently");
        assert!(a.canonical().contains("pmap=0123456789abcdef"));
        // Key stability: same fields, freshly built, same key bytes.
        let mut a2 = spec();
        a2.placement = "static".into();
        a2.placement_fp = "0123456789abcdef".into();
        assert_eq!(a.key(), a2.key());
        // Old JSON without the field parses with an empty fingerprint.
        let mut legacy = spec().to_json();
        if let Value::Object(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "placement_fp");
        }
        let parsed = CellSpec::from_json(&legacy).unwrap();
        assert_eq!(parsed, spec());
    }

    #[test]
    fn missing_fields_are_reported() {
        let v = Value::object(vec![("bench", "cg".into())]);
        let err = CellSpec::from_json(&v).unwrap_err();
        assert!(err.contains("placement"), "{err}");
    }
}
