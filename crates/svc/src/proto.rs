//! The thin client side of the JSONL-over-TCP protocol.
//!
//! A [`Client`] holds an address; each operation opens one connection,
//! checks the server's hello (schema major **and** code version must
//! match — a stale server must never answer for a rebuilt binary), sends
//! one request line, and consumes the event stream. Connection or
//! handshake failure is an `Err(String)` the caller treats as "no usable
//! server": `xp` falls back to in-process execution, so a missing or
//! mismatched server degrades to exactly the offline behaviour.

use crate::spec::CellSpec;
use crate::telemetry::TraceCtx;
use obs::json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How one cell's result was obtained, per the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Served from the on-disk cache.
    Cache,
    /// Computed on the server's resident pool for this request.
    Computed,
    /// Joined onto a computation another request owned.
    Inflight,
}

impl CellSource {
    fn parse(s: &str) -> CellSource {
        match s {
            "cache" => CellSource::Cache,
            "inflight" => CellSource::Inflight,
            _ => CellSource::Computed,
        }
    }
}

/// One cell's outcome as reported by the server.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's result payload, or the server's error message.
    pub result: Result<Value, String>,
    /// Where the result came from.
    pub source: CellSource,
    /// Wall seconds the cell ran on the server (0 for cache/joined).
    pub wall_secs: f64,
}

/// Batch-level progress, forwarded to the caller's callback as the
/// server streams it.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunProgress {
    /// Cells finished so far.
    pub done: u64,
    /// Cells in the batch.
    pub total: u64,
    /// Finished cells served from the cache.
    pub hits: u64,
    /// Finished cells computed for this request.
    pub computed: u64,
    /// Finished cells joined from other requests.
    pub joined: u64,
}

/// A client of one `xp serve` instance.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    code_version: String,
}

impl Client {
    /// A client for the server at `addr` (e.g. `127.0.0.1:46137`),
    /// speaking for a binary at `code_version`.
    pub fn new(addr: &str, code_version: &str) -> Client {
        Client {
            addr: addr.to_string(),
            code_version: code_version.to_string(),
        }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Open a connection and validate the hello. `Err` means "no usable
    /// server" — unreachable, foreign protocol, or a different code
    /// version — and the caller should fall back to local execution.
    fn connect(&self) -> Result<(BufReader<TcpStream>, TcpStream), String> {
        let stream = TcpStream::connect_timeout(
            &self
                .addr
                .parse()
                .map_err(|e| format!("bad server address '{}': {e}", self.addr))?,
            Duration::from_millis(500),
        )
        .map_err(|e| format!("no server at {}: {e}", self.addr))?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cloning stream: {e}"))?,
        );
        let hello = read_event(&mut reader)?;
        if hello["event"] != "hello" {
            return Err(format!("expected hello, got {hello}"));
        }
        let schema = hello["schema"].as_str().unwrap_or("<none>");
        if major_of(schema) != major_of(crate::PROTO_SCHEMA) {
            return Err(format!(
                "protocol mismatch: server speaks '{schema}', client '{}'",
                crate::PROTO_SCHEMA
            ));
        }
        let server_code = hello["code_version"].as_str().unwrap_or("<none>");
        if server_code != self.code_version {
            return Err(format!(
                "code version mismatch: server {server_code}, client {}",
                self.code_version
            ));
        }
        Ok((reader, stream))
    }

    /// True when a compatible server answers at the address.
    pub fn ping(&self) -> bool {
        self.connect()
            .and_then(|(mut reader, mut stream)| {
                send(
                    &mut stream,
                    &Value::object(vec![
                        ("op", "ping".into()),
                        ("trace", TraceCtx::fresh().to_json()),
                    ]),
                )?;
                let event = read_event(&mut reader)?;
                Ok(event["event"] == "pong")
            })
            .unwrap_or(false)
    }

    /// Run a batch of cells on the server. Returns outcomes in spec
    /// order; `progress` observes the stream as it arrives. The request
    /// carries a fresh [`TraceCtx`] — the server names its spans after
    /// the trace id and echoes it in the `done` event, so one request is
    /// one reconstructible span tree in the server's Perfetto export.
    pub fn run_cells(
        &self,
        specs: &[CellSpec],
        mut progress: impl FnMut(&RunProgress),
    ) -> Result<Vec<CellOutcome>, String> {
        let (mut reader, mut stream) = self.connect()?;
        let request = Value::object(vec![
            ("op", "run".into()),
            ("trace", TraceCtx::fresh().to_json()),
            (
                "cells",
                Value::Array(specs.iter().map(CellSpec::to_json).collect()),
            ),
        ]);
        send(&mut stream, &request)?;
        let mut outcomes: Vec<Option<CellOutcome>> = specs.iter().map(|_| None).collect();
        loop {
            let event = read_event(&mut reader)?;
            match event["event"].as_str() {
                Some("cell") => {
                    let index = event["index"]
                        .as_u64()
                        .ok_or_else(|| format!("cell event without index: {event}"))?
                        as usize;
                    if index >= outcomes.len() {
                        return Err(format!("cell index {index} out of range"));
                    }
                    let result = if event["ok"].as_bool() == Some(true) {
                        Ok(event["result"].clone())
                    } else {
                        Err(event["error"]
                            .as_str()
                            .unwrap_or("unknown error")
                            .to_string())
                    };
                    outcomes[index] = Some(CellOutcome {
                        result,
                        source: CellSource::parse(event["source"].as_str().unwrap_or("")),
                        wall_secs: event["wall_secs"].as_f64().unwrap_or(0.0),
                    });
                }
                Some("progress") => {
                    progress(&RunProgress {
                        done: event["done"].as_u64().unwrap_or(0),
                        total: event["total"].as_u64().unwrap_or(0),
                        hits: event["hits"].as_u64().unwrap_or(0),
                        computed: event["computed"].as_u64().unwrap_or(0),
                        joined: event["joined"].as_u64().unwrap_or(0),
                    });
                }
                Some("done") => break,
                Some("error") => {
                    return Err(event["message"]
                        .as_str()
                        .unwrap_or("server error")
                        .to_string());
                }
                _ => return Err(format!("unexpected event: {event}")),
            }
        }
        outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.ok_or_else(|| format!("server never reported cell {i}")))
            .collect()
    }

    /// The server's `stats` event (cache + pool counters, uptime).
    pub fn stats(&self) -> Result<Value, String> {
        self.one_shot(
            Value::object(vec![
                ("op", "stats".into()),
                ("trace", TraceCtx::fresh().to_json()),
            ]),
            "stats",
        )
    }

    /// The server's `metrics` event: the full telemetry snapshot, as JSON
    /// (`prometheus = false`) or with the snapshot rendered in the
    /// Prometheus text exposition format under a `text` field.
    pub fn metrics(&self, prometheus: bool) -> Result<Value, String> {
        let mut fields = vec![
            ("op", Value::from("metrics")),
            ("trace", TraceCtx::fresh().to_json()),
        ];
        if prometheus {
            fields.push(("format", "prometheus".into()));
        }
        self.one_shot(Value::object(fields), "metrics")
    }

    /// The newest `n` request-log records the server retains.
    pub fn log_tail(&self, n: usize) -> Result<Value, String> {
        self.one_shot(
            Value::object(vec![
                ("op", "log".into()),
                ("n", n.into()),
                ("trace", TraceCtx::fresh().to_json()),
            ]),
            "log",
        )
    }

    /// Send one request and expect exactly one event of the given kind.
    fn one_shot(&self, request: Value, expect: &str) -> Result<Value, String> {
        let (mut reader, mut stream) = self.connect()?;
        send(&mut stream, &request)?;
        let event = read_event(&mut reader)?;
        if event["event"] != expect {
            return Err(format!("expected {expect}, got {event}"));
        }
        Ok(event)
    }

    /// Ask the server to shut down. `Ok` once the server acknowledged.
    pub fn shutdown(&self) -> Result<(), String> {
        let (mut reader, mut stream) = self.connect()?;
        send(
            &mut stream,
            &Value::object(vec![
                ("op", "shutdown".into()),
                ("trace", TraceCtx::fresh().to_json()),
            ]),
        )?;
        let event = read_event(&mut reader)?;
        if event["event"] != "bye" {
            return Err(format!("expected bye, got {event}"));
        }
        Ok(())
    }
}

/// The integer major of a `name vN` schema tag (0 when unparseable).
fn major_of(schema: &str) -> u64 {
    schema
        .rsplit(" v")
        .next()
        .and_then(|v| v.split('.').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn send(stream: &mut TcpStream, request: &Value) -> Result<(), String> {
    writeln!(stream, "{request}").map_err(|e| format!("sending request: {e}"))
}

fn read_event(reader: &mut BufReader<TcpStream>) -> Result<Value, String> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading event: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        if !line.trim().is_empty() {
            return Value::parse(line.trim()).map_err(|e| format!("bad event JSON: {e}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::server::{Compute, Server};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;

    fn spec(bench: &str, seed: u64) -> CellSpec {
        CellSpec {
            bench: bench.into(),
            placement: "rand".into(),
            placement_fp: String::new(),
            engine: "upmlib".into(),
            scale: "tiny".into(),
            seed,
            variant: String::new(),
            config_fp: "fefefefefefefefe".into(),
            code_version: "test-code".into(),
        }
    }

    /// Start a server on an ephemeral port; returns (client, join, calls).
    fn start(tag: &str) -> (Client, std::thread::JoinHandle<()>, Arc<AtomicU64>) {
        let calls = Arc::new(AtomicU64::new(0));
        let counted = Arc::clone(&calls);
        let compute: Compute = Arc::new(move |spec: &CellSpec| {
            counted.fetch_add(1, Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(Value::object(vec![
                ("bench", spec.bench.as_str().into()),
                ("seed", spec.seed.into()),
            ]))
        });
        let root =
            std::env::temp_dir().join(format!("ddnomp-proto-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let server =
            Server::bind("127.0.0.1:0", 2, Cache::new(root), compute, "test-code").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let join = std::thread::spawn(move || server.run().unwrap());
        (Client::new(&addr, "test-code"), join, calls)
    }

    #[test]
    fn ping_run_stats_shutdown_round_trip() {
        let (client, join, calls) = start("basic");
        assert!(client.ping());
        let specs = vec![spec("cg", 1), spec("mg", 2), spec("cg", 1)];
        let mut last = RunProgress::default();
        let outcomes = client.run_cells(&specs, |p| last = *p).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            let payload = o.result.as_ref().unwrap();
            assert_eq!(payload["bench"], specs[i].bench.as_str());
        }
        // The duplicate cell is computed once and joined once.
        assert_eq!(calls.load(Relaxed), 2);
        assert_eq!(outcomes[2].source, CellSource::Inflight);
        assert_eq!(last.done, 3);
        // Second run: everything hits the cache.
        let outcomes = client.run_cells(&specs, |_| {}).unwrap();
        assert_eq!(calls.load(Relaxed), 2, "no recompute on warm cache");
        assert!(outcomes.iter().all(|o| o.source == CellSource::Cache));
        let stats = client.stats().unwrap();
        assert!(stats["cache"]["stores"].as_u64().unwrap() >= 2);
        client.shutdown().unwrap();
        join.join().unwrap();
        assert!(!client.ping(), "server is gone after shutdown");
    }

    #[test]
    fn concurrent_clients_share_overlapping_cells() {
        let (client, join, calls) = start("concurrent");
        let mut joins = Vec::new();
        for offset in 0..3u64 {
            let client = client.clone();
            joins.push(std::thread::spawn(move || {
                // Overlap: every client asks for seeds {0,1,2,3} plus one
                // private seed 100+offset.
                let mut specs: Vec<CellSpec> = (0..4).map(|s| spec("cg", s)).collect();
                specs.push(spec("cg", 100 + offset));
                client.run_cells(&specs, |_| {}).unwrap()
            }));
        }
        for j in joins {
            let outcomes = j.join().unwrap();
            assert_eq!(outcomes.len(), 5);
            assert!(outcomes.iter().all(|o| o.result.is_ok()));
        }
        // 4 shared + 3 private cells computed exactly once each.
        assert_eq!(calls.load(Relaxed), 7);
        client.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn code_version_mismatch_refuses_cleanly() {
        let (client, join, _) = start("version");
        let wrong = Client::new(client.addr(), "other-code");
        assert!(!wrong.ping());
        let err = wrong.run_cells(&[spec("cg", 1)], |_| {}).unwrap_err();
        assert!(err.contains("code version mismatch"), "{err}");
        client.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn unreachable_server_is_a_clean_error() {
        let client = Client::new("127.0.0.1:1", "test-code");
        assert!(!client.ping());
        assert!(client.run_cells(&[spec("cg", 1)], |_| {}).is_err());
    }
}
