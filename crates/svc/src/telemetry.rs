//! Service telemetry: trace contexts on protocol frames, process-lifetime
//! metrics, and a bounded ring of structured request-log records.
//!
//! The server's only window used to be a one-shot `stats` op; this module
//! is the substrate behind the richer `metrics` and `log` protocol ops.
//! It layers thread safety over [`obs::MetricsRegistry`] (whose mutating
//! API is `&mut`): counters and histograms live behind one mutex, taken
//! once per request — request handling is milliseconds-to-minutes, so a
//! microsecond of lock traffic is noise (the `svc_telemetry_overhead`
//! bench pins it down).
//!
//! Naming follows the registry's `component.detail` convention:
//! `svc.requests.<op>.<outcome>` counters, `svc.cells.*` per-cell
//! counters, `svc.*_us` microsecond histograms. Scrape-time gauges
//! (queue depth, cache size, in-flight cells) are *not* stored here —
//! the server computes them fresh per `metrics` request and merges them
//! into the snapshot, so the registry never holds stale point-in-time
//! values.

use obs::json::Value;
use obs::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Capacity of the request-log ring: old records are dropped once this
/// many are retained.
pub const LOG_CAP: usize = 256;

/// The trace context carried on every protocol frame: a request's
/// process-crossing identity. The client mints one per request; the
/// server threads it through the connection thread, the in-flight table,
/// and the resident-pool worker, naming its hostprof spans after the
/// trace id so one request's life is a single reconstructible span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCtx {
    /// 16-hex-digit trace id, shared by every span of one request.
    pub trace_id: String,
    /// The sender's span id, the parent of whatever the receiver opens.
    pub span_id: u64,
}

/// Monotone span-id source for [`TraceCtx::fresh`].
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// Mint a fresh root context: a new trace id (hashed from process id,
    /// wall clock, and a process-monotone counter) with span id 1.
    pub fn fresh() -> TraceCtx {
        let n = NEXT_TRACE.fetch_add(1, Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let seed = format!("{}:{}:{}", std::process::id(), n, nanos);
        TraceCtx {
            trace_id: crate::hash::digest64(seed.as_bytes()),
            span_id: 1,
        }
    }

    /// A child context: same trace, the given span id as the new parent.
    pub fn child(&self, span_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id.clone(),
            span_id,
        }
    }

    /// The wire form: `{"trace_id": "...", "span_id": N}`.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("trace_id", self.trace_id.as_str().into()),
            ("span_id", self.span_id.into()),
        ])
    }

    /// Parse the wire form; `None` when the value is not a trace object
    /// (frames from older clients simply carry no trace).
    pub fn from_json(v: &Value) -> Option<TraceCtx> {
        Some(TraceCtx {
            trace_id: v.get("trace_id")?.as_str()?.to_string(),
            span_id: v.get("span_id").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// One finished request, as recorded into the counters and the log ring.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request's trace id.
    pub trace_id: String,
    /// Protocol op (`run`, `ping`, ... or `bad`/`unknown` for frames that
    /// never resolved to an op).
    pub op: &'static str,
    /// Whether the request succeeded (`run`: no cell errored).
    pub ok: bool,
    /// One human line: the run summary or the error message.
    pub detail: String,
    /// End-to-end seconds from frame receipt to last byte streamed.
    pub wall_secs: f64,
}

struct LogRing {
    next_seq: u64,
    records: VecDeque<Value>,
}

/// Thread-safe, process-lifetime telemetry for one server.
pub struct Telemetry {
    registry: Mutex<MetricsRegistry>,
    log: Mutex<LogRing>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An empty telemetry store.
    pub fn new() -> Telemetry {
        Telemetry {
            registry: Mutex::new(MetricsRegistry::new()),
            log: Mutex::new(LogRing {
                next_seq: 0,
                records: VecDeque::new(),
            }),
        }
    }

    /// Bump a counter.
    pub fn inc(&self, name: &'static str, delta: u64) {
        self.registry.lock().unwrap().inc(name, delta);
    }

    /// Record one microsecond sample into a histogram.
    pub fn observe_us(&self, name: &'static str, us: u64) {
        self.registry.lock().unwrap().observe(name, us);
    }

    /// Record one finished request: the per-op/outcome counter, the
    /// end-to-end latency histograms, and a log-ring record.
    pub fn request(&self, record: RequestRecord) {
        let us = (record.wall_secs * 1e6) as u64;
        {
            let mut reg = self.registry.lock().unwrap();
            reg.inc(op_counter(record.op, record.ok), 1);
            reg.observe("svc.request_us", us);
            if record.op == "run" {
                reg.observe("svc.run_us", us);
            }
        }
        let mut log = self.log.lock().unwrap();
        let seq = log.next_seq;
        log.next_seq += 1;
        log.records.push_back(Value::object(vec![
            ("seq", seq.into()),
            ("trace_id", record.trace_id.as_str().into()),
            ("op", record.op.into()),
            ("ok", record.ok.into()),
            ("detail", record.detail.as_str().into()),
            ("wall_secs", record.wall_secs.into()),
        ]));
        while log.records.len() > LOG_CAP {
            log.records.pop_front();
        }
    }

    /// A clone of the whole registry — the base a `metrics` response
    /// merges its scrape-time gauges into.
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.lock().unwrap().clone()
    }

    /// The newest `n` request-log records, oldest first.
    pub fn log_tail(&self, n: usize) -> Vec<Value> {
        let log = self.log.lock().unwrap();
        let skip = log.records.len().saturating_sub(n);
        log.records.iter().skip(skip).cloned().collect()
    }
}

/// The static counter name for one `(op, outcome)` pair. Ops outside the
/// protocol's vocabulary land in the `other` family, keeping the registry
/// keyed by `&'static str` without leaking client-controlled strings into
/// metric names.
pub fn op_counter(op: &str, ok: bool) -> &'static str {
    match (op, ok) {
        ("run", true) => "svc.requests.run.ok",
        ("run", false) => "svc.requests.run.error",
        ("ping", true) => "svc.requests.ping.ok",
        ("ping", false) => "svc.requests.ping.error",
        ("stats", true) => "svc.requests.stats.ok",
        ("stats", false) => "svc.requests.stats.error",
        ("metrics", true) => "svc.requests.metrics.ok",
        ("metrics", false) => "svc.requests.metrics.error",
        ("log", true) => "svc.requests.log.ok",
        ("log", false) => "svc.requests.log.error",
        ("shutdown", true) => "svc.requests.shutdown.ok",
        ("shutdown", false) => "svc.requests.shutdown.error",
        ("bad", _) => "svc.requests.bad.error",
        ("unknown", _) => "svc.requests.unknown.error",
        (_, true) => "svc.requests.other.ok",
        (_, false) => "svc.requests.other.error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_trace_ids_are_distinct_and_well_formed() {
        let a = TraceCtx::fresh();
        let b = TraceCtx::fresh();
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.trace_id.len(), 16);
        assert!(a.trace_id.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(a.span_id, 1);
    }

    #[test]
    fn trace_ctx_round_trips_through_json() {
        let ctx = TraceCtx::fresh().child(7);
        let back = TraceCtx::from_json(&ctx.to_json()).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(TraceCtx::from_json(&Value::Null), None);
        // A trace object without a span id still parses (span 0 = unknown).
        let partial = Value::object(vec![("trace_id", "abcd".into())]);
        assert_eq!(TraceCtx::from_json(&partial).unwrap().span_id, 0);
    }

    #[test]
    fn requests_feed_counters_histograms_and_the_log() {
        let t = Telemetry::new();
        t.request(RequestRecord {
            trace_id: "aaaa".into(),
            op: "run",
            ok: true,
            detail: "3 cells".into(),
            wall_secs: 0.002,
        });
        t.request(RequestRecord {
            trace_id: "bbbb".into(),
            op: "ping",
            ok: true,
            detail: String::new(),
            wall_secs: 0.0001,
        });
        let reg = t.registry();
        assert_eq!(reg.counter("svc.requests.run.ok"), 1);
        assert_eq!(reg.counter("svc.requests.ping.ok"), 1);
        assert_eq!(reg.histogram("svc.request_us").unwrap().count(), 2);
        assert_eq!(reg.histogram("svc.run_us").unwrap().count(), 1);
        let tail = t.log_tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0]["op"].as_str(), Some("run"));
        assert_eq!(tail[1]["trace_id"].as_str(), Some("bbbb"));
    }

    #[test]
    fn log_ring_is_bounded_and_keeps_the_newest() {
        let t = Telemetry::new();
        for i in 0..(LOG_CAP + 10) {
            t.request(RequestRecord {
                trace_id: format!("{i:04x}"),
                op: "ping",
                ok: true,
                detail: String::new(),
                wall_secs: 0.0,
            });
        }
        let tail = t.log_tail(LOG_CAP * 2);
        assert_eq!(tail.len(), LOG_CAP);
        assert_eq!(tail[0]["seq"].as_u64(), Some(10));
        assert_eq!(
            tail.last().unwrap()["seq"].as_u64(),
            Some(LOG_CAP as u64 + 9)
        );
        // A short tail returns the newest slice, oldest first.
        let last3 = t.log_tail(3);
        assert_eq!(last3.len(), 3);
        assert_eq!(last3[0]["seq"].as_u64(), Some(LOG_CAP as u64 + 7));
    }

    #[test]
    fn unknown_ops_map_to_the_other_family() {
        assert_eq!(op_counter("frobnicate", true), "svc.requests.other.ok");
        assert_eq!(op_counter("bad", false), "svc.requests.bad.error");
    }
}
