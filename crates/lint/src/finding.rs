//! Typed lint findings: stable codes, severities, allowlist handling and
//! deny-set parsing.
//!
//! Every finding carries a stable code (`L001`-style) and a stable key
//! (`"CODE bench site subject"`) so that allowlists and CI deny gates keep
//! working when messages are reworded.

use obs::json::Value;
use std::collections::BTreeSet;

/// Stable lint codes. The numeric part never changes meaning; retired codes
/// are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `L001`: two different threads write the same element inside one
    /// parallel region.
    WriteWriteRace,
    /// `L002`: one thread reads an element another thread writes inside the
    /// same parallel region.
    ReadWriteRace,
    /// `L003`: writes from distinct threads land in the same cache line
    /// (line size [`ccnuma::LINE_SIZE`]) inside one parallel region.
    FalseSharing,
    /// `L004`: the symbolic replay of the UPMlib competitive-migration loop
    /// predicts this page will ping-pong between two nodes and be frozen.
    PredictedFrozen,
    /// `L005`: a page is first-touched by a thread on a node that is not
    /// the page's dominant accessor during the timed iterations.
    FirstTouchMismatch,
    /// `L006`: upper bound on the latency a perfect per-phase migration of
    /// this phase's pages could save (informational).
    MigrationBenefit,
    /// `L007`: a page's dominant accessing node changes between two
    /// consecutive phases of one iteration (migration ping-pong fuel).
    DominantFlip,
    /// `L008`: a reduction whose partial-sum partition depends on the team
    /// size, so results are not bit-reproducible across team sizes.
    TeamSensitiveReduction,
    /// `L009`: placement synthesis found pages with no phase-invariant
    /// dominant node (an `L007` flip), so their static prescription is a
    /// low-confidence weighted compromise.
    LowConfidencePlacement,
}

/// Severity attached to each code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory output; never fails a gate by category.
    Info,
    /// Suspicious but possibly benign; allowlistable.
    Warning,
    /// Almost certainly a correctness bug.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON and human rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl Code {
    /// The stable `L00x` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::WriteWriteRace => "L001",
            Code::ReadWriteRace => "L002",
            Code::FalseSharing => "L003",
            Code::PredictedFrozen => "L004",
            Code::FirstTouchMismatch => "L005",
            Code::MigrationBenefit => "L006",
            Code::DominantFlip => "L007",
            Code::TeamSensitiveReduction => "L008",
            Code::LowConfidencePlacement => "L009",
        }
    }

    /// Parse an `L00x` code string.
    pub fn parse(s: &str) -> Option<Code> {
        Code::all().into_iter().find(|c| c.as_str() == s)
    }

    /// One-line title of the lint.
    pub fn title(self) -> &'static str {
        match self {
            Code::WriteWriteRace => "write-write data race",
            Code::ReadWriteRace => "read-write data race",
            Code::FalseSharing => "false sharing within a cache line",
            Code::PredictedFrozen => "predicted ping-pong page (would be frozen)",
            Code::FirstTouchMismatch => "first touch on non-dominant node",
            Code::MigrationBenefit => "static migration-benefit bound",
            Code::DominantFlip => "dominant node flips between phases",
            Code::TeamSensitiveReduction => "reduction not team-size reproducible",
            Code::LowConfidencePlacement => "low-confidence static placement (flip pages)",
        }
    }

    /// Severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::WriteWriteRace | Code::ReadWriteRace => Severity::Error,
            Code::FalseSharing
            | Code::PredictedFrozen
            | Code::FirstTouchMismatch
            | Code::TeamSensitiveReduction
            | Code::LowConfidencePlacement => Severity::Warning,
            Code::MigrationBenefit | Code::DominantFlip => Severity::Info,
        }
    }

    /// Deny-gate category the code belongs to.
    pub fn category(self) -> &'static str {
        match self {
            Code::WriteWriteRace | Code::ReadWriteRace => "races",
            Code::FalseSharing => "false-sharing",
            Code::PredictedFrozen
            | Code::FirstTouchMismatch
            | Code::DominantFlip
            | Code::LowConfidencePlacement => "numa",
            Code::MigrationBenefit => "perf",
            Code::TeamSensitiveReduction => "determinism",
        }
    }

    /// All codes, in numeric order.
    pub fn all() -> [Code; 9] {
        [
            Code::WriteWriteRace,
            Code::ReadWriteRace,
            Code::FalseSharing,
            Code::PredictedFrozen,
            Code::FirstTouchMismatch,
            Code::MigrationBenefit,
            Code::DominantFlip,
            Code::TeamSensitiveReduction,
            Code::LowConfidencePlacement,
        ]
    }
}

/// One lint finding, aggregated per (code, benchmark, site, subject).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The stable lint code.
    pub code: Code,
    /// Benchmark label (`BT`, `SP`, `CG`, `MG`, `FT`).
    pub bench: String,
    /// Where the finding anchors: a loop name, a phase name, or a phase
    /// transition `a->b`.
    pub site: String,
    /// What it is about — usually an array name, `*` for cross-array sites.
    pub subject: String,
    /// How many elements / lines / pages are affected.
    pub count: u64,
    /// Human-readable explanation with a concrete example.
    pub message: String,
}

impl Finding {
    /// The severity of this finding (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Stable identity used by allowlists: `"CODE bench site subject"`.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} {}",
            self.code.as_str(),
            self.bench,
            self.site,
            self.subject
        )
    }

    /// JSON rendering (via the `obs` JSON model).
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("code", self.code.as_str().into()),
            ("severity", self.severity().as_str().into()),
            ("title", self.code.title().into()),
            ("bench", self.bench.as_str().into()),
            ("site", self.site.as_str().into()),
            ("subject", self.subject.as_str().into()),
            ("count", self.count.into()),
            ("message", self.message.as_str().into()),
        ])
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "{} {:<7} [{}] {}/{}: {}",
            self.code.as_str(),
            self.severity().as_str(),
            self.bench,
            self.site,
            self.subject,
            self.message
        )
    }
}

/// A checked-in list of finding keys that are understood and accepted.
///
/// Format: one [`Finding::key`] per line; blank lines and `#` comments are
/// ignored.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    keys: BTreeSet<String>,
}

impl Allowlist {
    /// An empty allowlist (nothing is waived).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parse allowlist text.
    pub fn from_text(text: &str) -> Self {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Self { keys }
    }

    /// Load an allowlist file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::from_text(&std::fs::read_to_string(path)?))
    }

    /// Whether `finding` is waived.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.keys.contains(&finding.key())
    }

    /// Number of waived keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the list waives nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Parse a `--deny` specification: a comma-separated list of categories
/// (`races`, `false-sharing`, `numa`, `perf`, `determinism`, `all`) and/or
/// raw codes (`L003`).
pub fn parse_deny(spec: &str) -> Result<BTreeSet<Code>, String> {
    let mut deny = BTreeSet::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if part == "all" {
            deny.extend(Code::all());
        } else if let Some(code) = Code::parse(part) {
            deny.insert(code);
        } else {
            let matched: Vec<Code> = Code::all()
                .into_iter()
                .filter(|c| c.category() == part)
                .collect();
            if matched.is_empty() {
                return Err(format!(
                    "unknown deny category or code `{part}` (categories: races, \
                     false-sharing, numa, perf, determinism, all; codes: L001..L009)"
                ));
            }
            deny.extend(matched);
        }
    }
    Ok(deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in Code::all() {
            assert_eq!(Code::parse(code.as_str()), Some(code));
        }
        assert_eq!(Code::parse("L999"), None);
    }

    #[test]
    fn deny_categories_expand() {
        let races = parse_deny("races").unwrap();
        assert_eq!(
            races.into_iter().collect::<Vec<_>>(),
            vec![Code::WriteWriteRace, Code::ReadWriteRace]
        );
        let mixed = parse_deny("false-sharing,L008").unwrap();
        assert!(mixed.contains(&Code::FalseSharing));
        assert!(mixed.contains(&Code::TeamSensitiveReduction));
        assert_eq!(parse_deny("all").unwrap().len(), 9);
        assert!(parse_deny("bogus").is_err());
    }

    #[test]
    fn allowlist_matches_keys_and_skips_comments() {
        let f = Finding {
            code: Code::FalseSharing,
            bench: "BT".into(),
            site: "z_solve".into(),
            subject: "bt.rhs".into(),
            count: 3,
            message: "irrelevant".into(),
        };
        let allow = Allowlist::from_text("# comment\n\nL003 BT z_solve bt.rhs\n");
        assert!(allow.allows(&f));
        assert_eq!(allow.len(), 1);
        let other = Allowlist::from_text("L003 SP z_solve sp.rhs\n");
        assert!(!other.allows(&f));
    }

    #[test]
    fn key_is_stable_under_message_changes() {
        let mut f = Finding {
            code: Code::WriteWriteRace,
            bench: "CG".into(),
            site: "spmv".into(),
            subject: "cg.q".into(),
            count: 1,
            message: "v1".into(),
        };
        let k = f.key();
        f.message = "reworded".into();
        f.count = 99;
        assert_eq!(f.key(), k);
        assert_eq!(k, "L001 CG spmv cg.q");
    }
}
