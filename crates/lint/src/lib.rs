//! Static NUMA/race analyzer for the benchmark kernels.
//!
//! The paper's whole argument rests on how the NAS kernels' parallel loops
//! touch memory: first-touch placement, remote-dominated pages, the
//! competitive migration criterion, the ping-pong freezer. All of that is a
//! function of the *static* parallel structure — schedules, chunk ownership
//! maps, per-iteration access patterns — which the kernels now expose as
//! [`nas::KernelModel`] descriptors. This crate analyzes those descriptors
//! without running the machine simulation and reports typed findings:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `L001` | error | write-write element overlap between threads in one region |
//! | `L002` | error | read-write element overlap between threads in one region |
//! | `L003` | warning | distinct-thread writes in one cache line (false sharing) |
//! | `L004` | warning | page the UPMlib ping-pong freezer is predicted to freeze |
//! | `L005` | warning | page first-touched on a non-dominant node |
//! | `L006` | info | static upper bound on per-phase migration benefit |
//! | `L007` | info | dominant node flips between consecutive phases |
//! | `L008` | warning | reduction result depends on team size |
//! | `L009` | warning | static placement prescription is low-confidence (flip pages) |
//!
//! The predictions are *cross-checked against the dynamic simulator* by the
//! differential suite in `tests/`: every statically flagged ping-pong page
//! must be frozen by a real UPMlib run (and no frozen page may go
//! unflagged), predicted first-touch placement must match the machine's
//! page table after a real cold start, and the `L008` predicate must agree
//! with bit-level reproducibility of real runs across team sizes.
//!
//! Entry point: [`analyze`] with a [`LintConfig`]; `xp lint` drives it for
//! all five benchmarks and gates CI with `--deny races,false-sharing`
//! against the checked-in `lint.allow` allowlist.
//!
//! Beyond diagnostics, [`synth::synthesize`] turns the same access models
//! into *prescriptions*: a deterministic [`synth::PlacementMap`] (vpage →
//! node) installable as `vmm::PlacementScheme::Static`, cross-checked
//! page-for-page against the dynamic engine's converged placement.

#![deny(missing_docs)]

pub mod analyze;
pub mod finding;
pub mod replay;
pub mod synth;

pub use analyze::{analyze, Analysis, LintConfig};
pub use finding::{parse_deny, Allowlist, Code, Finding, Severity};
pub use replay::{CountTable, UpmReplay};
pub use synth::{synthesize, Confidence, PlacementMap};
