//! Placement synthesis: turn the analyzer's diagnostics into prescriptions.
//!
//! [`synthesize`] walks a [`nas::KernelModel`] exactly like the analyzer's
//! Pass B — first-touch replay in tid order over `Schedule::static_chunks`
//! ownership, per-phase per-page per-node reference counts — and emits a
//! [`PlacementMap`]: a deterministic vpage → node prescription that a run
//! can install *before* the cold start (`vmm::PlacementScheme::Static`),
//! answering the question the paper left open: what does dynamic migration
//! still buy when a static tool already placed every page on its dominant
//! node?
//!
//! The placement rule has two tiers:
//!
//! * **Stable pages** (no `L007` phase-dominance flip): the page is placed
//!   where the symbolic UPMlib replay ([`crate::UpmReplay`]) *converges* it
//!   when seeded from the predicted first-touch placement and run over the
//!   per-iteration count totals. With iteration-invariant counts the replay
//!   lands every moved page on its global argmax node and deactivates, so
//!   this matches the dynamic engine's converged placement page-for-page —
//!   the differential suite in `tests/` asserts exactly that against real
//!   ft+UPMlib runs.
//! * **Flip pages** (dominant node changes between consecutive phases, the
//!   `L007` predicate): no single home is right for every phase, so the
//!   conflict is resolved by *write-biased weighted dominance* — per-node
//!   counts summed over all timed phases with writes weighted
//!   [`WRITE_WEIGHT`]× (a store to a remote line costs a read-for-ownership
//!   plus the writeback), ties toward the lower node id. These pages carry
//!   [`Confidence::Flip`] and surface as `L009` findings; the residual
//!   migration traffic the static placement leaves behind is quantified by
//!   re-running the replay seeded with the synthesized map.

use crate::analyze::LintConfig;
use crate::finding::{Code, Finding};
use crate::replay::{CountTable, UpmReplay};
use ccnuma::{vpage_of, AccessKind, NodeId};
use nas::KernelModel;
use obs::json::Value;
use std::collections::{BTreeMap, BTreeSet};
use vmm::StaticMap;

/// Weight applied to write accesses when resolving flip-page conflicts.
/// A remote store costs a read-for-ownership plus the eventual writeback,
/// so writes pull a page toward the writing node harder than reads do.
pub const WRITE_WEIGHT: u64 = 2;

/// How sure the synthesizer is about one page's prescription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// The page's dominant node is phase-invariant; the prescription equals
    /// the placement the dynamic UPMlib engine converges to.
    Stable,
    /// The dominant node flips between consecutive phases (`L007`); the
    /// prescription is the write-biased weighted dominant and some remote
    /// traffic is unavoidable wherever the page lands.
    Flip,
}

impl Confidence {
    /// Lower-case label used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Confidence::Stable => "stable",
            Confidence::Flip => "flip",
        }
    }
}

/// One page's synthesized prescription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAssignment {
    /// Home node the page should be placed on before the cold start.
    pub node: NodeId,
    /// Whether the dominant node is phase-invariant.
    pub confidence: Confidence,
}

/// Per-array explanation of what was prescribed and why.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRationale {
    /// Array name (e.g. `cg.a`).
    pub array: String,
    /// Pages of this array that received a prescription.
    pub pages: u64,
    /// Pages whose dominant node flips across phases ([`Confidence::Flip`]).
    pub flip_pages: u64,
    /// First vpage of the array's virtual range (inclusive).
    pub first_vpage: u64,
    /// Last vpage of the array's virtual range (inclusive).
    pub last_vpage: u64,
    /// `node:count` histogram of the prescribed homes, node-id order.
    pub distribution: String,
    /// One-line human rationale.
    pub rationale: String,
}

/// A deterministic, JSON-serializable static placement prescription for one
/// benchmark: every touched page mapped to exactly one node, with per-array
/// rationale and per-page confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementMap {
    bench: String,
    threads: usize,
    nodes: usize,
    pages: BTreeMap<u64, PageAssignment>,
    arrays: Vec<ArrayRationale>,
    /// vpage → times the re-seeded replay still moved it (flip residue).
    residual: BTreeMap<u64, u64>,
}

impl PlacementMap {
    /// Benchmark label the map was synthesized for.
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// Team size the ownership maps were evaluated for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Node count of the target machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The prescription: vpage → assignment, sorted by vpage.
    pub fn pages(&self) -> &BTreeMap<u64, PageAssignment> {
        &self.pages
    }

    /// Per-array rationale, in `KernelModel::arrays` order.
    pub fn arrays(&self) -> &[ArrayRationale] {
        &self.arrays
    }

    /// Sorted vpages carrying [`Confidence::Flip`].
    pub fn flip_pages(&self) -> Vec<u64> {
        self.pages
            .iter()
            .filter(|(_, a)| a.confidence == Confidence::Flip)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Per-page residual migration counts: how often the symbolic UPMlib
    /// replay, seeded with *this* map, still moves each page. Empty when the
    /// static placement is already the engine's fixpoint.
    pub fn residual_by_page(&self) -> &BTreeMap<u64, u64> {
        &self.residual
    }

    /// Total residual migrations the static placement leaves behind.
    pub fn residual_migrations(&self) -> u64 {
        self.residual.values().sum()
    }

    /// The installable `vmm` placement map (page → node, content
    /// fingerprint).
    pub fn to_static(&self) -> StaticMap {
        StaticMap::new(self.pages.iter().map(|(&p, a)| (p, a.node)).collect())
    }

    /// Content fingerprint of the prescription (stable across processes;
    /// identical to [`StaticMap::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        self.to_static().fingerprint().to_string()
    }

    /// Deterministic JSON rendering: byte-identical across runs and
    /// processes (all maps are ordered, all numbers integral).
    pub fn to_json(&self) -> Value {
        let pages = self
            .pages
            .iter()
            .map(|(&vpage, a)| {
                Value::object(vec![
                    ("vpage", vpage.into()),
                    ("node", (a.node as u64).into()),
                    ("confidence", a.confidence.as_str().into()),
                ])
            })
            .collect();
        let arrays = self
            .arrays
            .iter()
            .map(|a| {
                Value::object(vec![
                    ("array", a.array.as_str().into()),
                    ("pages", a.pages.into()),
                    ("flip_pages", a.flip_pages.into()),
                    ("distribution", a.distribution.as_str().into()),
                    ("rationale", a.rationale.as_str().into()),
                ])
            })
            .collect();
        let residual = self
            .residual
            .iter()
            .map(|(&vpage, &moves)| {
                Value::object(vec![("vpage", vpage.into()), ("migrations", moves.into())])
            })
            .collect();
        Value::object(vec![
            ("bench", self.bench.as_str().into()),
            ("threads", (self.threads as u64).into()),
            ("nodes", (self.nodes as u64).into()),
            ("fingerprint", self.fingerprint().as_str().into()),
            ("pages", Value::Array(pages)),
            ("arrays", Value::Array(arrays)),
            ("residual", Value::Array(residual)),
            ("residual_migrations", self.residual_migrations().into()),
        ])
    }

    /// `L009` findings: one per array that owns flip pages. The key format
    /// for `lint.allow` is `L009 BENCH synth ARRAY`.
    pub fn findings(&self) -> Vec<Finding> {
        let mut per_array: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for (&page, a) in &self.pages {
            if a.confidence != Confidence::Flip {
                continue;
            }
            let subject = self
                .arrays
                .iter()
                .find(|r| (r.first_vpage..=r.last_vpage).contains(&page))
                .map(|r| r.array.clone())
                .unwrap_or_else(|| "?".to_string());
            let entry = per_array.entry(subject).or_insert((0, 0, 0));
            if entry.0 == 0 {
                entry.1 = page;
            }
            entry.0 += 1;
            entry.2 += self.residual.get(&page).copied().unwrap_or(0);
        }
        per_array
            .into_iter()
            .map(|(subject, (count, example, residual))| Finding {
                code: Code::LowConfidencePlacement,
                bench: self.bench.clone(),
                site: "synth".to_string(),
                subject,
                count,
                message: format!(
                    "{count} pages have no phase-invariant home (e.g. vpage \
                     {example:#x}); placed on the write-biased weighted \
                     dominant node, leaving {residual} residual migrations \
                     if UPMlib also runs"
                ),
            })
            .collect()
    }
}

/// Synthesize a static placement prescription for `model` on the machine and
/// team described by `cfg`. Deterministic: same model + config → the same
/// map, bit for bit.
pub fn synthesize(model: &KernelModel, cfg: &LintConfig) -> PlacementMap {
    let topo = &cfg.machine.topology;
    let nodes = topo.nodes();
    let cpus = topo.cpus();
    let node_of_tid = |tid: usize| topo.node_of_cpu(tid % cpus);

    // ---- Replay Pass B: first-touch homes + per-phase count tables. ----
    // Threads execute in tid order in the sequential simulator, so visiting
    // ownership chunks in tid order reproduces first-touch placement.
    let mut homes: BTreeMap<u64, NodeId> = BTreeMap::new();
    let mut weighted: CountTable = CountTable::new();
    let mut phase_counts: Vec<(String, CountTable)> = Vec::new();
    let mut totals: CountTable = CountTable::new();
    for phase in model.cold() {
        for lp in phase.loops() {
            for (tid, chunks) in lp.ownership(cfg.threads).iter().enumerate() {
                let node = node_of_tid(tid);
                for &(start, end) in chunks {
                    for i in start..end {
                        lp.for_each_access(i, &mut |va, _| {
                            homes.entry(vpage_of(va)).or_insert(node);
                        });
                    }
                }
            }
        }
    }
    for phase in model.iteration() {
        let mut table = CountTable::new();
        for lp in phase.loops() {
            for (tid, chunks) in lp.ownership(cfg.threads).iter().enumerate() {
                let node = node_of_tid(tid);
                for &(start, end) in chunks {
                    for i in start..end {
                        lp.for_each_access(i, &mut |va, kind| {
                            let page = vpage_of(va);
                            homes.entry(page).or_insert(node);
                            table.entry(page).or_insert_with(|| vec![0; nodes])[node] += 1;
                            let w = if kind == AccessKind::Write {
                                WRITE_WEIGHT
                            } else {
                                1
                            };
                            weighted.entry(page).or_insert_with(|| vec![0; nodes])[node] += w;
                        });
                    }
                }
            }
        }
        for (&page, cnts) in &table {
            let t = totals.entry(page).or_insert_with(|| vec![0; nodes]);
            for (n, &c) in cnts.iter().enumerate() {
                t[n] += c;
            }
        }
        phase_counts.push((phase.name().to_string(), table));
    }

    let dominant = |cnts: &[u64]| -> NodeId {
        let mut best = 0usize;
        for (n, &c) in cnts.iter().enumerate() {
            if c > cnts[best] {
                best = n;
            }
        }
        best
    };

    // ---- Stable tier: where does the dynamic engine converge? ----
    let mut replay = UpmReplay::new(homes.clone(), nodes, cfg.upm);
    replay.run_to_fixpoint(&totals, cfg.iterations);
    let converged = replay.homes().clone();

    // ---- Flip tier: the L007 predicate, page-granular. ----
    let min = cfg.upm.min_accesses as u64;
    let mut flips: BTreeSet<u64> = BTreeSet::new();
    for pair in phase_counts.windows(2) {
        let (a_name, a) = &pair[0];
        let (b_name, b) = &pair[1];
        if a_name == b_name {
            continue;
        }
        for (&page, ca) in a {
            let Some(cb) = b.get(&page) else { continue };
            if ca.iter().sum::<u64>() < min || cb.iter().sum::<u64>() < min {
                continue;
            }
            if dominant(ca) != dominant(cb) {
                flips.insert(page);
            }
        }
    }

    // ---- Merge: converged homes for stable pages, write-biased weighted
    // dominance for flip pages. ----
    let mut pages: BTreeMap<u64, PageAssignment> = BTreeMap::new();
    for (&page, &home) in &converged {
        let (node, confidence) = if flips.contains(&page) {
            let cnts = weighted
                .get(&page)
                .expect("flip pages have iteration counts");
            (dominant(cnts), Confidence::Flip)
        } else {
            (home, Confidence::Stable)
        };
        pages.insert(page, PageAssignment { node, confidence });
    }

    // ---- Residual traffic: re-run the engine seeded with the map. ----
    let static_homes: BTreeMap<u64, NodeId> = pages.iter().map(|(&p, a)| (p, a.node)).collect();
    let mut residual: BTreeMap<u64, u64> = BTreeMap::new();
    let mut recheck = UpmReplay::new(static_homes, nodes, cfg.upm);
    for _ in 0..cfg.iterations {
        if !recheck.is_active() {
            break;
        }
        let before = recheck.homes().clone();
        recheck.invoke(&totals);
        for (&p, &n) in recheck.homes() {
            if before.get(&p) != Some(&n) {
                *residual.entry(p).or_insert(0) += 1;
            }
        }
    }

    // ---- Per-array rationale. ----
    let mut arrays = Vec::new();
    for layout in model.arrays() {
        let (base, bytes) = layout.vrange();
        if bytes == 0 {
            continue;
        }
        let (lo, hi) = (vpage_of(base), vpage_of(base + bytes - 1));
        let mut count = 0u64;
        let mut flip_count = 0u64;
        let mut hist = vec![0u64; nodes];
        for (_, a) in pages.range(lo..=hi) {
            count += 1;
            hist[a.node] += 1;
            if a.confidence == Confidence::Flip {
                flip_count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        let distribution = hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        let rationale = if flip_count == 0 {
            format!(
                "{count} pages on the replay-converged dominant nodes \
                 (phase-invariant; matches UPMlib's converged placement)"
            )
        } else {
            format!(
                "{} pages on replay-converged nodes; {flip_count} flip pages \
                 on the write-biased weighted dominant (no phase-invariant \
                 home exists)",
                count - flip_count
            )
        };
        arrays.push(ArrayRationale {
            array: layout.name().to_string(),
            pages: count,
            flip_pages: flip_count,
            first_vpage: lo,
            last_vpage: hi,
            distribution,
            rationale,
        });
    }

    PlacementMap {
        bench: model.bench().label().to_string(),
        threads: cfg.threads,
        nodes,
        pages,
        arrays,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{Machine, MachineConfig, SimArray};
    use nas::{BenchName, LoopModel, PhaseModel};
    use omp::Schedule;

    fn tiny_cfg() -> LintConfig {
        LintConfig {
            threads: 4,
            machine: MachineConfig::tiny_test(),
            upm: upmlib::UpmOptions::default(),
            iterations: 8,
        }
    }

    /// A model whose hot loop is striped: each thread owns its pages, so
    /// every page is stable and home = first-touch = converged.
    fn striped_model() -> KernelModel {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let arr = SimArray::<f64>::new(&mut m, "t.a", 8192, 0.0);
        let base = arr.vrange().0;
        let hot = LoopModel::parallel("hot", 8192, Schedule::Static, move |i, emit| {
            emit(base + 8 * i as u64, AccessKind::Write)
        });
        KernelModel::new(
            BenchName::Cg,
            vec![arr.layout()],
            vec![],
            vec![PhaseModel::new("it", vec![hot])],
        )
    }

    /// Two phases with opposite dominance over one shared page set: every
    /// hot page flips.
    fn flipping_model() -> (KernelModel, u64) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let arr = SimArray::<f64>::new(&mut m, "t.f", 4096, 0.0);
        let base = arr.vrange().0;
        // Phase A: thread 0 (node 0) re-reads everything heavily.
        let a = LoopModel::parallel("phase_a", 4, Schedule::Static, move |i, emit| {
            if i == 0 {
                for k in 0..4096u64 {
                    for _ in 0..4 {
                        emit(base + 8 * k, AccessKind::Read);
                    }
                }
            }
        });
        // Phase B: thread 3 (node 1 on tiny_test) WRITES everything heavily.
        let b = LoopModel::parallel("phase_b", 4, Schedule::Static, move |i, emit| {
            if i == 3 {
                for k in 0..4096u64 {
                    for _ in 0..4 {
                        emit(base + 8 * k, AccessKind::Write);
                    }
                }
            }
        });
        (
            KernelModel::new(
                BenchName::Cg,
                vec![arr.layout()],
                vec![],
                vec![PhaseModel::new("a", vec![a]), PhaseModel::new("b", vec![b])],
            ),
            base,
        )
    }

    #[test]
    fn striped_pages_are_stable_and_match_first_touch() {
        let model = striped_model();
        let cfg = tiny_cfg();
        let map = synthesize(&model, &cfg);
        assert!(!map.pages().is_empty());
        assert!(map
            .pages()
            .values()
            .all(|a| a.confidence == Confidence::Stable));
        assert!(map.flip_pages().is_empty());
        assert_eq!(map.residual_migrations(), 0);
        assert!(map.findings().is_empty());
        // Stable prescriptions equal the analyzer's converged prediction.
        let analysis = crate::analyze(&model, &cfg);
        for (page, a) in map.pages() {
            assert_eq!(analysis.first_touch[page], a.node, "vpage {page:#x}");
        }
        // Every node id is in range.
        assert!(map.pages().values().all(|a| a.node < map.nodes()));
    }

    #[test]
    fn flip_pages_get_write_biased_dominant_and_l009() {
        let (model, _) = flipping_model();
        let cfg = tiny_cfg();
        let map = synthesize(&model, &cfg);
        let flips = map.flip_pages();
        assert!(!flips.is_empty(), "opposite dominance must flip");
        // Phase B writes (weight 2) from node 1 outweigh phase A reads from
        // node 0 at equal raw counts: flip pages land on node 1.
        for page in &flips {
            assert_eq!(map.pages()[page].node, 1, "vpage {page:#x}");
            assert_eq!(map.pages()[page].confidence, Confidence::Flip);
        }
        let findings = map.findings();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].code, Code::LowConfidencePlacement);
        assert_eq!(findings[0].key(), "L009 CG synth t.f");
        assert_eq!(findings[0].count, flips.len() as u64);
    }

    #[test]
    fn json_is_deterministic_and_round_trips() {
        let (model, _) = flipping_model();
        let cfg = tiny_cfg();
        let a = synthesize(&model, &cfg);
        let b = synthesize(&model, &cfg);
        assert_eq!(a, b);
        let ja = a.to_json().to_string_pretty();
        let jb = b.to_json().to_string_pretty();
        assert_eq!(ja, jb, "synthesis must be bit-identical across runs");
        let parsed = obs::json::Value::parse(&ja).expect("valid JSON");
        assert_eq!(
            parsed.get("fingerprint").and_then(Value::as_str),
            Some(a.fingerprint().as_str())
        );
        assert_eq!(parsed["bench"].as_str(), Some("CG"));
    }

    #[test]
    fn static_map_agrees_with_prescription() {
        let model = striped_model();
        let map = synthesize(&model, &tiny_cfg());
        let stat = map.to_static();
        assert_eq!(stat.len(), map.pages().len());
        for (&page, a) in map.pages() {
            assert_eq!(stat.node_of(page), Some(a.node));
        }
        assert_eq!(stat.fingerprint(), map.fingerprint());
    }
}
