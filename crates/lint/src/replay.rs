//! Symbolic replay of the UPMlib competitive-migration loop.
//!
//! [`UpmReplay`] runs the exact decision procedure of
//! `upmlib::UpmEngine::migrate_memory` — the §3.3 competitive criterion,
//! vpage scan order, the deactivate-on-no-move rule and the ping-pong
//! freezer (it reuses `upmlib::freeze::FreezeTracker` verbatim) — but over
//! *static per-page access-count tables* instead of the simulated machine's
//! hardware counters. The static analyzer derives those tables from the
//! kernels' access models, which lets it predict, without running the
//! machine simulation, which pages the dynamic engine would migrate and
//! which it would freeze.
//!
//! Two fidelity caveats, both conservative:
//!
//! * static counts include every modelled access, while the hardware
//!   counters only count the cache-miss slow path — so static dominance
//!   ratios are an upper bound on what the engine observes;
//! * the replay applies one count table per invocation (the engine resets
//!   its counters after every invocation, so each dynamic invocation also
//!   sees exactly one iteration's worth of references).

use ccnuma::NodeId;
use std::collections::BTreeMap;
use upmlib::freeze::FreezeTracker;
use upmlib::UpmOptions;

/// Per-page, per-node access counts for one observation window (one timed
/// iteration), keyed by virtual page number.
pub type CountTable = BTreeMap<u64, Vec<u64>>;

/// The symbolic migration engine.
#[derive(Debug)]
pub struct UpmReplay {
    options: UpmOptions,
    nodes: usize,
    homes: BTreeMap<u64, NodeId>,
    freeze: FreezeTracker,
    invocations: u64,
    active: bool,
    migrations: Vec<u64>,
}

impl UpmReplay {
    /// Create a replay over `nodes` NUMA nodes with the given initial page
    /// placement (vpage → home node, normally the first-touch prediction).
    pub fn new(homes: BTreeMap<u64, NodeId>, nodes: usize, options: UpmOptions) -> Self {
        Self {
            options,
            nodes,
            homes,
            freeze: FreezeTracker::new(),
            invocations: 0,
            active: true,
            migrations: Vec::new(),
        }
    }

    /// Whether the engine is still armed (it self-deactivates the first
    /// time an invocation moves nothing, like the dynamic engine).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Current predicted placement.
    pub fn homes(&self) -> &BTreeMap<u64, NodeId> {
        &self.homes
    }

    /// Pages the ping-pong freezer froze, sorted by vpage.
    pub fn frozen_pages(&self) -> Vec<u64> {
        self.freeze.frozen_pages()
    }

    /// Pages moved per invocation, in invocation order.
    pub fn migrations_per_invocation(&self) -> &[u64] {
        &self.migrations
    }

    /// One `migrate_memory` invocation against `counts`. Returns the number
    /// of pages moved. Mirrors `UpmEngine::migrate_memory` decision for
    /// decision: vpage scan order, the `rmax >= min_accesses` floor, the
    /// `rmax/local > thr` competitive criterion with `local == 0` treated
    /// as infinitely remote-dominated, strict-greater remote maximum with
    /// ties toward the lower node id, freezer veto, and deactivation when
    /// nothing moves.
    pub fn invoke(&mut self, counts: &CountTable) -> usize {
        if !self.active {
            return 0;
        }
        self.invocations += 1;
        let invocation = self.invocations;
        let mut moved = 0usize;
        for (&vpage, node_counts) in counts {
            let Some(&home) = self.homes.get(&vpage) else {
                continue;
            };
            let local = node_counts.get(home).copied().unwrap_or(0);
            let mut rmax = 0u64;
            let mut target = home;
            for (n, &c) in node_counts.iter().enumerate().take(self.nodes) {
                if n != home && c > rmax {
                    rmax = c;
                    target = n;
                }
            }
            if rmax < self.options.min_accesses as u64 {
                continue;
            }
            let ratio = if local == 0 {
                f64::INFINITY
            } else {
                rmax as f64 / local as f64
            };
            if ratio <= self.options.thr {
                continue;
            }
            if target == home {
                continue;
            }
            if self.options.freeze_ping_pong
                && !self.freeze.approve(vpage, home, target, invocation)
            {
                continue;
            }
            self.homes.insert(vpage, target);
            moved += 1;
        }
        self.migrations.push(moved as u64);
        if moved == 0 {
            self.active = false;
        }
        moved
    }

    /// Run `invoke` with the same table once per iteration until the engine
    /// deactivates or `max_invocations` is reached. This models the steady
    /// state: an iterative benchmark produces the same reference trace every
    /// timed iteration.
    pub fn run_to_fixpoint(&mut self, counts: &CountTable, max_invocations: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_invocations {
            if !self.active {
                break;
            }
            total += self.invoke(counts);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(u64, Vec<u64>)]) -> CountTable {
        entries.iter().cloned().collect()
    }

    /// With iteration-invariant counts the first move lands each page on
    /// its global argmax node, after which `local` is the maximum count and
    /// no ratio can exceed `thr` again: the engine converges without ever
    /// reversing a move, so nothing is frozen. This is the theorem behind
    /// the real-model differential suite (the dynamic engine freezes no
    /// page on any benchmark either).
    #[test]
    fn invariant_counts_converge_without_freezing() {
        let homes = [(10u64, 0usize)].into_iter().collect();
        let mut replay = UpmReplay::new(homes, 4, UpmOptions::default());
        let counts = table(&[(10, vec![3, 50, 2, 0])]);
        let moved = replay.run_to_fixpoint(&counts, 16);
        assert_eq!(moved, 1);
        assert!(!replay.is_active());
        assert_eq!(replay.homes()[&10], 1);
        assert!(replay.frozen_pages().is_empty());
        assert_eq!(replay.migrations_per_invocation(), &[1, 0]);
    }

    /// Alternating dominance reproduces the ping-pong freeze: move 0→1,
    /// then the 1→0 reversal in the next invocation is vetoed and the page
    /// frozen, exactly like `FreezeTracker` under the dynamic engine.
    #[test]
    fn alternating_dominance_freezes_the_page() {
        let homes = [(7u64, 0usize)].into_iter().collect();
        let mut replay = UpmReplay::new(homes, 2, UpmOptions::default());
        let toward_1 = table(&[(7, vec![1, 40])]);
        let toward_0 = table(&[(7, vec![40, 1])]);
        assert_eq!(replay.invoke(&toward_1), 1);
        assert_eq!(replay.invoke(&toward_0), 0);
        assert_eq!(replay.frozen_pages(), vec![7]);
        assert_eq!(replay.homes()[&7], 1, "vetoed move leaves the page put");
    }

    #[test]
    fn respects_min_accesses_floor_and_threshold() {
        let homes = [(1u64, 0usize), (2, 0), (3, 0)].into_iter().collect();
        let mut replay = UpmReplay::new(homes, 2, UpmOptions::default());
        let counts = table(&[
            (1, vec![0, 7]),   // rmax below min_accesses: ignored
            (2, vec![10, 15]), // ratio 1.5 <= thr 2.0: ignored
            (3, vec![4, 9]),   // ratio 2.25 > thr: moves
        ]);
        assert_eq!(replay.invoke(&counts), 1);
        assert_eq!(replay.homes()[&1], 0);
        assert_eq!(replay.homes()[&2], 0);
        assert_eq!(replay.homes()[&3], 1);
    }

    #[test]
    fn remote_tie_breaks_toward_lower_node() {
        let homes = [(5u64, 0usize)].into_iter().collect();
        let mut replay = UpmReplay::new(homes, 4, UpmOptions::default());
        let counts = table(&[(5, vec![1, 0, 30, 30])]);
        assert_eq!(replay.invoke(&counts), 1);
        assert_eq!(replay.homes()[&5], 2);
    }
}
