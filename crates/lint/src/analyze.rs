//! The static analyzer: races, false sharing and NUMA hazards from access
//! models alone.
//!
//! The analyzer consumes a [`nas::KernelModel`] — region/phase structure,
//! `omp::Schedule::static_chunks` ownership maps and per-iteration access
//! descriptors — and checks it without running the machine simulation:
//!
//! * **conflicts** (`L001`/`L002`/`L003`): for every parallel loop, element
//!   addresses are attributed to the owning thread via the schedule's chunk
//!   map; overlapping writes between threads are races, co-located writes
//!   in one [`ccnuma::LINE_SIZE`]-byte line are false sharing;
//! * **placement** (`L005`/`L006`/`L007`): first-touch placement is
//!   replayed symbolically (threads run in tid order, exactly like the
//!   sequential simulator) and per-page per-node reference counts are
//!   accumulated per phase;
//! * **migration** (`L004`): the [`UpmReplay`] engine predicts which pages
//!   the UPMlib competitive mechanism would move and which the ping-pong
//!   freezer would freeze;
//! * **determinism** (`L008`): reductions are flagged when their
//!   fixed-block partial-sum partition varies with the team size.

use crate::finding::{Code, Finding};
use crate::replay::{CountTable, UpmReplay};
use ccnuma::{line_of, vpage_of, AccessKind, MachineConfig, NodeId, LINE_SIZE};
use nas::{KernelModel, LoopKind, PhaseModel};
use std::collections::{BTreeMap, BTreeSet};
use upmlib::UpmOptions;

/// Analyzer configuration: the machine and engine the predictions target.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Team size the ownership maps are evaluated for.
    pub threads: usize,
    /// Machine model supplying topology, latencies and migration cost.
    pub machine: MachineConfig,
    /// UPMlib tuning used by the symbolic migration replay.
    pub upm: UpmOptions,
    /// Upper bound on symbolic `migrate_memory` invocations (the replay
    /// normally deactivates much earlier, like the dynamic engine).
    pub iterations: usize,
}

impl LintConfig {
    /// The paper's configuration: 16 threads on the scaled Origin2000 with
    /// default UPMlib tuning.
    pub fn paper_default() -> Self {
        Self {
            threads: 16,
            machine: MachineConfig::origin2000_16p_scaled(),
            upm: UpmOptions::default(),
            iterations: 8,
        }
    }
}

/// The analyzer's full output.
#[derive(Debug)]
pub struct Analysis {
    /// Findings, ordered by stable key (code, bench, site, subject).
    pub findings: Vec<Finding>,
    /// Pages the symbolic UPMlib replay froze (sorted vpages) — compared
    /// against `UpmEngine::frozen_pages()` by the differential suite.
    pub predicted_frozen: Vec<u64>,
    /// Predicted first-touch placement (vpage → home node) — compared
    /// against `Machine::node_of_vpage` after a real cold start.
    pub first_touch: BTreeMap<u64, NodeId>,
}

/// Per-(code, array) aggregation while scanning one loop.
#[derive(Default)]
struct Agg {
    count: u64,
    example: u64,
    mask: u64,
}

/// Run every check against `model`.
pub fn analyze(model: &KernelModel, cfg: &LintConfig) -> Analysis {
    assert!(
        (1..=64).contains(&cfg.threads),
        "thread bitmasks are u64: team size {} out of range",
        cfg.threads
    );
    let topo = &cfg.machine.topology;
    let nodes = topo.nodes();
    let cpus = topo.cpus();
    let node_of_tid = |tid: usize| topo.node_of_cpu(tid % cpus);
    let bench = model.bench().label();
    let subject_of = |va: u64| -> String {
        model
            .array_of(va)
            .map(|a| a.name().to_string())
            .unwrap_or_else(|| "?".to_string())
    };
    let mut sink: BTreeMap<String, Finding> = BTreeMap::new();
    let record = |sink: &mut BTreeMap<String, Finding>, f: Finding| {
        sink.entry(f.key()).or_insert(f);
    };

    // ---- Pass A: per-loop conflict analysis (L001, L002, L003). ----
    let mut seen_loops: BTreeSet<String> = BTreeSet::new();
    for phase in model.cold().iter().chain(model.iteration()) {
        for lp in phase.loops() {
            if !seen_loops.insert(lp.name().to_string()) {
                continue;
            }
            let mut elems: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // va -> (readers, writers)
            let mut lines: BTreeMap<u64, u64> = BTreeMap::new(); // line -> writers
            for (tid, chunks) in lp.ownership(cfg.threads).iter().enumerate() {
                let bit = 1u64 << tid;
                for &(start, end) in chunks {
                    for i in start..end {
                        lp.for_each_access(i, &mut |va, kind| {
                            let entry = elems.entry(va).or_insert((0, 0));
                            if kind == AccessKind::Write {
                                entry.1 |= bit;
                                *lines.entry(line_of(va)).or_insert(0) |= bit;
                            } else {
                                entry.0 |= bit;
                            }
                        });
                    }
                }
            }
            let mut aggs: BTreeMap<(Code, String), Agg> = BTreeMap::new();
            for (&va, &(readers, writers)) in &elems {
                let code = if writers.count_ones() > 1 {
                    Code::WriteWriteRace
                } else if writers != 0 && readers & !writers != 0 {
                    Code::ReadWriteRace
                } else {
                    continue;
                };
                let agg = aggs.entry((code, subject_of(va))).or_default();
                if agg.count == 0 {
                    agg.example = va;
                    agg.mask = writers | readers;
                }
                agg.count += 1;
            }
            for (&line, &writers) in &lines {
                if writers.count_ones() > 1 {
                    let va = line * LINE_SIZE;
                    let agg = aggs
                        .entry((Code::FalseSharing, subject_of(va)))
                        .or_default();
                    if agg.count == 0 {
                        agg.example = va;
                        agg.mask = writers;
                    }
                    agg.count += 1;
                }
            }
            for ((code, subject), agg) in aggs {
                let what = match code {
                    Code::WriteWriteRace => "elements written by multiple threads",
                    Code::ReadWriteRace => "elements read and written by different threads",
                    _ => "cache lines written by multiple threads",
                };
                let message = format!(
                    "{} {} (e.g. vaddr {:#x}, thread mask {:#x})",
                    agg.count, what, agg.example, agg.mask
                );
                record(
                    &mut sink,
                    Finding {
                        code,
                        bench: bench.to_string(),
                        site: lp.name().to_string(),
                        subject,
                        count: agg.count,
                        message,
                    },
                );
            }
        }
    }

    // ---- Pass B: first-touch replay and per-phase reference counts. ----
    // Threads execute in tid order in the sequential simulator, so replaying
    // ownership chunks in tid order reproduces first-touch placement
    // exactly (under the identity thread→cpu binding of a fresh Runtime).
    let mut homes: BTreeMap<u64, NodeId> = BTreeMap::new();
    let mut first_site: BTreeMap<u64, String> = BTreeMap::new();
    let touch_phase = |phase: &PhaseModel,
                       homes: &mut BTreeMap<u64, NodeId>,
                       first_site: &mut BTreeMap<u64, String>,
                       mut count: Option<&mut CountTable>| {
        for lp in phase.loops() {
            for (tid, chunks) in lp.ownership(cfg.threads).iter().enumerate() {
                let node = node_of_tid(tid);
                for &(start, end) in chunks {
                    for i in start..end {
                        lp.for_each_access(i, &mut |va, _| {
                            let page = vpage_of(va);
                            homes.entry(page).or_insert_with(|| {
                                first_site.insert(page, lp.name().to_string());
                                node
                            });
                            if let Some(table) = count.as_deref_mut() {
                                table.entry(page).or_insert_with(|| vec![0; nodes])[node] += 1;
                            }
                        });
                    }
                }
            }
        }
    };
    for phase in model.cold() {
        touch_phase(phase, &mut homes, &mut first_site, None);
    }
    let mut phase_counts: Vec<(String, CountTable)> = Vec::new();
    for phase in model.iteration() {
        let mut table = CountTable::new();
        touch_phase(phase, &mut homes, &mut first_site, Some(&mut table));
        phase_counts.push((phase.name().to_string(), table));
    }
    let mut totals = CountTable::new();
    for (_, table) in &phase_counts {
        for (&page, cnts) in table {
            let t = totals.entry(page).or_insert_with(|| vec![0; nodes]);
            for (n, &c) in cnts.iter().enumerate() {
                t[n] += c;
            }
        }
    }
    let dominant = |cnts: &[u64]| -> NodeId {
        let mut best = 0usize;
        for (n, &c) in cnts.iter().enumerate() {
            if c > cnts[best] {
                best = n;
            }
        }
        best
    };

    // L005: first touch by a thread whose node is not the page's dominant
    // accessor over the timed iterations.
    let min = cfg.upm.min_accesses as u64;
    let mut mismatches: BTreeMap<String, Agg> = BTreeMap::new();
    for (&page, cnts) in &totals {
        if cnts.iter().sum::<u64>() < min {
            continue;
        }
        let dom = dominant(cnts);
        if homes[&page] != dom {
            let agg = mismatches
                .entry(subject_of(page * ccnuma::PAGE_SIZE))
                .or_default();
            if agg.count == 0 {
                agg.example = page;
            }
            agg.count += 1;
        }
    }
    for (subject, agg) in mismatches {
        let example = agg.example;
        let message = format!(
            "{} pages first-touched on a non-dominant node (e.g. vpage {:#x}, \
             first touched in `{}`); first-touch placement leaves them remote",
            agg.count,
            example,
            first_site.get(&example).map(String::as_str).unwrap_or("?")
        );
        record(
            &mut sink,
            Finding {
                code: Code::FirstTouchMismatch,
                bench: bench.to_string(),
                site: "first_touch".to_string(),
                subject,
                count: agg.count,
                message,
            },
        );
    }

    // L006: static upper bound on per-phase migration benefit.
    let lat = &cfg.machine.latency;
    let mig_cost = cfg.machine.migration_cost_ns();
    for (name, table) in &phase_counts {
        let mut pages = 0u64;
        let mut benefit_ns = 0.0f64;
        for (&page, cnts) in table {
            let cost = |node: NodeId| -> f64 {
                cnts.iter()
                    .enumerate()
                    .map(|(src, &c)| c as f64 * lat.memory_ns(topo.hops(src, node)))
                    .sum()
            };
            let here = cost(homes[&page]);
            let best = (0..nodes).map(cost).fold(f64::INFINITY, f64::min);
            let gain = here - best - mig_cost;
            if gain > 0.0 {
                pages += 1;
                benefit_ns += gain;
            }
        }
        if pages > 0 {
            let message = format!(
                "moving {} pages to their per-phase optimum would save at most \
                 {:.1} us of memory latency per iteration (counts are an upper \
                 bound on misses; {:.0} ns migration cost per page deducted)",
                pages,
                benefit_ns / 1000.0,
                mig_cost
            );
            record(
                &mut sink,
                Finding {
                    code: Code::MigrationBenefit,
                    bench: bench.to_string(),
                    site: name.clone(),
                    subject: "*".to_string(),
                    count: pages,
                    message,
                },
            );
        }
    }

    // L007: dominant accessor flips between consecutive phases — the fuel
    // that makes per-phase migration ping-pong (and the freezer necessary).
    for pair in phase_counts.windows(2) {
        let (a_name, a) = &pair[0];
        let (b_name, b) = &pair[1];
        if a_name == b_name {
            continue;
        }
        let mut flips: BTreeMap<String, Agg> = BTreeMap::new();
        for (&page, ca) in a {
            let Some(cb) = b.get(&page) else { continue };
            if ca.iter().sum::<u64>() < min || cb.iter().sum::<u64>() < min {
                continue;
            }
            if dominant(ca) != dominant(cb) {
                let agg = flips
                    .entry(subject_of(page * ccnuma::PAGE_SIZE))
                    .or_default();
                if agg.count == 0 {
                    agg.example = page;
                }
                agg.count += 1;
            }
        }
        for (subject, agg) in flips {
            let message = format!(
                "{} pages change dominant node between `{}` and `{}` \
                 (e.g. vpage {:#x}); per-phase migration would ping-pong them",
                agg.count, a_name, b_name, agg.example
            );
            record(
                &mut sink,
                Finding {
                    code: Code::DominantFlip,
                    bench: bench.to_string(),
                    site: format!("{a_name}->{b_name}"),
                    subject,
                    count: agg.count,
                    message,
                },
            );
        }
    }

    // L004: symbolic UPMlib replay over the per-iteration totals.
    let mut replay = UpmReplay::new(homes.clone(), nodes, cfg.upm);
    replay.run_to_fixpoint(&totals, cfg.iterations);
    let predicted_frozen = replay.frozen_pages();
    let mut frozen_by_array: BTreeMap<String, Agg> = BTreeMap::new();
    for &page in &predicted_frozen {
        let agg = frozen_by_array
            .entry(subject_of(page * ccnuma::PAGE_SIZE))
            .or_default();
        if agg.count == 0 {
            agg.example = page;
        }
        agg.count += 1;
    }
    for (subject, agg) in frozen_by_array {
        let message = format!(
            "{} pages predicted to ping-pong between nodes; the UPMlib freezer \
             would freeze them (e.g. vpage {:#x})",
            agg.count, agg.example
        );
        record(
            &mut sink,
            Finding {
                code: Code::PredictedFrozen,
                bench: bench.to_string(),
                site: "upm_replay".to_string(),
                subject,
                count: agg.count,
                message,
            },
        );
    }

    // L008: reductions whose fixed-block partition depends on team size.
    // `parallel_reduce` splits into REDUCTION_BLOCKS.max(threads) blocks and
    // combines per-block partials in block order, so results are
    // bit-identical across team sizes iff the block count is constant over
    // the sizes in play.
    let block_counts: BTreeSet<usize> = (1..=cfg.threads).map(omp::reduction_block_count).collect();
    if block_counts.len() > 1 {
        for phase in model.cold().iter().chain(model.iteration()) {
            for lp in phase.loops() {
                if lp.kind() != LoopKind::Reduction {
                    continue;
                }
                let message = format!(
                    "reduction splits into REDUCTION_BLOCKS.max(threads) partial \
                     blocks; the block count varies over team sizes 1..={} \
                     ({:?}), so combination order is not team-size reproducible",
                    cfg.threads, block_counts
                );
                record(
                    &mut sink,
                    Finding {
                        code: Code::TeamSensitiveReduction,
                        bench: bench.to_string(),
                        site: lp.name().to_string(),
                        subject: "partials".to_string(),
                        count: 1,
                        message,
                    },
                );
            }
        }
    }

    Analysis {
        findings: sink.into_values().collect(),
        predicted_frozen,
        first_touch: homes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::Machine;
    use nas::{BenchName, LoopModel, PhaseModel};
    use omp::Schedule;

    fn tiny_cfg() -> LintConfig {
        LintConfig {
            threads: 4,
            machine: MachineConfig::tiny_test(),
            upm: UpmOptions::default(),
            iterations: 8,
        }
    }

    #[test]
    fn disjoint_writes_are_clean() {
        let (model, _) = {
            let mut m = Machine::new(MachineConfig::tiny_test());
            let arr = ccnuma::SimArray::<f64>::new(&mut m, "t.a", 4096, 0.0);
            let base = arr.vrange().0;
            let lp = LoopModel::parallel("own", 4096, Schedule::Static, move |i, emit| {
                emit(base + 8 * i as u64, AccessKind::Write)
            });
            (
                KernelModel::new(
                    BenchName::Cg,
                    vec![arr.layout()],
                    vec![],
                    vec![PhaseModel::new("p", vec![lp])],
                ),
                base,
            )
        };
        let a = analyze(&model, &tiny_cfg());
        assert!(
            a.findings
                .iter()
                .all(|f| f.code != Code::WriteWriteRace && f.code != Code::ReadWriteRace),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn injected_overlap_is_a_write_write_race() {
        let (model, base) = {
            let mut m = Machine::new(MachineConfig::tiny_test());
            let arr = ccnuma::SimArray::<f64>::new(&mut m, "t.a", 4096, 0.0);
            let base = arr.vrange().0;
            // Every thread writes element 0: a classic unsynchronized
            // accumulation bug.
            let lp = LoopModel::parallel("accum", 4096, Schedule::Static, move |_i, emit| {
                emit(base, AccessKind::Write)
            });
            (
                KernelModel::new(
                    BenchName::Cg,
                    vec![arr.layout()],
                    vec![],
                    vec![PhaseModel::new("p", vec![lp])],
                ),
                base,
            )
        };
        let a = analyze(&model, &tiny_cfg());
        let f = a
            .findings
            .iter()
            .find(|f| f.code == Code::WriteWriteRace)
            .expect("race must be found");
        assert_eq!(f.site, "accum");
        assert_eq!(f.subject, "t.a");
        assert_eq!(f.key(), "L001 CG accum t.a");
        assert_eq!(f.example_vaddr_for_test(), base);
    }

    #[test]
    fn unaligned_chunk_boundary_is_false_sharing_not_a_race() {
        // 20 elements over 2 effective chunk owners: the boundary falls
        // mid-line (10 * 8 B = 80 B into a 128 B line).
        let (model, _) = {
            let mut m = Machine::new(MachineConfig::tiny_test());
            let arr = ccnuma::SimArray::<f64>::new(&mut m, "t.a", 20, 0.0);
            let base = arr.vrange().0;
            let lp = LoopModel::parallel("edge", 20, Schedule::Static, move |i, emit| {
                emit(base + 8 * i as u64, AccessKind::Write)
            });
            (
                KernelModel::new(
                    BenchName::Cg,
                    vec![arr.layout()],
                    vec![],
                    vec![PhaseModel::new("p", vec![lp])],
                ),
                base,
            )
        };
        let mut cfg = tiny_cfg();
        cfg.threads = 2;
        let a = analyze(&model, &cfg);
        assert!(a.findings.iter().any(|f| f.code == Code::FalseSharing));
        assert!(a.findings.iter().all(|f| f.code != Code::WriteWriteRace));
    }

    #[test]
    fn wrong_first_touch_is_flagged_and_fixed_by_replay() {
        // Cold start touches everything from thread 0; the iteration is
        // dominated by the last thread. tiny_test has 4 cpus on 2 nodes.
        let (model, _base) = {
            let mut m = Machine::new(MachineConfig::tiny_test());
            let arr = ccnuma::SimArray::<f64>::new(&mut m, "t.a", 4096, 0.0);
            let base = arr.vrange().0;
            let cold = LoopModel::serial("cold_init", move |_i, emit| {
                for i in 0..4096u64 {
                    emit(base + 8 * i, AccessKind::Write)
                }
            });
            let hot = LoopModel::parallel("hot", 4096, Schedule::Static, move |i, emit| {
                // All threads' iterations hit the SAME page set, with the
                // owner pattern of thread 3 (node 1) repeated 4x per index
                // so node 1 dominates every page.
                let va = base + 8 * (i % 4096) as u64;
                emit(va, AccessKind::Read);
                if i >= 3072 {
                    emit(va, AccessKind::Read);
                    emit(va, AccessKind::Read);
                }
            });
            (
                KernelModel::new(
                    BenchName::Cg,
                    vec![arr.layout()],
                    vec![PhaseModel::new("cold", vec![cold])],
                    vec![PhaseModel::new("it", vec![hot])],
                ),
                base,
            )
        };
        let a = analyze(&model, &tiny_cfg());
        assert!(
            a.findings
                .iter()
                .any(|f| f.code == Code::FirstTouchMismatch),
            "{:?}",
            a.findings
        );
        // All first touches came from the serial cold loop on node 0.
        assert!(a.first_touch.values().all(|&n| n == 0));
        // And the replay migrates but never freezes (invariant counts).
        assert!(a.predicted_frozen.is_empty());
    }

    impl Finding {
        /// Test helper: recover the example vaddr from the message.
        fn example_vaddr_for_test(&self) -> u64 {
            let hex = self
                .message
                .split("vaddr 0x")
                .nth(1)
                .and_then(|s| s.split([',', ')']).next())
                .expect("message carries an example vaddr");
            u64::from_str_radix(hex, 16).unwrap()
        }
    }
}
