//! Property-based tests of the numerical kernels: the solvers must solve
//! arbitrary well-conditioned systems, and the FFT must be unitary.

use nas::la::{
    block_tridiag_solve, fft_inplace, inv5, matmul5, matvec5, penta_solve, scaled_identity5, BVec,
    Block, B, C64,
};
use proptest::prelude::*;

fn small_entry() -> impl Strategy<Value = f64> {
    -0.15f64..0.15
}

fn offdiag_block() -> impl Strategy<Value = Block> {
    proptest::array::uniform25(small_entry())
}

fn dominant_block() -> impl Strategy<Value = Block> {
    (proptest::array::uniform25(small_entry()), 3.0f64..8.0).prop_map(|(mut m, d)| {
        for i in 0..B {
            m[i * B + i] += d;
        }
        m
    })
}

fn bvec() -> impl Strategy<Value = BVec> {
    proptest::array::uniform5(-2.0f64..2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inv5_roundtrips(m in dominant_block()) {
        let inv = inv5(&m).expect("dominant blocks are invertible");
        let prod = matmul5(&m, &inv);
        for r in 0..B {
            for c in 0..B {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod[r * B + c] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn block_tridiag_recovers_random_solutions(
        n in 1usize..12,
        seed_blocks in proptest::collection::vec((offdiag_block(), dominant_block(), offdiag_block()), 12),
        xs in proptest::collection::vec(bvec(), 12),
    ) {
        let a: Vec<Block> = seed_blocks.iter().take(n).map(|t| t.0).collect();
        let bd: Vec<Block> = seed_blocks.iter().take(n).map(|t| t.1).collect();
        let c: Vec<Block> = seed_blocks.iter().take(n).map(|t| t.2).collect();
        let x_true: Vec<BVec> = xs.iter().take(n).copied().collect();
        // rhs = A x.
        let mut rhs = vec![[0.0; B]; n];
        for i in 0..n {
            let mut r = matvec5(&bd[i], &x_true[i]);
            if i > 0 {
                let t = matvec5(&a[i], &x_true[i - 1]);
                for k in 0..B { r[k] += t[k]; }
            }
            if i + 1 < n {
                let t = matvec5(&c[i], &x_true[i + 1]);
                for k in 0..B { r[k] += t[k]; }
            }
            rhs[i] = r;
        }
        block_tridiag_solve(&a, &bd, &c, &mut rhs).expect("dominant system");
        for i in 0..n {
            for k in 0..B {
                prop_assert!((rhs[i][k] - x_true[i][k]).abs() < 1e-7,
                    "x[{i}][{k}]: {} vs {}", rhs[i][k], x_true[i][k]);
            }
        }
    }

    #[test]
    fn penta_recovers_random_solutions(
        n in 1usize..40,
        bands in proptest::collection::vec((-0.4f64..0.4, -0.4f64..0.4, 3.0f64..8.0, -0.4f64..0.4, -0.4f64..0.4), 40),
        xs in proptest::collection::vec(-3.0f64..3.0, 40),
    ) {
        let e: Vec<f64> = (0..n).map(|i| if i >= 2 { bands[i].0 } else { 0.0 }).collect();
        let a: Vec<f64> = (0..n).map(|i| if i >= 1 { bands[i].1 } else { 0.0 }).collect();
        let d: Vec<f64> = (0..n).map(|i| bands[i].2).collect();
        let c: Vec<f64> = (0..n).map(|i| if i + 1 < n { bands[i].3 } else { 0.0 }).collect();
        let f: Vec<f64> = (0..n).map(|i| if i + 2 < n { bands[i].4 } else { 0.0 }).collect();
        let x_true: Vec<f64> = xs.iter().take(n).copied().collect();
        let mut r = vec![0.0; n];
        for i in 0..n {
            let mut s = d[i] * x_true[i];
            if i >= 2 { s += e[i] * x_true[i - 2]; }
            if i >= 1 { s += a[i] * x_true[i - 1]; }
            if i + 1 < n { s += c[i] * x_true[i + 1]; }
            if i + 2 < n { s += f[i] * x_true[i + 2]; }
            r[i] = s;
        }
        penta_solve(&e, &a, &d, &c, &f, &mut r).expect("dominant system");
        for i in 0..n {
            prop_assert!((r[i] - x_true[i]).abs() < 1e-7, "x[{i}]: {} vs {}", r[i], x_true[i]);
        }
    }

    #[test]
    fn fft_is_unitary(
        log_n in 1u32..8,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        // Deterministic pseudo-random signal from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let orig: Vec<C64> = (0..n).map(|_| (next(), next())).collect();
        let mut data = orig.clone();
        fft_inplace(&mut data, false);
        // Parseval.
        let e_time: f64 = orig.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let e_freq: f64 = data.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-9 * (1.0 + e_time));
        // Roundtrip.
        fft_inplace(&mut data, true);
        for (a, b) in orig.iter().zip(&data) {
            prop_assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_block_solve_is_identity(xs in proptest::collection::vec(bvec(), 1..8)) {
        let n = xs.len();
        let a = vec![[0.0; 25]; n];
        let bd = vec![scaled_identity5(1.0); n];
        let c = vec![[0.0; 25]; n];
        let mut rhs = xs.clone();
        block_tridiag_solve(&a, &bd, &c, &mut rhs).unwrap();
        prop_assert_eq!(rhs, xs);
    }
}
