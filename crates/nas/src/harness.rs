//! The run harness: executes one benchmark instance under one experiment
//! configuration (placement scheme x migration engine), following the
//! paper's instrumentation protocols.
//!
//! * **Plain / IRIX-migration runs** (Figure 1): cold-start iteration for
//!   first-touch, then the timed time-stepping loop; the kernel engine (if
//!   enabled) scans at region boundaries.
//! * **UPMlib distribution runs** (Figure 4, paper Figure 2 protocol): the
//!   engine's `migrate_memory` is invoked after the first iteration and
//!   after every later iteration while it keeps finding pages to move, then
//!   self-deactivates.
//! * **Record–replay runs** (Figures 5–6, paper Figure 3 protocol):
//!   `migrate_memory` after iteration 1; `record` at the phase points of
//!   iteration 2 followed by `compare_counters`; `replay` at the phase
//!   points and `undo` at the end of every later iteration.

use crate::common::{BenchName, NasBenchmark, PhaseHook, PhasePoint, Verification};
use ccnuma::{Machine, MachineConfig};
use omp::Runtime;
use upmlib::{UpmEngine, UpmOptions, UpmStats};
use vmm::{install_placement, KernelMigrationConfig, KernelMigrationEngine, PlacementScheme};

/// Which migration machinery a run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineMode {
    /// No migration at all (the paper's `*-IRIX` bars).
    None,
    /// The IRIX kernel competitive engine (`*-IRIXmig` bars).
    IrixMig(KernelMigrationConfig),
    /// UPMlib's iterative distribution mechanism (`*-upmlib` bars).
    Upmlib(UpmOptions),
    /// UPMlib distribution + record–replay redistribution (`ft-recrep`).
    RecRep(UpmOptions),
}

impl EngineMode {
    /// Label used in experiment output, matching the paper's bar labels.
    pub fn label(&self) -> &'static str {
        match self {
            EngineMode::None => "IRIX",
            EngineMode::IrixMig(_) => "IRIXmig",
            EngineMode::Upmlib(_) => "upmlib",
            EngineMode::RecRep(_) => "recrep",
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Page placement scheme installed before any page faults.
    pub placement: PlacementScheme,
    /// Migration engine mode.
    pub engine: EngineMode,
    /// OpenMP team size.
    pub threads: usize,
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// Attach an event-trace + metrics sink for this run (see the `obs`
    /// crate); the collected tracer lands in [`RunResult::trace`].
    pub trace: bool,
}

/// Event-ring bound for traced runs: enough for every migration-engine
/// event of the paper-scale runs; the ring drops oldest past this.
pub const TRACE_RING_CAPACITY: usize = 1 << 20;

impl RunConfig {
    /// The paper's default platform: 16 processors, first-touch, no
    /// migration.
    pub fn paper_default() -> Self {
        Self {
            placement: PlacementScheme::FirstTouch,
            engine: EngineMode::None,
            threads: 16,
            machine: MachineConfig::origin2000_16p_scaled(),
            trace: false,
        }
    }
}

/// Everything measured by one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark identity.
    pub bench: BenchName,
    /// Placement label (`ft`, `rr`, `rand`, `wc`).
    pub placement: String,
    /// Engine label (`IRIX`, `IRIXmig`, `upmlib`, `recrep`).
    pub engine: String,
    /// Simulated wall time of the timed iterations, seconds.
    pub total_secs: f64,
    /// Simulated wall time per timed iteration, seconds.
    pub per_iter_secs: Vec<f64>,
    /// Benchmark self-verification outcome.
    pub verification: Verification,
    /// UPMlib statistics, when a UPMlib mode ran.
    pub upm: Option<UpmStats>,
    /// Pages the kernel engine migrated.
    pub kernel_migrations: u64,
    /// Fraction of memory accesses that were remote, whole run.
    pub remote_fraction: f64,
    /// Simulated seconds spent on record–replay page movement (the striped
    /// overhead segment of the paper's Figure 5).
    pub recrep_overhead_secs: f64,
    /// Collected event trace + metrics, when [`RunConfig::trace`] was set.
    pub trace: Option<Box<obs::Tracer>>,
}

impl RunResult {
    /// `label` in the paper's chart style, e.g. `rr-IRIXmig`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.placement, self.engine)
    }

    /// Mean per-iteration time over the last 75% of iterations — the basis
    /// of Table 2's residual-slowdown column.
    pub fn last75_mean_secs(&self) -> f64 {
        let n = self.per_iter_secs.len();
        if n == 0 {
            return 0.0;
        }
        let start = n / 4;
        let tail = &self.per_iter_secs[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// One benchmark run in steppable form. The kernel scheduler preempts jobs
/// at iteration boundaries — and, through the extra phase hook accepted by
/// [`BenchRun::step_with`], at region boundaries inside an iteration — so
/// the timed loop of [`run_benchmark`] is exposed one iteration at a time.
///
/// The cold-start iteration is lazy: it executes on the first
/// [`BenchRun::step`], after the scheduler has installed the job's initial
/// CPU binding, so a space-shared job first-touches its pages inside its
/// partition rather than across the whole machine.
pub struct BenchRun {
    rt: Runtime,
    bench: Box<dyn NasBenchmark>,
    upm: Option<UpmEngine>,
    recrep: bool,
    trace: bool,
    fastpath: bool,
    placement_label: String,
    engine_label: String,
    started: bool,
    step: usize,
    iters: usize,
    per_iter_secs: Vec<f64>,
    t_start: f64,
    prev_migrations: u64,
    prev_cpu: ccnuma::CpuStats,
}

impl BenchRun {
    /// Build a run: configure the machine, install the placement policy and
    /// the engines, and allocate the benchmark via `make`. No simulated
    /// work happens until the first [`BenchRun::step`].
    pub fn new<B: NasBenchmark + 'static>(
        make: impl FnOnce(&mut Runtime) -> B,
        cfg: &RunConfig,
    ) -> Self {
        let mut machine = Machine::new(cfg.machine.clone());
        install_placement(&mut machine, cfg.placement.clone());
        if cfg.trace {
            machine.set_trace(obs::TraceSink::enabled(TRACE_RING_CAPACITY));
        }
        let mut rt = Runtime::with_threads(machine, cfg.threads);
        if let EngineMode::IrixMig(kcfg) = &cfg.engine {
            rt.set_kernel_migration(KernelMigrationEngine::enabled(*kcfg));
        }
        let bench: Box<dyn NasBenchmark> = Box::new(make(&mut rt));
        let upm = match &cfg.engine {
            EngineMode::Upmlib(opts) | EngineMode::RecRep(opts) => {
                let mut engine = UpmEngine::new(rt.machine(), *opts);
                bench.register_hot(&mut engine);
                Some(engine)
            }
            _ => None,
        };
        let iters = bench.iterations();
        Self {
            rt,
            bench,
            upm,
            recrep: matches!(cfg.engine, EngineMode::RecRep(_)),
            trace: cfg.trace,
            // Traced runs stay on the exact path: the fast path replays a
            // region without emitting its per-access events.
            fastpath: !cfg.trace
                && std::env::var("DDNOMP_FASTPATH")
                    .map(|v| v != "0")
                    .unwrap_or(true),
            placement_label: cfg.placement.label().to_string(),
            engine_label: cfg.engine.label().to_string(),
            started: false,
            step: 0,
            iters,
            per_iter_secs: Vec::with_capacity(iters),
            t_start: 0.0,
            prev_migrations: 0,
            prev_cpu: ccnuma::CpuStats::default(),
        }
    }

    /// Force the phase fast path on or off for this run, overriding the
    /// `DDNOMP_FASTPATH` environment default. Must be called before the
    /// first step (the cold start derives and installs the proofs).
    pub fn set_fastpath(&mut self, on: bool) {
        assert!(!self.started, "set_fastpath after the run started");
        self.fastpath = on && !self.trace;
    }

    /// Whether the phase fast path is enabled for this run.
    pub fn fastpath_enabled(&self) -> bool {
        self.fastpath
    }

    /// Fast-path engine counters (replays/records/misses/rejects), when the
    /// fast path is installed.
    pub fn fastpath_stats(&self) -> Option<ccnuma::FastpathStats> {
        self.rt.fastpath_stats()
    }

    /// Cold-start iteration: executed, then discarded (paper §2.1).
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let model = if self.fastpath {
            self.bench.access_model()
        } else {
            None
        };
        // Arm the fast path for the cold start too: cold and timed phases
        // share loop labels, so cold recordings seed the iteration memos.
        if let Some(model) = &model {
            self.rt
                .install_fastpath(crate::proof::derive_proofs(model.cold(), self.rt.threads()));
        }
        self.bench.cold_start(&mut self.rt);
        if let Some(model) = &model {
            self.rt.install_fastpath(crate::proof::derive_proofs(
                model.iteration(),
                self.rt.threads(),
            ));
        }
        if let Some(engine) = &self.upm {
            // Reference monitoring starts with the timed run (upmlib reads
            // and resets the counters per observation window).
            engine.reset_counters(self.rt.machine());
        }
        self.t_start = self.rt.machine().clock().now_secs();
        self.prev_migrations = self.rt.machine().stats().page_migrations;
        self.prev_cpu = self.rt.machine().aggregate_cpu_stats();
    }

    /// Whether every timed iteration has run.
    pub fn is_done(&self) -> bool {
        self.step >= self.iters
    }

    /// Timed iterations completed so far.
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Benchmark identity.
    pub fn bench_name(&self) -> BenchName {
        self.bench.name()
    }

    /// The runtime (clock, statistics, current binding).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Mutable runtime access — the scheduler's rebind/resize entry point.
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// The UPMlib engine, when one is attached.
    pub fn upm(&self) -> Option<&UpmEngine> {
        self.upm.as_ref()
    }

    /// Scheduler-aware UPMlib response, forget-and-relearn flavour: re-arm
    /// the engine so the next observation windows re-learn the placement
    /// under the new thread binding. No-op without an engine.
    pub fn rearm_upm(&mut self) {
        if let Some(engine) = &mut self.upm {
            engine.reactivate(self.rt.machine());
        }
    }

    /// Scheduler-aware UPMlib response, record–replay flavour: replay the
    /// tuned placement under the new binding ("page migration follows
    /// thread migration"), falling back to forget-and-relearn when the
    /// thread moves induce no consistent node map. Returns pages moved.
    pub fn upm_follow_rebind(&mut self, old: &[usize], new: &[usize]) -> usize {
        match &mut self.upm {
            Some(engine) => engine.follow_rebind(self.rt.machine_mut(), old, new),
            None => 0,
        }
    }

    /// Run one timed iteration (running the cold start first if this is
    /// the first step). Returns the iteration's simulated seconds.
    pub fn step(&mut self) -> f64 {
        let mut noop = |_: &mut Runtime, _: PhasePoint| {};
        self.step_with(&mut noop)
    }

    /// [`BenchRun::step`] with an extra phase hook, invoked at the
    /// benchmark's phase-transition points in addition to the engine
    /// protocol hooks — the scheduler's intra-iteration yield points (a
    /// quantum expiring mid-iteration stages its rebinding here via
    /// `Runtime::request_rebind`).
    pub fn step_with(&mut self, extra: &mut PhaseHook<'_>) -> f64 {
        self.ensure_started();
        assert!(self.step < self.iters, "stepping a finished run");
        // Every timed iteration replays the same region sequence.
        self.rt.fastpath_reset_cursor();
        let t0 = self.rt.machine().clock().now_secs();
        let recrep = self.recrep;
        let step = self.step;
        let Self { rt, bench, upm, .. } = self;
        match (upm.as_mut(), recrep, step) {
            // Figure 2 protocol: migrate after iteration 1 and while the
            // engine keeps finding work.
            (Some(engine), false, _) => {
                bench.iterate(rt, extra);
                if engine.is_active() {
                    engine.migrate_memory(rt.machine_mut());
                }
            }
            // Figure 3 protocol, first iteration: distribution pass.
            (Some(engine), true, 0) => {
                bench.iterate(rt, extra);
                engine.migrate_memory(rt.machine_mut());
            }
            // Figure 3 protocol, second iteration: record phases.
            (Some(engine), true, 1) => {
                let mut hook = |rt: &mut Runtime, pp: PhasePoint| {
                    engine.record(rt.machine());
                    extra(rt, pp);
                };
                bench.iterate(rt, &mut hook);
                engine.compare_counters();
            }
            // Figure 3 protocol, later iterations: replay + undo.
            (Some(engine), true, _) => {
                let mut hook = |rt: &mut Runtime, pp: PhasePoint| {
                    if matches!(pp, PhasePoint::Before(_)) {
                        engine.replay(rt.machine_mut());
                    }
                    extra(rt, pp);
                };
                bench.iterate(rt, &mut hook);
                engine.undo(rt.machine_mut());
            }
            // Plain / IRIXmig runs.
            (None, _, _) => bench.iterate(rt, extra),
        }
        let elapsed = self.rt.machine().clock().now_secs() - t0;
        self.per_iter_secs.push(elapsed);
        if self.trace {
            let migrations = self.rt.machine().stats().page_migrations - self.prev_migrations;
            self.prev_migrations = self.rt.machine().stats().page_migrations;
            let cpu = self.rt.machine().aggregate_cpu_stats();
            let local = cpu.mem_local - self.prev_cpu.mem_local;
            let remote = cpu.mem_remote - self.prev_cpu.mem_remote;
            let stall_ns = cpu.stall_ns - self.prev_cpu.stall_ns;
            self.prev_cpu = cpu;
            let total = local + remote;
            let remote_fraction = if total == 0 {
                0.0
            } else {
                remote as f64 / total as f64
            };
            self.rt
                .machine_mut()
                .trace_event(|| obs::EventKind::IterationBoundary {
                    iter: step,
                    migrations,
                    remote_fraction,
                    stall_ns,
                });
        }
        self.step += 1;
        elapsed
    }

    /// Finish the run: verification, statistics, trace detachment.
    pub fn finish(mut self) -> RunResult {
        self.ensure_started(); // a zero-iteration run still cold-starts
        let total_secs = self.rt.machine().clock().now_secs() - self.t_start;
        let agg = self.rt.machine().aggregate_cpu_stats();
        let upm_stats = self.upm.as_ref().map(|e| e.stats().clone());
        RunResult {
            bench: self.bench.name(),
            placement: self.placement_label,
            engine: self.engine_label,
            total_secs,
            per_iter_secs: self.per_iter_secs,
            verification: self.bench.verify(),
            upm: upm_stats.clone(),
            kernel_migrations: self.rt.kernel_migration().stats().migrations,
            remote_fraction: agg.remote_fraction(),
            recrep_overhead_secs: upm_stats.map(|s| s.recrep_ns * 1e-9).unwrap_or(0.0),
            trace: self.rt.machine_mut().take_trace(),
        }
    }
}

impl std::fmt::Debug for BenchRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchRun")
            .field("bench", &self.bench.name())
            .field("step", &self.step)
            .field("iters", &self.iters)
            .finish_non_exhaustive()
    }
}

/// Run one benchmark under one configuration. `make` allocates the
/// benchmark's arrays on the freshly configured machine.
pub fn run_benchmark<B: NasBenchmark + 'static>(
    make: impl FnOnce(&mut Runtime) -> B,
    cfg: &RunConfig,
) -> RunResult {
    let mut run = BenchRun::new(make, cfg);
    while !run.is_done() {
        run.step();
    }
    run.finish()
}

/// [`run_benchmark`] with the phase fast path forced on or off, overriding
/// the `DDNOMP_FASTPATH` environment default — the entry point of the
/// differential equivalence suite.
pub fn run_benchmark_fastpath<B: NasBenchmark + 'static>(
    make: impl FnOnce(&mut Runtime) -> B,
    cfg: &RunConfig,
    fastpath: bool,
) -> RunResult {
    let mut run = BenchRun::new(make, cfg);
    run.set_fastpath(fastpath);
    while !run.is_done() {
        run.step();
    }
    run.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels() {
        assert_eq!(EngineMode::None.label(), "IRIX");
        assert_eq!(EngineMode::IrixMig(Default::default()).label(), "IRIXmig");
        assert_eq!(EngineMode::Upmlib(Default::default()).label(), "upmlib");
        assert_eq!(EngineMode::RecRep(Default::default()).label(), "recrep");
    }

    #[test]
    fn last75_mean() {
        let r = RunResult {
            bench: BenchName::Bt,
            placement: "ft".into(),
            engine: "IRIX".into(),
            total_secs: 0.0,
            per_iter_secs: vec![10.0, 1.0, 1.0, 3.0],
            verification: Verification::check(0.0, 0.0, 1e-6),
            upm: None,
            kernel_migrations: 0,
            remote_fraction: 0.0,
            recrep_overhead_secs: 0.0,
            trace: None,
        };
        // Last 75% of 4 iterations = last 3.
        assert!((r.last75_mean_secs() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.label(), "ft-IRIX");
    }
}
