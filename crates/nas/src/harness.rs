//! The run harness: executes one benchmark instance under one experiment
//! configuration (placement scheme x migration engine), following the
//! paper's instrumentation protocols.
//!
//! * **Plain / IRIX-migration runs** (Figure 1): cold-start iteration for
//!   first-touch, then the timed time-stepping loop; the kernel engine (if
//!   enabled) scans at region boundaries.
//! * **UPMlib distribution runs** (Figure 4, paper Figure 2 protocol): the
//!   engine's `migrate_memory` is invoked after the first iteration and
//!   after every later iteration while it keeps finding pages to move, then
//!   self-deactivates.
//! * **Record–replay runs** (Figures 5–6, paper Figure 3 protocol):
//!   `migrate_memory` after iteration 1; `record` at the phase points of
//!   iteration 2 followed by `compare_counters`; `replay` at the phase
//!   points and `undo` at the end of every later iteration.

use crate::common::{BenchName, NasBenchmark, PhasePoint, Verification};
use ccnuma::{Machine, MachineConfig};
use omp::Runtime;
use upmlib::{UpmEngine, UpmOptions, UpmStats};
use vmm::{install_placement, KernelMigrationConfig, KernelMigrationEngine, PlacementScheme};

/// Which migration machinery a run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineMode {
    /// No migration at all (the paper's `*-IRIX` bars).
    None,
    /// The IRIX kernel competitive engine (`*-IRIXmig` bars).
    IrixMig(KernelMigrationConfig),
    /// UPMlib's iterative distribution mechanism (`*-upmlib` bars).
    Upmlib(UpmOptions),
    /// UPMlib distribution + record–replay redistribution (`ft-recrep`).
    RecRep(UpmOptions),
}

impl EngineMode {
    /// Label used in experiment output, matching the paper's bar labels.
    pub fn label(&self) -> &'static str {
        match self {
            EngineMode::None => "IRIX",
            EngineMode::IrixMig(_) => "IRIXmig",
            EngineMode::Upmlib(_) => "upmlib",
            EngineMode::RecRep(_) => "recrep",
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Page placement scheme installed before any page faults.
    pub placement: PlacementScheme,
    /// Migration engine mode.
    pub engine: EngineMode,
    /// OpenMP team size.
    pub threads: usize,
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// Attach an event-trace + metrics sink for this run (see the `obs`
    /// crate); the collected tracer lands in [`RunResult::trace`].
    pub trace: bool,
}

/// Event-ring bound for traced runs: enough for every migration-engine
/// event of the paper-scale runs; the ring drops oldest past this.
pub const TRACE_RING_CAPACITY: usize = 1 << 20;

impl RunConfig {
    /// The paper's default platform: 16 processors, first-touch, no
    /// migration.
    pub fn paper_default() -> Self {
        Self {
            placement: PlacementScheme::FirstTouch,
            engine: EngineMode::None,
            threads: 16,
            machine: MachineConfig::origin2000_16p_scaled(),
            trace: false,
        }
    }
}

/// Everything measured by one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark identity.
    pub bench: BenchName,
    /// Placement label (`ft`, `rr`, `rand`, `wc`).
    pub placement: String,
    /// Engine label (`IRIX`, `IRIXmig`, `upmlib`, `recrep`).
    pub engine: String,
    /// Simulated wall time of the timed iterations, seconds.
    pub total_secs: f64,
    /// Simulated wall time per timed iteration, seconds.
    pub per_iter_secs: Vec<f64>,
    /// Benchmark self-verification outcome.
    pub verification: Verification,
    /// UPMlib statistics, when a UPMlib mode ran.
    pub upm: Option<UpmStats>,
    /// Pages the kernel engine migrated.
    pub kernel_migrations: u64,
    /// Fraction of memory accesses that were remote, whole run.
    pub remote_fraction: f64,
    /// Simulated seconds spent on record–replay page movement (the striped
    /// overhead segment of the paper's Figure 5).
    pub recrep_overhead_secs: f64,
    /// Collected event trace + metrics, when [`RunConfig::trace`] was set.
    pub trace: Option<Box<obs::Tracer>>,
}

impl RunResult {
    /// `label` in the paper's chart style, e.g. `rr-IRIXmig`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.placement, self.engine)
    }

    /// Mean per-iteration time over the last 75% of iterations — the basis
    /// of Table 2's residual-slowdown column.
    pub fn last75_mean_secs(&self) -> f64 {
        let n = self.per_iter_secs.len();
        if n == 0 {
            return 0.0;
        }
        let start = n / 4;
        let tail = &self.per_iter_secs[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Run one benchmark under one configuration. `make` allocates the
/// benchmark's arrays on the freshly configured machine.
pub fn run_benchmark<B: NasBenchmark>(
    make: impl FnOnce(&mut Runtime) -> B,
    cfg: &RunConfig,
) -> RunResult {
    let mut machine = Machine::new(cfg.machine.clone());
    install_placement(&mut machine, cfg.placement);
    if cfg.trace {
        machine.set_trace(obs::TraceSink::enabled(TRACE_RING_CAPACITY));
    }
    let mut rt = Runtime::with_threads(machine, cfg.threads);
    if let EngineMode::IrixMig(kcfg) = &cfg.engine {
        rt.set_kernel_migration(KernelMigrationEngine::enabled(*kcfg));
    }
    let mut bench = make(&mut rt);
    let mut upm = match &cfg.engine {
        EngineMode::Upmlib(opts) | EngineMode::RecRep(opts) => {
            let mut engine = UpmEngine::new(rt.machine(), *opts);
            bench.register_hot(&mut engine);
            Some(engine)
        }
        _ => None,
    };
    let recrep = matches!(cfg.engine, EngineMode::RecRep(_));

    // Cold-start iteration: executed, then discarded (paper §2.1).
    bench.cold_start(&mut rt);
    if let Some(engine) = &upm {
        // Reference monitoring starts with the timed run (upmlib reads and
        // resets the counters per observation window).
        engine.reset_counters(rt.machine());
    }

    let iters = bench.iterations();
    let mut per_iter = Vec::with_capacity(iters);
    let t_start = rt.machine().clock().now_secs();
    let mut prev_migrations = rt.machine().stats().page_migrations;
    let mut prev_cpu = rt.machine().aggregate_cpu_stats();
    let mut noop = |_: &mut Runtime, _: PhasePoint| {};
    for step in 0..iters {
        let t0 = rt.machine().clock().now_secs();
        match (&mut upm, recrep, step) {
            // Figure 2 protocol: migrate after iteration 1 and while the
            // engine keeps finding work.
            (Some(engine), false, _) => {
                bench.iterate(&mut rt, &mut noop);
                if engine.is_active() {
                    engine.migrate_memory(rt.machine_mut());
                }
            }
            // Figure 3 protocol, first iteration: distribution pass.
            (Some(engine), true, 0) => {
                bench.iterate(&mut rt, &mut noop);
                engine.migrate_memory(rt.machine_mut());
            }
            // Figure 3 protocol, second iteration: record phases.
            (Some(engine), true, 1) => {
                let mut hook = |rt: &mut Runtime, _pp: PhasePoint| {
                    engine.record(rt.machine());
                };
                bench.iterate(&mut rt, &mut hook);
                engine.compare_counters();
            }
            // Figure 3 protocol, later iterations: replay + undo.
            (Some(engine), true, _) => {
                let mut hook = |rt: &mut Runtime, pp: PhasePoint| {
                    if matches!(pp, PhasePoint::Before(_)) {
                        engine.replay(rt.machine_mut());
                    }
                };
                bench.iterate(&mut rt, &mut hook);
                engine.undo(rt.machine_mut());
            }
            // Plain / IRIXmig runs.
            (None, _, _) => bench.iterate(&mut rt, &mut noop),
        }
        per_iter.push(rt.machine().clock().now_secs() - t0);
        if cfg.trace {
            let migrations = rt.machine().stats().page_migrations - prev_migrations;
            prev_migrations = rt.machine().stats().page_migrations;
            let cpu = rt.machine().aggregate_cpu_stats();
            let local = cpu.mem_local - prev_cpu.mem_local;
            let remote = cpu.mem_remote - prev_cpu.mem_remote;
            let stall_ns = cpu.stall_ns - prev_cpu.stall_ns;
            prev_cpu = cpu;
            let total = local + remote;
            let remote_fraction = if total == 0 {
                0.0
            } else {
                remote as f64 / total as f64
            };
            rt.machine_mut()
                .trace_event(|| obs::EventKind::IterationBoundary {
                    iter: step,
                    migrations,
                    remote_fraction,
                    stall_ns,
                });
        }
    }
    let total_secs = rt.machine().clock().now_secs() - t_start;

    let agg = rt.machine().aggregate_cpu_stats();
    let upm_stats = upm.as_ref().map(|e| e.stats().clone());
    RunResult {
        bench: bench.name(),
        placement: cfg.placement.label().to_string(),
        engine: cfg.engine.label().to_string(),
        total_secs,
        per_iter_secs: per_iter,
        verification: bench.verify(),
        upm: upm_stats.clone(),
        kernel_migrations: rt.kernel_migration().stats().migrations,
        remote_fraction: agg.remote_fraction(),
        recrep_overhead_secs: upm_stats.map(|s| s.recrep_ns * 1e-9).unwrap_or(0.0),
        trace: rt.machine_mut().take_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels() {
        assert_eq!(EngineMode::None.label(), "IRIX");
        assert_eq!(EngineMode::IrixMig(Default::default()).label(), "IRIXmig");
        assert_eq!(EngineMode::Upmlib(Default::default()).label(), "upmlib");
        assert_eq!(EngineMode::RecRep(Default::default()).label(), "recrep");
    }

    #[test]
    fn last75_mean() {
        let r = RunResult {
            bench: BenchName::Bt,
            placement: "ft".into(),
            engine: "IRIX".into(),
            total_secs: 0.0,
            per_iter_secs: vec![10.0, 1.0, 1.0, 3.0],
            verification: Verification::check(0.0, 0.0, 1e-6),
            upm: None,
            kernel_migrations: 0,
            remote_fraction: 0.0,
            recrep_overhead_secs: 0.0,
            trace: None,
        };
        // Last 75% of 4 iterations = last 3.
        assert!((r.last75_mean_secs() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.label(), "ft-IRIX");
    }
}
