//! Shared benchmark infrastructure: the benchmark trait, problem scales,
//! verification results, and 3-D grid index helpers.

use crate::model::KernelModel;
use omp::Runtime;
use upmlib::UpmEngine;

/// Benchmark identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchName {
    /// Block-tridiagonal CFD solver.
    Bt,
    /// Scalar-pentadiagonal CFD solver.
    Sp,
    /// Conjugate-gradient eigenvalue kernel.
    Cg,
    /// Multigrid Poisson kernel.
    Mg,
    /// 3-D FFT spectral kernel.
    Ft,
}

impl BenchName {
    /// Lower-case label as used in the paper's charts.
    pub fn label(&self) -> &'static str {
        match self {
            BenchName::Bt => "BT",
            BenchName::Sp => "SP",
            BenchName::Cg => "CG",
            BenchName::Mg => "MG",
            BenchName::Ft => "FT",
        }
    }

    /// Parse a benchmark label, case-insensitively (`bt`/`BT` → `Bt`).
    /// The experiment service reconstructs benchmarks from lower-case
    /// cell-spec fields, chart code from upper-case chart labels.
    pub fn parse(label: &str) -> Option<BenchName> {
        BenchName::all()
            .into_iter()
            .find(|b| b.label().eq_ignore_ascii_case(label))
    }

    /// All five benchmarks in the paper's order.
    pub fn all() -> [BenchName; 5] {
        [
            BenchName::Bt,
            BenchName::Sp,
            BenchName::Cg,
            BenchName::Mg,
            BenchName::Ft,
        ]
    }
}

/// Problem-size class. `Tiny` is for unit/integration tests, `Small` for
/// Criterion benches, `Medium` for the experiment harness (the analogue of
/// the paper's Class A, scaled to the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest correct instance; seconds matter (tests).
    Tiny,
    /// Small instance for Criterion benches.
    Small,
    /// The experiment harness size.
    Medium,
}

impl Scale {
    /// Lower-case label as used in report ids and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
        }
    }

    /// Parse a scale label (`tiny`/`small`/`medium`).
    pub fn parse(label: &str) -> Option<Scale> {
        [Scale::Tiny, Scale::Small, Scale::Medium]
            .into_iter()
            .find(|s| s.label() == label)
    }
}

/// Outcome of a benchmark's self-verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// Whether the computed value matched the reference.
    pub passed: bool,
    /// The computed verification value.
    pub value: f64,
    /// The reference value it was compared against.
    pub reference: f64,
    /// Relative tolerance used.
    pub epsilon: f64,
}

impl Verification {
    /// Compare `value` against `reference` at relative tolerance `epsilon`.
    pub fn check(value: f64, reference: f64, epsilon: f64) -> Self {
        let denom = reference.abs().max(1e-300);
        let passed = ((value - reference).abs() / denom) <= epsilon;
        Self {
            passed,
            value,
            reference,
            epsilon,
        }
    }
}

/// A phase-transition point inside one iteration — where the paper's
/// Figure 3 instrumentation sits. `Before(p)`/`After(p)` bracket phase `p`
/// (for BT/SP, phase 0 is the z-sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePoint {
    /// Immediately before phase `p` starts.
    Before(usize),
    /// Immediately after phase `p` completes.
    After(usize),
}

/// Callback invoked by a benchmark at its phase-transition points.
pub type PhaseHook<'h> = dyn FnMut(&mut Runtime, PhasePoint) + 'h;

/// A no-op phase hook for callers that don't use record–replay.
pub fn no_phase_hook() -> impl FnMut(&mut Runtime, PhasePoint) {
    |_rt: &mut Runtime, _pp: PhasePoint| {}
}

/// One NAS-like benchmark instance: allocated arrays plus its iteration
/// body.
pub trait NasBenchmark {
    /// Which benchmark this is.
    fn name(&self) -> BenchName;

    /// Number of timed iterations this instance runs (the paper: BT 200,
    /// SP 400 [sic: 15 in the NAS A config used for upmlib runs], CG 15,
    /// FT 6, MG 4; scaled here).
    fn iterations(&self) -> usize;

    /// The discarded cold-start iteration: runs the full parallel
    /// computation so first-touch can distribute pages, then resets state
    /// so the timed run starts clean.
    fn cold_start(&mut self, rt: &mut Runtime);

    /// One timed iteration. `hook` is called at phase-transition points.
    fn iterate(&mut self, rt: &mut Runtime, hook: &mut PhaseHook<'_>);

    /// Register the benchmark's compiler-identified hot arrays with a
    /// UPMlib engine (`upmlib_memrefcnt` calls).
    fn register_hot(&self, upm: &mut UpmEngine);

    /// Host-side self-verification after all iterations.
    fn verify(&self) -> Verification;

    /// The benchmark's static access model (see [`crate::model`]): the
    /// exact per-iteration element accesses of the cold-start and timed
    /// iterations, consumed by the `lint` static analyzer. `None` when the
    /// benchmark is not modeled; all five NAS kernels return a model.
    fn access_model(&self) -> Option<KernelModel> {
        None
    }
}

/// Index helpers for a 3-D grid of `comps` components stored
/// component-fastest (the Fortran `u(5, nx, ny, nz)` layout of the NAS
/// codes, linearized with x fastest after components).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z.
    pub nz: usize,
    /// Components per point.
    pub comps: usize,
}

impl Grid3 {
    /// A cubic grid.
    pub fn cube(n: usize, comps: usize) -> Self {
        Self {
            nx: n,
            ny: n,
            nz: n,
            comps,
        }
    }

    /// Total scalar elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz * self.comps
    }

    /// Whether the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of component `c` at `(x, y, z)`.
    #[inline(always)]
    pub fn idx(&self, c: usize, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(c < self.comps && x < self.nx && y < self.ny && z < self.nz);
        ((z * self.ny + y) * self.nx + x) * self.comps + c
    }

    /// Number of interior points along each axis (excluding one boundary
    /// layer on each side).
    pub fn interior(&self) -> (usize, usize, usize) {
        (
            self.nx.saturating_sub(2),
            self.ny.saturating_sub(2),
            self.nz.saturating_sub(2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_is_component_fastest() {
        let g = Grid3::cube(4, 5);
        assert_eq!(g.idx(0, 0, 0, 0), 0);
        assert_eq!(g.idx(1, 0, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0, 0), 5);
        assert_eq!(g.idx(0, 0, 1, 0), 20);
        assert_eq!(g.idx(0, 0, 0, 1), 80);
        assert_eq!(g.len(), 320);
    }

    #[test]
    fn grid_indices_are_unique_and_dense() {
        let g = Grid3 {
            nx: 3,
            ny: 2,
            nz: 2,
            comps: 2,
        };
        let mut seen = vec![false; g.len()];
        for z in 0..g.nz {
            for y in 0..g.ny {
                for x in 0..g.nx {
                    for c in 0..g.comps {
                        let i = g.idx(c, x, y, z);
                        assert!(!seen[i]);
                        seen[i] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn verification_tolerance() {
        assert!(Verification::check(1.0000001, 1.0, 1e-6).passed);
        assert!(!Verification::check(1.01, 1.0, 1e-6).passed);
        assert!(Verification::check(0.0, 0.0, 1e-6).passed);
    }

    #[test]
    fn labels() {
        assert_eq!(BenchName::Bt.label(), "BT");
        assert_eq!(BenchName::all().len(), 5);
    }
}
