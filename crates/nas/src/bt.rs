//! NAS BT: block-tridiagonal ADI solver.
//!
//! Each timed iteration performs `compute_rhs`, then the three directional
//! sweeps `x_solve`, `y_solve`, `z_solve` — each solving a 5x5
//! block-tridiagonal system along every grid line of its direction — and
//! finally `add` (`u += rhs`), exactly the call structure of the paper's
//! Figure 2/3 listings.
//!
//! Parallel structure (as in the NAS OpenMP code): `compute_rhs`, `x_solve`
//! and `y_solve` are `PARALLEL DO`s over z, so each thread works entirely
//! within its z-slab; **`z_solve` is a `PARALLEL DO` over y**, so every
//! thread's lines run across *all* z-slabs. Under first-touch placement by
//! z-slab this makes the z-sweep the remote-access-heavy phase — the phase
//! change "in the z_solve function, due to the initial alignment of arrays
//! in memory, performed to improve locality along the x and y directions"
//! that the record–replay mechanism targets. The phase hook brackets it.
//!
//! `phase_scale` reproduces the paper's Figure 6 experiment: "we enclosed
//! each function that comprises the main body of the parallel computation
//! in a sequential loop with 4 iterations", lengthening every phase without
//! changing its access pattern.

use crate::adi::AdiState;
use crate::common::{BenchName, NasBenchmark, PhaseHook, PhasePoint, Scale, Verification};
use crate::la::{self, BVec, Block};
use omp::{Runtime, Schedule};
use upmlib::UpmEngine;

/// BT problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct BtConfig {
    /// Grid points along x.
    pub nx: usize,
    /// Grid points along y.
    pub ny: usize,
    /// Grid points along z.
    pub nz: usize,
    /// Timed iterations.
    pub niter: usize,
    /// Diffusion number (implicit coupling strength).
    pub r: f64,
    /// Strength of the u-dependent block coupling.
    pub eps: f64,
    /// Repetitions of each phase function (1 = paper's normal runs, 4 =
    /// the synthetically scaled Figure 6 experiment).
    pub phase_scale: usize,
}

impl BtConfig {
    /// Parameters for a scale class. Class A is 64x64x64; the scaled sizes
    /// keep the 64x64 plane geometry (which sets the page-to-y-slab ratio
    /// that the z-sweep and the record–replay mechanism see) and shrink the
    /// grid along z only.
    pub fn for_scale(scale: Scale) -> Self {
        let (nx, ny, nz, niter) = match scale {
            Scale::Tiny => (8, 8, 8, 3),
            Scale::Small => (64, 64, 16, 3),
            Scale::Medium => (64, 64, 16, 10),
        };
        Self {
            nx,
            ny,
            nz,
            niter,
            r: 0.2,
            eps: 0.02,
            phase_scale: 1,
        }
    }

    /// The Figure 6 variant: every phase repeated four times.
    pub fn scaled_phases(mut self) -> Self {
        self.phase_scale = 4;
        self
    }
}

/// Sweep direction of a line solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
    Z,
}

/// The constant 5x5 coupling matrix added to the diagonal blocks — small
/// off-diagonal terms that force genuine block (not scalar) solves.
fn coupling() -> Block {
    let mut k = [0.0; 25];
    for r in 0..la::B {
        for c in 0..la::B {
            if r != c {
                k[r * la::B + c] = 0.02 / (1.0 + (r as f64 - c as f64).abs());
            }
        }
    }
    k
}

/// The BT benchmark instance.
pub struct Bt {
    cfg: BtConfig,
    state: AdiState,
    /// Initial field, kept to reset after the cold-start iteration.
    initial_u: Vec<f64>,
    coupling: Block,
    /// Update norm after each timed iteration.
    norms: Vec<f64>,
}

impl Bt {
    /// Allocate and initialize on the runtime's machine.
    pub fn new(rt: &mut Runtime, scale: Scale) -> Self {
        Self::with_config(rt, BtConfig::for_scale(scale))
    }

    /// Allocate with explicit parameters.
    pub fn with_config(rt: &mut Runtime, cfg: BtConfig) -> Self {
        let state = AdiState::new(rt, "bt", cfg.nx, cfg.ny, cfg.nz);
        let initial_u = state.u.to_vec();
        Self {
            cfg,
            state,
            initial_u,
            coupling: coupling(),
            norms: Vec::new(),
        }
    }

    /// Problem parameters.
    pub fn config(&self) -> &BtConfig {
        &self.cfg
    }

    /// The field state (for tests).
    pub fn state(&self) -> &AdiState {
        &self.state
    }

    /// Diagonal-block contribution from the local field value:
    /// `K + diag(u) * eps_weight` scaled by `scale`.
    fn phi(&self, u5: &BVec, scale: f64) -> Block {
        let mut m = [0.0; 25];
        for r in 0..la::B {
            for c in 0..la::B {
                let base = self.coupling[r * la::B + c];
                let diag = if r == c { u5[r] } else { 0.0 };
                m[r * la::B + c] = scale * (base + 0.05 * diag);
            }
        }
        m
    }

    /// Solve all lines along `axis`: for each line, assemble the 5x5 block
    /// tridiagonal operator `(I - A_axis)` from `u` and solve it against
    /// the line's `rhs`, writing the result back into `rhs`.
    fn sweep(&self, rt: &mut Runtime, axis: Axis) {
        let g = self.state.grid;
        let r = self.cfg.r;
        let eps = self.cfg.eps;
        // Line length, parallel (outer) extent, and inner extent per axis;
        // z_solve parallelizes over y (slab-crossing), x/y solves over z.
        let (n, outer_extent, inner_extent) = match axis {
            Axis::X => (g.nx, g.nz, g.ny),
            Axis::Y => (g.ny, g.nz, g.nx),
            Axis::Z => (g.nz, g.ny, g.nx),
        };
        rt.parallel_for(outer_extent, Schedule::Static, |par, outer| {
            let mut sub = vec![[0.0; 25]; n];
            let mut diag = vec![[0.0; 25]; n];
            let mut sup = vec![[0.0; 25]; n];
            let mut line_rhs: Vec<BVec> = vec![[0.0; 5]; n];
            let mut line_u: Vec<BVec> = vec![[0.0; 5]; n];
            for inner in 0..inner_extent {
                // Map (outer, inner, k) to grid coordinates per axis.
                let coord = |k: usize| -> (usize, usize, usize) {
                    match axis {
                        Axis::X => (k, inner, outer),
                        Axis::Y => (inner, k, outer),
                        Axis::Z => (inner, outer, k),
                    }
                };
                // Gather the line's field and rhs.
                for k in 0..n {
                    let (x, y, z) = coord(k);
                    line_u[k] = self.state.read_u5(par, x, y, z);
                    for c in 0..5 {
                        line_rhs[k][c] = par.get(&self.state.rhs, g.idx(c, x, y, z));
                    }
                }
                // Assemble (I - A): A couples neighbours with -r plus the
                // u-dependent phi blocks (periodic wrap folded into the
                // first/last off-blocks being dropped — the tridiagonal
                // solver treats the line as Dirichlet-truncated, a standard
                // ADI line treatment).
                for k in 0..n {
                    let km = (k + n - 1) % n;
                    let kp = (k + 1) % n;
                    let mut d = la::scaled_identity5(1.0 + 2.0 * r);
                    let phi_d = self.phi(&line_u[k], eps);
                    for i in 0..25 {
                        d[i] += phi_d[i];
                    }
                    diag[k] = d;
                    let mut s = la::scaled_identity5(-r);
                    let phi_s = self.phi(&line_u[km], -0.5 * eps);
                    for i in 0..25 {
                        s[i] += phi_s[i];
                    }
                    sub[k] = s;
                    let mut p = la::scaled_identity5(-r);
                    let phi_p = self.phi(&line_u[kp], -0.5 * eps);
                    for i in 0..25 {
                        p[i] += phi_p[i];
                    }
                    sup[k] = p;
                }
                let flops = la::block_tridiag_solve(&sub, &diag, &sup, &mut line_rhs)
                    .expect("BT blocks are diagonally dominant");
                // Assembly arithmetic: ~3 block builds of 25 entries each.
                par.flops(flops + (n as u64) * 150);
                // Scatter the solved line back.
                for k in 0..n {
                    let (x, y, z) = coord(k);
                    for c in 0..5 {
                        par.set(&self.state.rhs, g.idx(c, x, y, z), line_rhs[k][c]);
                    }
                }
            }
        });
    }

    fn x_solve(&self, rt: &mut Runtime) {
        self.sweep(rt, Axis::X);
    }

    fn y_solve(&self, rt: &mut Runtime) {
        self.sweep(rt, Axis::Y);
    }

    fn z_solve(&self, rt: &mut Runtime) {
        self.sweep(rt, Axis::Z);
    }

    /// Run one z-sweep in isolation (diagnostics/ablation harness).
    pub fn z_solve_public(&self, rt: &mut Runtime) {
        self.z_solve(rt);
    }

    /// One full time step (shared by cold start and timed iterations).
    fn step(&mut self, rt: &mut Runtime, hook: &mut PhaseHook<'_>) -> f64 {
        let ps = self.cfg.phase_scale;
        for _ in 0..ps {
            self.state.compute_rhs(rt, self.cfg.r, 1.0);
        }
        for _ in 0..ps {
            self.x_solve(rt);
        }
        for _ in 0..ps {
            self.y_solve(rt);
        }
        hook(rt, PhasePoint::Before(0));
        for _ in 0..ps {
            self.z_solve(rt);
        }
        hook(rt, PhasePoint::After(0));
        self.state.add_and_norm(rt)
    }

    /// Recorded per-iteration update norms.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }
}

impl NasBenchmark for Bt {
    fn name(&self) -> BenchName {
        BenchName::Bt
    }

    fn iterations(&self) -> usize {
        self.cfg.niter
    }

    fn cold_start(&mut self, rt: &mut Runtime) {
        let mut noop = |_: &mut Runtime, _: PhasePoint| {};
        let _ = self.step(rt, &mut noop);
        self.state.reset(&self.initial_u);
        self.norms.clear();
    }

    fn iterate(&mut self, rt: &mut Runtime, hook: &mut PhaseHook<'_>) {
        let norm = self.step(rt, hook);
        self.norms.push(norm);
    }

    fn register_hot(&self, upm: &mut UpmEngine) {
        self.state.register_hot(upm);
    }

    fn verify(&self) -> Verification {
        let (Some(&first), Some(&last)) = (self.norms.first(), self.norms.last()) else {
            return Verification::check(f64::NAN, 0.0, 0.0);
        };
        // The implicit scheme damps the update toward the steady state:
        // norms must stay finite and not grow. (With phase_scale > 1 the
        // repeated solves over-apply the smoother; boundedness is the
        // invariant, as in the paper's synthetic experiment.)
        let bounded = self.norms.iter().all(|n| n.is_finite());
        let damped = self.cfg.phase_scale > 1 || last <= first * 1.0001;
        Verification {
            passed: bounded && damped,
            value: last,
            reference: first,
            epsilon: 1.0,
        }
    }

    fn access_model(&self) -> Option<crate::model::KernelModel> {
        // cold_start runs one full step (the host-side field reset touches
        // no simulated pages), so the cold phases equal the timed phases.
        let ps = self.cfg.phase_scale;
        Some(crate::model::KernelModel::new(
            BenchName::Bt,
            self.state.array_layouts(),
            self.state.step_phases(ps),
            self.state.step_phases(ps),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::no_phase_hook;
    use ccnuma::{Machine, MachineConfig};

    fn rt() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::origin2000_16p()))
    }

    #[test]
    fn constant_field_is_a_fixed_point_with_zero_forcing() {
        let mut rt = rt();
        let mut bt = Bt::with_config(
            &mut rt,
            BtConfig {
                nx: 6,
                ny: 6,
                nz: 6,
                niter: 1,
                r: 0.2,
                eps: 0.02,
                phase_scale: 1,
            },
        );
        bt.state.u.fill(1.0);
        bt.state.forcing.fill(0.0);
        let before = bt.state.u.to_vec();
        let mut hook = no_phase_hook();
        bt.iterate(&mut rt, &mut hook);
        let after = bt.state.u.to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12, "constant field must not move");
        }
        assert!(bt.norms[0].abs() < 1e-12);
    }

    #[test]
    fn update_norm_decays_toward_steady_state() {
        let mut rt = rt();
        let mut bt = Bt::new(&mut rt, Scale::Tiny);
        bt.cold_start(&mut rt);
        let mut hook = no_phase_hook();
        for _ in 0..bt.iterations() {
            bt.iterate(&mut rt, &mut hook);
        }
        let v = bt.verify();
        assert!(v.passed, "norms {:?}", bt.norms);
        assert!(bt.norms.last().unwrap() < bt.norms.first().unwrap());
    }

    #[test]
    fn phase_hook_brackets_z_solve() {
        let mut rt = rt();
        let mut bt = Bt::new(&mut rt, Scale::Tiny);
        bt.cold_start(&mut rt);
        let mut points = Vec::new();
        let mut hook = |_: &mut Runtime, pp: PhasePoint| points.push(pp);
        bt.iterate(&mut rt, &mut hook);
        assert_eq!(points, vec![PhasePoint::Before(0), PhasePoint::After(0)]);
    }

    #[test]
    fn z_sweep_crosses_slabs_x_sweep_does_not() {
        // Measure remote accesses of an isolated x-sweep vs z-sweep after
        // first-touch distribution: the z-sweep must be far more remote.
        let mut rt = rt();
        let mut bt = Bt::new(&mut rt, Scale::Tiny);
        bt.cold_start(&mut rt);
        let remote_before = rt.machine().aggregate_cpu_stats().mem_remote;
        bt.x_solve(&mut rt);
        let remote_after_x = rt.machine().aggregate_cpu_stats().mem_remote;
        bt.z_solve(&mut rt);
        let remote_after_z = rt.machine().aggregate_cpu_stats().mem_remote;
        let x_remote = remote_after_x - remote_before;
        let z_remote = remote_after_z - remote_after_x;
        assert!(
            z_remote > 3 * x_remote.max(1),
            "z-sweep remote {z_remote} vs x-sweep remote {x_remote}"
        );
    }

    #[test]
    fn scaled_phases_quadruple_the_work() {
        let run = |ps: usize| {
            let mut rt = rt();
            let mut bt = Bt::with_config(
                &mut rt,
                BtConfig {
                    nx: 8,
                    ny: 8,
                    nz: 8,
                    niter: 1,
                    r: 0.2,
                    eps: 0.02,
                    phase_scale: ps,
                },
            );
            bt.cold_start(&mut rt);
            let t0 = rt.machine().clock().now_ns();
            let mut hook = no_phase_hook();
            bt.iterate(&mut rt, &mut hook);
            rt.machine().clock().now_ns() - t0
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t4 > 3.0 * t1 && t4 < 5.0 * t1, "t1 {t1} t4 {t4}");
    }
}
