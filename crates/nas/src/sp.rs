//! NAS SP: scalar-pentadiagonal ADI solver.
//!
//! Same driver structure as BT (`compute_rhs`, `x_solve`, `y_solve`,
//! `z_solve`, `add`) and the same z-sweep phase change, but each directional
//! sweep solves *scalar pentadiagonal* systems — one independent
//! five-banded system per component per grid line (the factorization-method
//! difference between BT and SP the paper notes: "the programs differ in
//! the factorization method used in the solvers"). The second bands come
//! from the fourth-difference dissipation term, as in NAS SP.

use crate::adi::AdiState;
use crate::common::{BenchName, NasBenchmark, PhaseHook, PhasePoint, Scale, Verification};
use crate::la::penta_solve;
use omp::{Runtime, Schedule};
use upmlib::UpmEngine;

/// SP problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct SpConfig {
    /// Grid points along x.
    pub nx: usize,
    /// Grid points along y.
    pub ny: usize,
    /// Grid points along z.
    pub nz: usize,
    /// Timed iterations.
    pub niter: usize,
    /// Diffusion number.
    pub r: f64,
    /// Strength of the u-dependent coefficients.
    pub eps: f64,
    /// Fourth-difference dissipation band strength.
    pub r4: f64,
    /// Phase-function repetition count (Figure 6 experiment).
    pub phase_scale: usize,
}

impl SpConfig {
    /// Parameters for a scale class (same plane-geometry reasoning as BT).
    pub fn for_scale(scale: Scale) -> Self {
        let (nx, ny, nz, niter) = match scale {
            Scale::Tiny => (8, 8, 8, 3),
            Scale::Small => (64, 64, 16, 3),
            Scale::Medium => (64, 64, 16, 10),
        };
        Self {
            nx,
            ny,
            nz,
            niter,
            r: 0.2,
            eps: 0.02,
            r4: 0.025,
            phase_scale: 1,
        }
    }

    /// The Figure 6 variant: every phase repeated four times.
    pub fn scaled_phases(mut self) -> Self {
        self.phase_scale = 4;
        self
    }
}

/// Sweep direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
    Z,
}

/// The SP benchmark instance.
pub struct Sp {
    cfg: SpConfig,
    state: AdiState,
    initial_u: Vec<f64>,
    norms: Vec<f64>,
}

impl Sp {
    /// Allocate and initialize on the runtime's machine.
    pub fn new(rt: &mut Runtime, scale: Scale) -> Self {
        Self::with_config(rt, SpConfig::for_scale(scale))
    }

    /// Allocate with explicit parameters.
    pub fn with_config(rt: &mut Runtime, cfg: SpConfig) -> Self {
        let state = AdiState::new(rt, "sp", cfg.nx, cfg.ny, cfg.nz);
        let initial_u = state.u.to_vec();
        Self {
            cfg,
            state,
            initial_u,
            norms: Vec::new(),
        }
    }

    /// Problem parameters.
    pub fn config(&self) -> &SpConfig {
        &self.cfg
    }

    /// The field state (for tests).
    pub fn state(&self) -> &AdiState {
        &self.state
    }

    /// Solve all lines along `axis`: per line and per component, assemble
    /// the pentadiagonal operator `(I - A_axis)` from `u` and solve against
    /// the line's `rhs` in place.
    fn sweep(&self, rt: &mut Runtime, axis: Axis) {
        let g = self.state.grid;
        let SpConfig { r, eps, r4, .. } = self.cfg;
        let (n, outer_extent, inner_extent) = match axis {
            Axis::X => (g.nx, g.nz, g.ny),
            Axis::Y => (g.ny, g.nz, g.nx),
            Axis::Z => (g.nz, g.ny, g.nx),
        };
        rt.parallel_for(outer_extent, Schedule::Static, |par, outer| {
            let mut band_e = vec![0.0; n];
            let mut band_a = vec![0.0; n];
            let mut band_d = vec![0.0; n];
            let mut band_c = vec![0.0; n];
            let mut band_f = vec![0.0; n];
            let mut line_u = vec![0.0; n];
            let mut line_rhs = vec![0.0; n];
            for inner in 0..inner_extent {
                let coord = |k: usize| -> (usize, usize, usize) {
                    match axis {
                        Axis::X => (k, inner, outer),
                        Axis::Y => (inner, k, outer),
                        Axis::Z => (inner, outer, k),
                    }
                };
                for c in 0..5 {
                    // Gather this component's line.
                    for k in 0..n {
                        let (x, y, z) = coord(k);
                        line_u[k] = par.get(&self.state.u, g.idx(c, x, y, z));
                        line_rhs[k] = par.get(&self.state.rhs, g.idx(c, x, y, z));
                    }
                    // Assemble the five bands (diagonally dominant).
                    for k in 0..n {
                        band_d[k] = 1.0 + 2.0 * r + 2.0 * r4 + eps * line_u[k].abs();
                        band_a[k] = if k >= 1 {
                            -r - 0.5 * eps * line_u[k - 1]
                        } else {
                            0.0
                        };
                        band_c[k] = if k + 1 < n {
                            -r - 0.5 * eps * line_u[k + 1]
                        } else {
                            0.0
                        };
                        band_e[k] = if k >= 2 { r4 } else { 0.0 };
                        band_f[k] = if k + 2 < n { r4 } else { 0.0 };
                    }
                    let flops =
                        penta_solve(&band_e, &band_a, &band_d, &band_c, &band_f, &mut line_rhs)
                            .expect("SP bands are diagonally dominant");
                    par.flops(flops + 8 * n as u64);
                    // Scatter the solution.
                    for k in 0..n {
                        let (x, y, z) = coord(k);
                        par.set(&self.state.rhs, g.idx(c, x, y, z), line_rhs[k]);
                    }
                }
            }
        });
    }

    fn x_solve(&self, rt: &mut Runtime) {
        self.sweep(rt, Axis::X);
    }

    fn y_solve(&self, rt: &mut Runtime) {
        self.sweep(rt, Axis::Y);
    }

    fn z_solve(&self, rt: &mut Runtime) {
        self.sweep(rt, Axis::Z);
    }

    fn step(&mut self, rt: &mut Runtime, hook: &mut PhaseHook<'_>) -> f64 {
        let ps = self.cfg.phase_scale;
        for _ in 0..ps {
            self.state.compute_rhs(rt, self.cfg.r, 1.0);
        }
        for _ in 0..ps {
            self.x_solve(rt);
        }
        for _ in 0..ps {
            self.y_solve(rt);
        }
        hook(rt, PhasePoint::Before(0));
        for _ in 0..ps {
            self.z_solve(rt);
        }
        hook(rt, PhasePoint::After(0));
        self.state.add_and_norm(rt)
    }

    /// Recorded per-iteration update norms.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }
}

impl NasBenchmark for Sp {
    fn name(&self) -> BenchName {
        BenchName::Sp
    }

    fn iterations(&self) -> usize {
        self.cfg.niter
    }

    fn cold_start(&mut self, rt: &mut Runtime) {
        let mut noop = |_: &mut Runtime, _: PhasePoint| {};
        let _ = self.step(rt, &mut noop);
        self.state.reset(&self.initial_u);
        self.norms.clear();
    }

    fn iterate(&mut self, rt: &mut Runtime, hook: &mut PhaseHook<'_>) {
        let norm = self.step(rt, hook);
        self.norms.push(norm);
    }

    fn register_hot(&self, upm: &mut UpmEngine) {
        self.state.register_hot(upm);
    }

    fn verify(&self) -> Verification {
        let (Some(&first), Some(&last)) = (self.norms.first(), self.norms.last()) else {
            return Verification::check(f64::NAN, 0.0, 0.0);
        };
        let bounded = self.norms.iter().all(|n| n.is_finite());
        let damped = self.cfg.phase_scale > 1 || last <= first * 1.0001;
        Verification {
            passed: bounded && damped,
            value: last,
            reference: first,
            epsilon: 1.0,
        }
    }

    fn access_model(&self) -> Option<crate::model::KernelModel> {
        // SP's scalar solver touches exactly the same element set per line
        // as BT's block solver, so the shared ADI sweep models apply; the
        // host-side reset in cold_start touches no simulated pages.
        let ps = self.cfg.phase_scale;
        Some(crate::model::KernelModel::new(
            BenchName::Sp,
            self.state.array_layouts(),
            self.state.step_phases(ps),
            self.state.step_phases(ps),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::no_phase_hook;
    use ccnuma::{Machine, MachineConfig};

    fn rt() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::origin2000_16p()))
    }

    #[test]
    fn constant_field_is_a_fixed_point_with_zero_forcing() {
        let mut rt = rt();
        let mut sp = Sp::with_config(
            &mut rt,
            SpConfig {
                nx: 6,
                ny: 6,
                nz: 6,
                niter: 1,
                r: 0.2,
                eps: 0.02,
                r4: 0.025,
                phase_scale: 1,
            },
        );
        sp.state.u.fill(1.0);
        sp.state.forcing.fill(0.0);
        let before = sp.state.u.to_vec();
        let mut hook = no_phase_hook();
        sp.iterate(&mut rt, &mut hook);
        for (b, a) in before.iter().zip(&sp.state.u.to_vec()) {
            assert!((b - a).abs() < 1e-12);
        }
    }

    #[test]
    fn update_norm_decays() {
        let mut rt = rt();
        let mut sp = Sp::new(&mut rt, Scale::Tiny);
        sp.cold_start(&mut rt);
        let mut hook = no_phase_hook();
        for _ in 0..sp.iterations() {
            sp.iterate(&mut rt, &mut hook);
        }
        let v = sp.verify();
        assert!(v.passed, "norms {:?}", sp.norms);
    }

    #[test]
    fn phase_hook_brackets_z_solve() {
        let mut rt = rt();
        let mut sp = Sp::new(&mut rt, Scale::Tiny);
        sp.cold_start(&mut rt);
        let mut points = Vec::new();
        let mut hook = |_: &mut Runtime, pp: PhasePoint| points.push(pp);
        sp.iterate(&mut rt, &mut hook);
        assert_eq!(points, vec![PhasePoint::Before(0), PhasePoint::After(0)]);
    }

    #[test]
    fn z_sweep_is_remote_heavy() {
        let mut rt = rt();
        let mut sp = Sp::new(&mut rt, Scale::Tiny);
        sp.cold_start(&mut rt);
        let r0 = rt.machine().aggregate_cpu_stats().mem_remote;
        sp.x_solve(&mut rt);
        let rx = rt.machine().aggregate_cpu_stats().mem_remote - r0;
        let r1 = rt.machine().aggregate_cpu_stats().mem_remote;
        sp.z_solve(&mut rt);
        let rz = rt.machine().aggregate_cpu_stats().mem_remote - r1;
        assert!(rz > 3 * rx.max(1), "z remote {rz} vs x remote {rx}");
    }
}
