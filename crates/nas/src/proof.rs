//! [`PhaseProof`] derivation: the `nas`→`ccnuma` contract for the phase
//! fast path.
//!
//! A [`crate::model::KernelModel`] enumerates, address-exactly, every element
//! access of every modeled loop. This module folds those access streams over
//! the runtime's ownership partition into per-line reader/writer thread sets
//! and emits a [`PhaseProof`] — the complete line footprint plus per-line
//! write counts — for every loop whose pattern is safe to memoize:
//!
//! * **statically scheduled** — dynamic/guided dispatch depends on simulated
//!   timing, which a suppressed replay would starve;
//! * **no cross-thread write sharing** — each line has at most one writing
//!   thread, and a written line is accessed by its writer only (shared
//!   *read-only* lines are fine). The simulator executes threads
//!   sequentially, so a cross-thread write/read interleaving would leave
//!   some CPU's cached copy stale at region exit — reconstructible in
//!   principle but outside the contract the replay engine validates.
//!
//! Ineligible loops get `None` and simply run on the exact line-by-line
//! path. The proof is re-validated at runtime: recording diffs the real
//! region against the claim and discards (loudly, in debug builds) on any
//! disagreement — see `ccnuma::fastpath`.

use std::collections::BTreeMap;

use ccnuma::fastpath::PhaseProof;
use ccnuma::{AccessKind, LINE_SHIFT};

use crate::model::{LoopKind, LoopModel, PhaseModel};

/// Derive the proof for one loop, or `None` if it is ineligible.
///
/// `label` must be the flattened `"phase/loop"` name (memo pools are shared
/// per label). `threads` is the team size of the runtime that will execute
/// the loop; serial regions run as a one-thread team on the master CPU, so
/// their proofs are derived for team size 1.
pub fn derive_loop_proof(label: &str, l: &LoopModel, threads: usize) -> Option<PhaseProof> {
    if l.schedule().is_dynamic() {
        return None;
    }
    let team = if l.kind() == LoopKind::Serial {
        1
    } else {
        threads
    };
    if team > 64 {
        return None; // reader/writer sets are u64 bitmasks
    }
    // line -> (reader tid mask, writer tid mask, total writes)
    let mut lines: BTreeMap<u64, (u64, u64, u32)> = BTreeMap::new();
    for (tid, chunks) in l.ownership(team).iter().enumerate() {
        let bit = 1u64 << tid;
        for &(start, end) in chunks {
            for i in start..end {
                l.for_each_access(i, &mut |vaddr, kind| {
                    let e = lines.entry(vaddr >> LINE_SHIFT).or_insert((0, 0, 0));
                    match kind {
                        AccessKind::Read => e.0 |= bit,
                        AccessKind::Write => {
                            e.1 |= bit;
                            e.2 += 1;
                        }
                    }
                });
            }
        }
    }
    for &(readers, writers, _) in lines.values() {
        if writers.count_ones() > 1 || (writers != 0 && readers & !writers != 0) {
            return None;
        }
    }
    let line_writes = lines
        .iter()
        .filter(|(_, v)| v.2 > 0)
        // Eligibility guarantees exactly one writer bit; its index is the
        // writing thread, which partial replays use to attribute directory
        // bumps per thread.
        .map(|(&line, v)| (line, v.2, v.1.trailing_zeros()))
        .collect();
    Some(PhaseProof::new(
        label.to_string(),
        team,
        lines.into_keys().collect(),
        line_writes,
    ))
}

/// Derive proofs for a phase sequence, flattened to one entry per region in
/// program order — the shape `omp::Runtime::install_fastpath` expects.
pub fn derive_proofs(phases: &[PhaseModel], threads: usize) -> Vec<Option<PhaseProof>> {
    phases
        .iter()
        .flat_map(|p| {
            p.loops().iter().map(move |l| {
                let label = format!("{}/{}", p.name(), l.name());
                derive_loop_proof(&label, l, threads)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp::Schedule;

    const LINE: u64 = 1 << LINE_SHIFT;

    #[test]
    fn disjoint_writes_are_eligible() {
        // Thread-owned stripes: iteration i writes line i, reads line i.
        let l = LoopModel::parallel("stripe", 64, Schedule::Static, |i, emit| {
            emit(i as u64 * LINE, AccessKind::Read);
            emit(i as u64 * LINE, AccessKind::Write);
        });
        let p = derive_loop_proof("ph/stripe", &l, 8).expect("eligible");
        assert_eq!(p.threads, 8);
        assert_eq!(p.lines.len(), 64);
        assert_eq!(p.line_writes.len(), 64);
        assert!(p.line_writes.iter().all(|&(_, c, _)| c == 1));
        // Static chunks of 64 iterations over 8 threads: 8 lines per thread.
        for t in 0..8u32 {
            assert_eq!(
                p.line_writes.iter().filter(|&&(_, _, w)| w == t).count(),
                8,
                "thread {t} writes its own stripe"
            );
        }
        assert_eq!(p.pages, vec![0]); // 64 lines < 128 lines/page
    }

    #[test]
    fn shared_read_only_is_eligible() {
        let l = LoopModel::parallel("bcast", 64, Schedule::Static, |i, emit| {
            emit(0, AccessKind::Read); // everyone reads line 0
            emit((1 + i as u64) * LINE, AccessKind::Write);
        });
        let p = derive_loop_proof("ph/bcast", &l, 8).expect("eligible");
        assert_eq!(
            p.line_writes.iter().map(|&(_, c, _)| c as u64).sum::<u64>(),
            64
        );
    }

    #[test]
    fn cross_thread_write_sharing_is_rejected() {
        // Everyone writes line 0.
        let l = LoopModel::parallel("clash", 64, Schedule::Static, |_, emit| {
            emit(0, AccessKind::Write);
        });
        assert!(derive_loop_proof("ph/clash", &l, 8).is_none());
        // One writer, other threads read the same line.
        let l = LoopModel::parallel("wr", 64, Schedule::Static, |i, emit| {
            if i == 0 {
                emit(0, AccessKind::Write);
            } else {
                emit(0, AccessKind::Read);
            }
        });
        assert!(derive_loop_proof("ph/wr", &l, 8).is_none());
        // But single-threaded, the same pattern is trivially fine.
        assert!(derive_loop_proof("ph/wr", &l, 1).is_some());
    }

    #[test]
    fn dynamic_schedules_are_rejected() {
        let l = LoopModel::parallel("dyn", 64, Schedule::Dynamic(4), |i, emit| {
            emit(i as u64 * LINE, AccessKind::Write);
        });
        assert!(derive_loop_proof("ph/dyn", &l, 8).is_none());
    }

    #[test]
    fn serial_loops_prove_for_team_of_one() {
        let l = LoopModel::serial("s", |_, emit| {
            emit(0, AccessKind::Write);
            emit(0, AccessKind::Write);
            emit(LINE, AccessKind::Read);
        });
        let p = derive_loop_proof("ph/s", &l, 16).expect("eligible");
        assert_eq!(p.threads, 1, "serial regions run as a one-thread team");
        assert_eq!(p.line_writes, vec![(0, 2, 0)]);
    }

    #[test]
    fn derive_proofs_flattens_in_program_order() {
        let mk = || {
            PhaseModel::new(
                "ph",
                vec![
                    LoopModel::parallel("a", 8, Schedule::Static, |i, emit| {
                        emit(i as u64 * LINE, AccessKind::Write)
                    }),
                    LoopModel::parallel("b", 8, Schedule::Dynamic(1), |i, emit| {
                        emit(i as u64 * LINE, AccessKind::Write)
                    }),
                ],
            )
        };
        let proofs = derive_proofs(&[mk()], 4);
        assert_eq!(proofs.len(), 2);
        assert_eq!(proofs[0].as_ref().unwrap().label, "ph/a");
        assert!(proofs[1].is_none(), "dynamic loop has no proof");
    }
}
